"""Fig. 8 — localization accuracy, RUBiS multi-component faults.

Regenerates the scheme comparison for the two real-software-bug scenarios:
OffloadBug (JBoss JBAS-1442: broken remote lookup keeps offloaded EJBs
local) and LBBug (mod_jk dispatching all requests to one worker). Both
application servers manifest concurrently; FChain's concurrency threshold
captures the pair while single-culprit heuristics miss half of it.
"""

import pytest

from _helpers import save_roc_svgs, records_for, save_and_print, standard_comparison
from repro.eval.report import format_scheme_table
from repro.eval.runner import FChainLocalizer, context_for
from repro.eval.scenarios import scenario_by_name

FAULTS = ("rubis/offload_bug", "rubis/lb_bug")


@pytest.fixture(scope="module")
def fig08():
    per_fault = {}
    sample = None
    for name in FAULTS:
        records = records_for(name)
        per_fault[name.split("/")[1]] = standard_comparison(name, records)
        sample = sample or (scenario_by_name(name), records[0])
    return per_fault, sample


def test_fig08_rubis_multi_faults(fig08, benchmark):
    per_fault, (scenario, record) = fig08
    context = context_for(scenario, record)
    benchmark(
        lambda: FChainLocalizer().localize(
            record.store, record.violation_time, context
        )
    )
    save_roc_svgs("fig08_rubis_multi", per_fault)
    save_and_print(
        "fig08_rubis_multi",
        format_scheme_table(
            "Fig. 8 — RUBiS multi-component concurrent faults (P/R)",
            per_fault,
        ),
    )
    for fault, results in per_fault.items():
        fchain = results["FChain"]
        assert fchain.precision >= 0.7, fault
        assert fchain.recall >= 0.6, fault
        # FChain clearly beats the structural and change-point baselines.
        for scheme in ("Topology", "Dependency", "PAL", "NetMedic"):
            assert fchain.f1 >= results[scheme].f1 - 0.05, (fault, scheme)
        # Histogram (at its oracle threshold) is competitive on these
        # slowly manifesting bugs — the paper's Sec. III-B observation —
        # but must not be decisively better.
        assert fchain.f1 >= results["Histogram"].f1 - 0.20, fault
