"""HTTP edge — end-to-end push-ingest throughput over loopback.

The edge server (:mod:`repro.edge`) is the process boundary external
collectors push through; every sample pays for HTTP parse, strict
validation, per-tick coalescing, the bounded queue hand-off and the
pipeline's own tolerant ingest. This benchmark pushes a violation-free
synthetic store over a real loopback socket and asserts the edge
sustains well past the paper's 1 Hz monitoring cadence — the network
boundary must never become the bottleneck in front of a pipeline that
itself runs hundreds of ticks per second.

Run standalone (``python benchmarks/bench_http_ingest.py``) or via
pytest (``pytest benchmarks/bench_http_ingest.py``).
"""

import sys

import pytest

from _helpers import save_and_print
from repro.eval.bench import run_http_ingest_benchmark

SAMPLES = 10_000
COMPONENTS = 8
METRICS = 3
#: End-to-end floor in samples/s: 8 components x 3 metrics at 1 Hz is
#: 24 samples/s in production; demand three orders of magnitude headroom.
REQUIRED_SAMPLES_PER_SECOND = 20_000.0
#: Per-request p99 ceiling — a push must never be in flight long enough
#: to delay the next 1 Hz tick's worth of telemetry.
REQUIRED_P99_MS = 500.0


@pytest.fixture(scope="module")
def http_report():
    return run_http_ingest_benchmark(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, seed=7
    )


def test_push_throughput(http_report):
    """The edge must sustain >= 20k samples/s end-to-end over loopback."""
    save_and_print("http_ingest", http_report.summary())
    assert http_report.samples_per_second >= REQUIRED_SAMPLES_PER_SECOND, (
        f"push throughput {http_report.samples_per_second:.0f} samples/s "
        f"below the required {REQUIRED_SAMPLES_PER_SECOND:.0f} on "
        f"{SAMPLES} ticks x {COMPONENTS} components"
    )


def test_request_latency(http_report):
    """Request p99 stays bounded while the pipeline keeps up."""
    import numpy as np

    p99_ms = float(
        np.percentile(np.asarray(http_report.request_seconds), 99) * 1e3
    )
    assert p99_ms <= REQUIRED_P99_MS, (
        f"request p99 {p99_ms:.1f} ms above the {REQUIRED_P99_MS:.0f} ms "
        f"ceiling ({http_report.requests} requests, "
        f"{http_report.sheds} sheds)"
    )


def main() -> int:
    report = run_http_ingest_benchmark(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, seed=7
    )
    print(report.summary())
    return (
        0
        if report.samples_per_second >= REQUIRED_SAMPLES_PER_SECOND
        else 1
    )


if __name__ == "__main__":
    sys.exit(main())
