"""Extension — adaptive look-back window (paper Sec. III-F future work).

Table I shows the one parameter FChain is sensitive to: the slowly
manifesting Hadoop DiskHog needs W = 500 while W = 100 covers everything
else (and is cheaper). The paper proposes, as future work, choosing W
adaptively "by examining the metric changing speed". This bench evaluates
:func:`repro.core.adaptive.adaptive_look_back_window`: it must keep the
small window for a fast fault (RUBiS CpuHog) and grow it for the DiskHog,
recovering W=500-level accuracy without manual configuration.
"""

import pytest

from _helpers import records_for, save_and_print
from repro.core.adaptive import adaptive_look_back_window
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.eval.metrics import PrecisionRecall
from repro.eval.runner import dependency_graph_for
from repro.eval.scenarios import scenario_by_name


def _score(records, graph, window_for):
    pr = PrecisionRecall()
    windows = []
    for record in records:
        window = window_for(record)
        windows.append(window)
        config = FChainConfig(look_back_window=window)
        fchain = FChain(config, dependency_graph=graph, seed=record.seed)
        result = fchain.localize(
            record.store, violation_time=record.violation_time
        )
        pr.update(result.faulty, record.ground_truth)
    return pr, windows


@pytest.fixture(scope="module")
def adaptive_results():
    out = {}
    for name in ("rubis/cpuhog", "hadoop/conc_diskhog"):
        scenario = scenario_by_name(name)
        records = records_for(name)
        graph = dependency_graph_for(scenario.app_name)
        fixed100, _ = _score(records, graph, lambda r: 100)
        fixed500, _ = _score(records, graph, lambda r: 500)
        adaptive, windows = _score(
            records,
            graph,
            lambda r: adaptive_look_back_window(
                r.store, r.violation_time, max_window=500
            ),
        )
        out[name] = (fixed100, fixed500, adaptive, windows)
    return out


def test_adaptive_window(adaptive_results, benchmark):
    name = "hadoop/conc_diskhog"
    record = records_for(name, runs=1)[0]
    benchmark(
        lambda: adaptive_look_back_window(
            record.store, record.violation_time, max_window=500
        )
    )
    lines = ["Extension — adaptive look-back window"]
    for scenario, (f100, f500, adaptive, windows) in adaptive_results.items():
        lines += [
            f"{scenario}:",
            f"  W=100 fixed : P={f100.precision:.2f} R={f100.recall:.2f}",
            f"  W=500 fixed : P={f500.precision:.2f} R={f500.recall:.2f}",
            f"  adaptive    : P={adaptive.precision:.2f} "
            f"R={adaptive.recall:.2f}  (chosen W per run: {windows})",
        ]
    save_and_print("adaptive_window", "\n".join(lines))

    f100, f500, adaptive, windows = adaptive_results["hadoop/conc_diskhog"]
    # Adaptive must recover (most of) the long-window accuracy...
    assert adaptive.f1 >= f500.f1 - 0.25
    assert adaptive.f1 >= f100.f1
    # ...by actually growing the window for the slow fault.
    assert max(windows) >= 300
    _, _, adaptive_fast, fast_windows = adaptive_results["rubis/cpuhog"]
    # And keep the cheap window for fast faults (mostly).
    assert sorted(fast_windows)[len(fast_windows) // 2] <= 200
