"""Online service loop — steady-state tick throughput.

The online pipeline (:mod:`repro.service`) sits in front of every
diagnosis: each tick pays for tolerant ingest of every component's
metrics, a warm-model sync so the slave's Markov models stay caught up,
and the SLO evaluation that decides whether to dispatch. This benchmark
replays a violation-free synthetic store through the loop and asserts
the steady-state cost stays negligible next to the 1 Hz monitoring
cadence the paper assumes — the loop must sustain well over 100x
real-time so diagnosis latency, not bookkeeping, dominates.

Run standalone (``python benchmarks/bench_service_loop.py``) or via
pytest (``pytest benchmarks/bench_service_loop.py``).
"""

import sys

import pytest

from _helpers import save_and_print
from repro.eval.bench import run_service_loop_benchmark

SAMPLES = 10_000
COMPONENTS = 8
METRICS = 3
REQUIRED_TICKS_PER_SECOND = 100.0
#: Ring retention for the wraparound case — small enough that the replay
#: wraps the ring several times, so every steady-state tick overwrites
#: the oldest retained slot.
WRAP_RETENTION = 2_048


@pytest.fixture(scope="module")
def service_report():
    return run_service_loop_benchmark(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, seed=7
    )


@pytest.fixture(scope="module")
def wraparound_report():
    return run_service_loop_benchmark(
        samples=SAMPLES,
        components=COMPONENTS,
        metrics=METRICS,
        seed=7,
        retention=WRAP_RETENTION,
    )


def test_steady_state_throughput(service_report):
    """The loop must sustain >= 100 ticks/s on an 8-component store."""
    save_and_print("service_loop", service_report.summary())
    assert service_report.incidents == 0, (
        "the violation-free replay dispatched a diagnosis — the SLO "
        "detector tripped on clean data"
    )
    assert service_report.ticks_per_second >= REQUIRED_TICKS_PER_SECOND, (
        f"steady state {service_report.ticks_per_second:.0f} ticks/s "
        f"below the required {REQUIRED_TICKS_PER_SECOND:.0f} on "
        f"{SAMPLES} ticks x {COMPONENTS} components"
    )


def test_wraparound_steady_state(wraparound_report):
    """Retention-by-overwrite must not slow or destabilize the loop.

    With retention far below the replay length the loop spends most of
    its life overwriting the oldest ring slot every tick. That steady
    state must stay allocation-free: same throughput floor as the
    unbounded store, and still zero spurious incidents.
    """
    save_and_print("service_loop_wrap", wraparound_report.summary())
    assert wraparound_report.incidents == 0, (
        "the violation-free wraparound replay dispatched a diagnosis — "
        "ring eviction perturbed the SLO path"
    )
    assert (
        wraparound_report.ticks_per_second >= REQUIRED_TICKS_PER_SECOND
    ), (
        f"wraparound steady state "
        f"{wraparound_report.ticks_per_second:.0f} ticks/s below the "
        f"required {REQUIRED_TICKS_PER_SECOND:.0f} with retention "
        f"{WRAP_RETENTION} over {SAMPLES} ticks"
    )


def main() -> int:
    report = run_service_loop_benchmark(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, seed=7
    )
    print(report.summary())
    wrap = run_service_loop_benchmark(
        samples=SAMPLES,
        components=COMPONENTS,
        metrics=METRICS,
        seed=7,
        retention=WRAP_RETENTION,
    )
    print(wrap.summary())
    ok = (
        report.incidents == 0
        and report.ticks_per_second >= REQUIRED_TICKS_PER_SECOND
        and wrap.incidents == 0
        and wrap.ticks_per_second >= REQUIRED_TICKS_PER_SECOND
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
