"""Table II — FChain system overhead measurements.

Micro-benchmarks of each FChain module, mirroring the paper's table:

=============================  ==========================
System module                  paper's CPU cost
=============================  ==========================
VM monitoring (6 attributes)   1.03 ms
Normal fluctuation modeling    22.9 ms  (1000 samples)
Abnormal change point select.  602.4 ms (100 samples)
Integrated fault diagnosis     22 us
Online validation              ~30 s per component
                               (dominated by the 30 s
                               observation window)
=============================  ==========================

Absolute numbers differ (different hardware and language), but the
*ordering* must hold: diagnosis is microseconds, monitoring ~ms, modeling
~tens of ms, selection the heaviest online step, and validation dominated
by its observation horizon rather than computation.
"""


import pytest

from _helpers import save_and_print
from repro.apps.rubis import DB, RubisApplication
from repro.cloud.monitor import DomainZeroMonitor
from repro.common.rng import spawn_rng
from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.cusum import ChangePoint
from repro.core.fchain import FChainSlave
from repro.core.pinpoint import pinpoint_faulty_components
from repro.core.prediction import MarkovPredictor
from repro.core.propagation import ComponentReport
from repro.core.selection import AbnormalChange
from repro.core.validation import validate_component
from repro.faults.library import CpuHogFault
from repro.monitoring.store import MetricStore


@pytest.fixture(scope="module")
def faulty_run():
    app = RubisApplication(seed=7001, duration=1600)
    app.inject(CpuHogFault(1200, DB))
    app.run(1300)
    violation = app.slo.first_violation_after(1200)
    assert violation is not None
    return app, violation


def test_vm_monitoring_six_attributes(benchmark, faulty_run):
    """Paper: 1.03 ms per VM per second."""
    app, _ = faulty_run
    store = MetricStore()
    monitor = DomainZeroMonitor(store, seed=1)
    name = DB
    monitor.register(app.components[name], app.vms[name], app.hosts[1])
    tick = [0]

    def sample():
        monitor.sample_all(tick[0])
        tick[0] += 1

    benchmark(sample)


def test_normal_fluctuation_modeling_1000_samples(benchmark):
    """Paper: 22.9 ms to feed 1000 samples into the online model."""
    rng = spawn_rng("overhead-model")
    samples = list(30 + rng.normal(0, 3, 1000))

    def model_1000():
        model = MarkovPredictor(bins=40)
        for value in samples:
            model.update(value)

    benchmark(model_1000)


def test_abnormal_change_point_selection_100_samples(benchmark, faulty_run):
    """Paper: 602.4 ms for one component's 100-sample window."""
    app, violation = faulty_run
    slave = FChainSlave(FChainConfig(), seed=1)
    benchmark(lambda: slave.analyze(app.store, DB, violation))


def test_integrated_fault_diagnosis(benchmark):
    """Paper: 22 us — pure pinpointing over the slave reports."""

    def make_reports():
        def change(onset):
            point = ChangePoint(onset, onset, 1.0, 10.0, 1)
            return AbnormalChange(
                Metric.CPU_USAGE, point, onset, 5.0, 1.0, 1
            )

        return [
            ComponentReport("db", [change(100)]),
            ComponentReport("app1", [change(130)]),
            ComponentReport("app2"),
            ComponentReport("web"),
        ]

    reports = make_reports()
    config = FChainConfig()
    import networkx as nx

    graph = nx.DiGraph(
        [("web", "app1"), ("web", "app2"), ("app1", "db"), ("app2", "db")]
    )
    benchmark(lambda: pinpoint_faulty_components(reports, config, graph))


def test_online_validation_per_component(benchmark, faulty_run):
    """Paper: ~30 s per component — the scaling observation window.

    The simulated observation window is the same 30 (simulated) seconds;
    the benchmark measures the wall-clock cost of forking the deployment
    and simulating that horizon twice (baseline + scaled).
    """
    app, _ = faulty_run
    config = FChainConfig(validation_horizon=30)
    outcome = benchmark(
        lambda: validate_component(app, DB, Metric.CPU_USAGE, config)
    )
    assert outcome.confirmed


def test_overhead_summary(faulty_run):
    """Persist a qualitative summary alongside the timing table."""
    save_and_print(
        "table2_overhead",
        "\n".join(
            [
                "Table II — per-module overhead (see pytest-benchmark table",
                "for measured times on this machine).",
                "",
                "paper's ordering to verify: integrated diagnosis (us) <",
                "VM monitoring (ms) < fluctuation modeling (tens of ms) <",
                "abnormal change point selection (hundreds of ms) <<",
                "online validation (dominated by the 30 s observation",
                "window, not computation).",
            ]
        ),
    )
