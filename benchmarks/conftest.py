"""Benchmark suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one table/figure of the paper; the printed blocks
are also saved under ``benchmarks/out/``. ``REPRO_RUNS`` controls the
number of fault-injection runs per fault (default 6; the paper uses
30-40).
"""
