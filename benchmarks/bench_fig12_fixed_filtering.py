"""Fig. 12 — FChain vs. the Fixed-Filtering scheme.

The paper sweeps the fixed prediction-error threshold for the LBBug
(RUBiS) and DiskHog (Hadoop) faults and shows the scheme is highly
sensitive to the threshold value, while FChain's burst-derived dynamic
threshold lands at (or near) the best point automatically.
"""

import pytest

from _helpers import records_for, save_and_print, score_scheme
from repro.baselines import FixedFilteringLocalizer
from repro.eval.metrics import RocPoint
from repro.eval.report import format_roc_series
from repro.eval.runner import FChainLocalizer, context_for
from repro.eval.scenarios import scenario_by_name

FAULTS = ("rubis/lb_bug", "hadoop/conc_diskhog")
THRESHOLDS = (0.05, 0.2, 0.6, 2.0)


@pytest.fixture(scope="module")
def fig12():
    series = {}
    fchain_points = {}
    sample = None
    for name in FAULTS:
        scenario = scenario_by_name(name)
        records = records_for(name)
        points = []
        for threshold in THRESHOLDS:
            pr = score_scheme(
                FixedFilteringLocalizer(threshold), scenario, records
            )
            points.append(RocPoint(threshold, pr.precision, pr.recall))
        series[name] = points
        fchain_points[name] = score_scheme(
            FChainLocalizer(), scenario, records
        )
        sample = sample or (scenario, records[0])
    return series, fchain_points, sample


def test_fig12_fixed_filtering_sensitivity(fig12, benchmark):
    series, fchain_points, (scenario, record) = fig12
    context = context_for(scenario, record)
    benchmark(
        lambda: FixedFilteringLocalizer(0.6).localize(
            record.store, record.violation_time, context
        )
    )
    text = format_roc_series(
        "Fig. 12 — Fixed-Filtering threshold sweep vs. FChain", series
    )
    text += "\nFChain (dynamic threshold):\n"
    for name, pr in fchain_points.items():
        text += f"  {name}: P={pr.precision:.2f} R={pr.recall:.2f}\n"
    save_and_print("fig12_fixed_filtering", text.rstrip())

    for name, points in series.items():
        f1s = [
            0.0
            if (p.precision + p.recall) == 0
            else 2 * p.precision * p.recall / (p.precision + p.recall)
            for p in points
        ]
        # The fixed scheme is threshold-sensitive: its accuracy swings.
        assert max(f1s) - min(f1s) > 0.2, name
        # FChain's automatic threshold is at least near the best fixed one.
        assert fchain_points[name].f1 >= max(f1s) - 0.25, name
