"""Incremental diagnosis engine — latency on long histories (Sec. III-G).

The paper's FChain must localize within seconds of an SLO violation even
after hours of recorded metrics. The original replay engine retrains
every per-metric Markov model from scratch at diagnosis time, so its
latency grows linearly with the recorded history; the incremental engine
keeps the slave's models and prediction-error streams warm (as the
paper's continuously running slaves do) and pays only for the
look-back-window analysis.

Since the vectorized batch updates landed
(:meth:`~repro.core.prediction.MarkovPredictor.update_many`), the replay
engine's model retraining is itself fast — ~3M samples/s — so the warm
engine's edge only shows once the history is long enough for the
replay's O(history) ingest to dominate the fixed look-back analysis.
This benchmark therefore diagnoses a 100,000-sample history (more than a
day of 1 Hz data) across 8 components and asserts the warm incremental
diagnosis is at least 2x faster than the replay diagnosis *while
producing identical results*.

Run standalone (``python benchmarks/bench_incremental_engine.py``) or via
pytest (``pytest benchmarks/bench_incremental_engine.py``).
"""

import sys

import pytest

from _helpers import save_and_print
from repro.eval.bench import measure_latency, synthetic_store

SAMPLES = 100_000
COMPONENTS = 8
METRICS = 3
REPEATS = 3
REQUIRED_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def latency_report():
    store = synthetic_store(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS
    )
    return measure_latency(store, repeats=REPEATS, seed=7)


def test_incremental_speedup(latency_report):
    """Warm incremental diagnosis must beat replay by >= 2x."""
    save_and_print("incremental_engine", latency_report.summary())
    assert latency_report.results_match, (
        "incremental and replay engines diverged — the warm error "
        "streams no longer reproduce the batch replay"
    )
    assert latency_report.speedup >= REQUIRED_SPEEDUP, (
        f"speedup {latency_report.speedup:.1f}x below the required "
        f"{REQUIRED_SPEEDUP}x on {SAMPLES} samples x {COMPONENTS} "
        "components"
    )


def test_fault_still_pinpointed(latency_report):
    """The synthetic step fault must actually be localized."""
    assert "c0" in latency_report.faulty


def test_warm_diagnosis_timed(benchmark):
    """pytest-benchmark target: one warm incremental diagnosis.

    Uses a fresh smaller store so the benchmark's many rounds stay
    affordable; the warm slave's per-window caches are what repeated
    identical diagnoses exercise in production (the validation loop).
    """
    from repro.core.config import FChainConfig
    from repro.core.fchain import FChainMaster

    config = FChainConfig()
    store = synthetic_store(samples=4000, components=COMPONENTS, metrics=1)
    master = FChainMaster(config, seed=7, incremental=True)
    master.slave.sync_with_store(store, store.end)
    t_v = store.end - config.analysis_grace - 1
    master.diagnose(store, t_v)
    benchmark(lambda: master.diagnose(store, t_v))


def main() -> int:
    store = synthetic_store(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS
    )
    report = measure_latency(store, repeats=REPEATS, seed=7)
    print(report.summary())
    ok = report.results_match and report.speedup >= REQUIRED_SPEEDUP
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
