"""Fig. 3 — change point selection on Hadoop's noisiest metrics.

The paper's figure shows (a) the many change points plain CUSUM+Bootstrap
finds on the DiskWrite metric of a faulty map node and the CPU metric of a
normal reduce node, and (b) that FChain's selection keeps only the real
abnormal change on the faulty map. This benchmark reproduces both series:
it counts raw CUSUM change points versus FChain-selected abnormal changes
on the same windows.
"""

import pytest

from _helpers import save_and_print
from repro.apps.hadoop import MAPS, HadoopApplication
from repro.core.config import FChainConfig
from repro.core.cusum import detect_change_points
from repro.core.fchain import FChainSlave
from repro.core.smoothing import smooth_series
from repro.common.types import Metric
from repro.faults.library import DiskHogFault


@pytest.fixture(scope="module")
def faulty_hadoop_run():
    app = HadoopApplication(seed=3031)
    app.inject(DiskHogFault(800, list(MAPS)))
    app.run(1400)
    violation = app.slo.first_violation_after(800)
    assert violation is not None
    return app, violation


def _window(app, component, metric, violation, width=500):
    full = app.store.series(component, metric)
    return full.window(violation - width, violation + 9)


def test_fig03_change_point_selection(faulty_hadoop_run, benchmark):
    app, violation = faulty_hadoop_run
    config = FChainConfig(look_back_window=500)
    slave = FChainSlave(config, seed=3031)

    # Raw CUSUM+Bootstrap on the two series of the paper's figure.
    map_window = smooth_series(
        _window(app, "map1", Metric.DISK_WRITE, violation), 5
    )
    reduce_window = smooth_series(
        _window(app, "red4", Metric.CPU_USAGE, violation), 5
    )
    raw_map_points = detect_change_points(map_window, seed=1)
    raw_reduce_points = detect_change_points(reduce_window, seed=2)

    map_report = benchmark(lambda: slave.analyze(app.store, "map1", violation))
    reduce_report = slave.analyze(app.store, "red4", violation)

    selected_map = [
        c for c in map_report.abnormal_changes
        if c.metric in (Metric.DISK_WRITE, Metric.DISK_READ)
    ]
    # Disk-metric selections across all three (identically faulty) maps:
    # per-node noise draws decide which map's disk series clears the
    # burst/history thresholds.
    disk_selected_any_map = list(selected_map)
    for name in ("map2", "map3"):
        disk_selected_any_map += [
            c
            for c in slave.analyze(app.store, name, violation).abnormal_changes
            if c.metric in (Metric.DISK_WRITE, Metric.DISK_READ)
        ]

    from repro.eval.plotting import strip_chart

    markers = {p.time: "^" for p in raw_map_points}
    markers.update({c.onset_time: "F" for c in selected_map})
    chart = strip_chart(
        _window(app, "map1", Metric.DISK_WRITE, violation),
        markers=markers,
        title="faulty map DiskWrite (KB/s); ^=CUSUM point, F=FChain onset",
    )
    lines = [
        "Fig. 3 — abnormal change point selection (Hadoop DiskHog)",
        chart,
        "",
        f"raw CUSUM points, faulty map DiskWrite : {len(raw_map_points)}"
        f"  at {[p.time for p in raw_map_points]}",
        f"raw CUSUM points, normal reduce CPU    : {len(raw_reduce_points)}"
        f"  at {[p.time for p in raw_reduce_points]}",
        f"FChain-selected, faulty map (disk)     : {len(selected_map)}"
        f"  onsets {[c.onset_time for c in selected_map]}",
        f"FChain-selected, normal reduce          : "
        f"{len(reduce_report.abnormal_changes)}",
        "",
        "paper: plain CUSUM finds many benign peaks on both series; FChain",
        "keeps only the faulty map's real change and nothing on the reduce.",
    ]
    save_and_print("fig03_changepoints", "\n".join(lines))

    # The qualitative claims of the figure:
    assert len(raw_map_points) >= 3, "dynamic metric should over-fire CUSUM"
    assert map_report.is_abnormal, "the faulty map must be flagged"
    assert disk_selected_any_map, "a disk change point must survive selection"
    assert len(disk_selected_any_map) < len(raw_map_points)
    assert not reduce_report.is_abnormal or len(
        reduce_report.abnormal_changes
    ) <= 1
