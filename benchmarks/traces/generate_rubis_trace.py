"""Regenerate the bundled RUBiS CPU-hog trace for the CI soak job.

The soak job replays a recorded incident through ``repro replay`` and
asserts the online loop raises exactly one incident naming the injected
culprit. This script produces that recording deterministically: the
standard RUBiS topology (web → app1/app2 → db), seed 42, a CPU hog on
the database at t=1300, 1380 ticks of 1 Hz telemetry.

Outputs (committed next to this script):

* ``rubis_cpuhog_metrics.csv`` — the full metric store
  (``time,component,metric,value``), loadable with
  :func:`repro.monitoring.io.load_store_csv`;
* ``rubis_cpuhog_performance.csv`` — the client-side response-time
  signal (``time,value``), loadable with
  :func:`repro.service.sources.load_performance_csv`.

Rerun after any change to the simulator that shifts its random streams,
and update the soak job's expectations if the incident moves::

    PYTHONPATH=src python benchmarks/traces/generate_rubis_trace.py
"""

import pathlib

from repro.apps.rubis import DB, RubisApplication
from repro.faults.library import CpuHogFault
from repro.monitoring.io import save_store_csv
from repro.service.sources import save_performance_csv

SEED = 42
DURATION = 1380
FAULT_AT = 1300

HERE = pathlib.Path(__file__).parent


def main() -> None:
    app = RubisApplication(seed=SEED, duration=DURATION + 600)
    app.inject(CpuHogFault(FAULT_AT, DB))
    app.run(DURATION)

    metrics_path = HERE / "rubis_cpuhog_metrics.csv"
    performance_path = HERE / "rubis_cpuhog_performance.csv"
    save_store_csv(app.store, metrics_path)
    save_performance_csv(
        performance_path, dict(zip(app.slo.ticks, app.slo.samples))
    )
    print(f"wrote {metrics_path} ({metrics_path.stat().st_size} bytes)")
    print(
        f"wrote {performance_path} ({performance_path.stat().st_size} bytes)"
    )


if __name__ == "__main__":
    main()
