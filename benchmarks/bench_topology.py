"""Topology-guided pinpointing — scaling on a generated service mesh.

The paper's master fans a slave out to *every* component per SLO
violation; at mesh scale (100+ services) that full fan-out dominates
diagnosis latency. The topology layer (:mod:`repro.core.topology`)
learns a weighted dependency graph online from per-edge traffic and
scopes the fan-out to the top-K graph neighborhood of the SLO origin.
This benchmark pins the acceptance targets of that design on a
100-service fan-out/fan-in mesh:

* **strict subset** — the scoped engine analyses a strict subset of the
  services and never escalates on the canonical run;
* **same culprit** — it names exactly the culprits full fan-out names;
* **>= 2x latency** — its mean diagnosis latency beats full fan-out by
  at least 2x (the committed baseline records ~6x).

Writes ``BENCH_topology.json`` when run standalone; the same payload is
produced by ``repro bench --json`` and gated against
``benchmarks/baselines/BENCH_topology.json`` by ``repro bench --check``.

Run standalone (``python benchmarks/bench_topology.py``) or via pytest
(``pytest benchmarks/bench_topology.py``).
"""

import sys

import pytest

from _helpers import save_and_print
from repro.eval.bench import run_topology_benchmark, write_benchmark_json

SERVICES = 100
TOP_K = 15


@pytest.fixture(scope="module")
def topology_report():
    return run_topology_benchmark(services=SERVICES, top_k=TOP_K, seed=7)


def test_scoped_analyses_strict_subset(topology_report):
    """Top-K scoping must cover a strict subset without escalating."""
    save_and_print("topology", topology_report.summary())
    assert topology_report.subset_ok, (
        f"scoped diagnosis analysed {topology_report.analyzed}/"
        f"{SERVICES} services (escalated="
        f"{topology_report.escalated}) — not a strict subset"
    )


def test_scoped_names_full_fanout_culprit(topology_report):
    """Scoping must not change the verdict, only the work."""
    assert topology_report.culprit_match, (
        f"scoped named {sorted(topology_report.scoped_faulty)} but full "
        f"fan-out named {sorted(topology_report.full_faulty)}"
    )


def test_scoped_beats_full_fanout_by_two_x(topology_report):
    """The headline target: >= 2x diagnosis-latency win at 100 services."""
    assert topology_report.speedup_ok, (
        f"scoped diagnosis is only {topology_report.speedup:.1f}x faster "
        f"than full fan-out (target "
        f">= {topology_report.SPEEDUP_TARGET:.1f}x)"
    )


if __name__ == "__main__":
    report = run_topology_benchmark(services=SERVICES, top_k=TOP_K, seed=7)
    print(report.summary())
    write_benchmark_json("BENCH_topology.json", report)
    print("\nwrote BENCH_topology.json")
    sys.exit(0 if report.gate_ok else 1)
