"""Ablation study: which FChain design choices carry the accuracy?

Beyond the paper's own Fixed-Filtering comparison (Fig. 12), this bench
disables one FChain ingredient at a time and measures the impact on the
back-pressure-heavy RUBiS CpuHog scenario:

* ``no-dependency``   — drop the discovered dependency graph (pure
  propagation order, as forced on System S);
* ``no-burst``        — replace the burst-FFT expected error with a tiny
  constant (keeps the history reference);
* ``no-history-ref``  — drop the history-error reference (keeps the burst
  threshold);
* ``wide-concurrency``— concurrency threshold 10 s instead of 2 s.

Expected: full FChain at or near the top; each ablation costs precision
and/or recall in its own way.
"""

import dataclasses

import pytest

from _helpers import save_roc_svgs, records_for, save_and_print
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.eval.metrics import PrecisionRecall
from repro.eval.report import format_scheme_table
from repro.eval.runner import dependency_graph_for
from repro.eval.scenarios import scenario_by_name

SCENARIO = "rubis/cpuhog"


def _score(records, config, graph):
    pr = PrecisionRecall()
    for record in records:
        fchain = FChain(config, dependency_graph=graph, seed=record.seed)
        result = fchain.localize(
            record.store, violation_time=record.violation_time
        )
        pr.update(result.faulty, record.ground_truth)
    return pr


@pytest.fixture(scope="module")
def ablations():
    scenario = scenario_by_name(SCENARIO)
    records = records_for(SCENARIO)
    graph = dependency_graph_for(scenario.app_name)
    base = FChainConfig()
    variants = {
        "FChain (full)": (base, graph),
        "no-dependency": (base, None),
        "no-burst": (
            dataclasses.replace(base, burst_percentile=0.1),
            graph,
        ),
        "no-history-ref": (
            dataclasses.replace(base, history_error_percentile=0.1),
            graph,
        ),
        "wide-concurrency": (
            dataclasses.replace(base, concurrency_threshold=10.0),
            graph,
        ),
    }
    results = {
        name: _score(records, config, g)
        for name, (config, g) in variants.items()
    }
    return results, records, graph


def test_ablations(ablations, benchmark):
    results, records, graph = ablations
    record = records[0]
    benchmark(
        lambda: FChain(
            FChainConfig(), dependency_graph=graph, seed=record.seed
        ).localize(record.store, violation_time=record.violation_time)
    )
    save_roc_svgs("ablations", {SCENARIO.split("/")[1]: results})
    save_and_print(
        "ablations",
        format_scheme_table(
            f"Ablations — {SCENARIO} (each ingredient disabled in turn)",
            {SCENARIO.split("/")[1]: results},
        ),
    )
    full = results["FChain (full)"]
    # The full system must not be clearly beaten by any ablation.
    for name, pr in results.items():
        assert full.f1 >= pr.f1 - 0.15, name
