"""Fig. 4 — expected prediction error tracks the series burstiness.

The paper plots a CPU usage series of a dual-core host together with the
burst-derived expected prediction error: the threshold rises in bursty
regions and falls when the series is stable. This benchmark regenerates
both series on a synthetic CPU trace with a quiet phase, a bursty phase
and another quiet phase, and asserts the threshold's shape.
"""

import numpy as np
import pytest

from _helpers import save_and_print
from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries
from repro.core.burst import expected_error_profile


@pytest.fixture(scope="module")
def cpu_series():
    rng = spawn_rng("fig4-cpu")
    quiet1 = 35 + rng.normal(0, 1.0, 150)
    t = np.arange(120)
    bursty = (
        45
        + 18 * np.sin(t / 2.1)
        + 12 * np.sin(t / 0.9)
        + rng.normal(0, 4.0, 120)
    )
    quiet2 = 38 + rng.normal(0, 1.0, 150)
    return TimeSeries(np.concatenate([quiet1, bursty, quiet2]))


def test_fig04_expected_error_profile(cpu_series, benchmark):
    profile = benchmark(lambda: expected_error_profile(cpu_series))

    quiet1 = profile[40:130].mean()
    bursty = profile[180:250].mean()
    quiet2 = profile[330:400].mean()

    from repro.common.timeseries import TimeSeries
    from repro.eval.plotting import strip_chart

    lines = [
        "Fig. 4 — expected prediction error vs. series burstiness",
        strip_chart(cpu_series, title="CPU usage series"),
        strip_chart(
            TimeSeries(profile), title="expected prediction error"
        ),
        "",
        f"quiet phase   (t=40..130) : mean expected error {quiet1:8.2f}",
        f"bursty phase  (t=180..250): mean expected error {bursty:8.2f}",
        f"quiet phase 2 (t=330..400): mean expected error {quiet2:8.2f}",
        "",
        "series (downsampled x20):",
        "  " + " ".join(f"{v:5.1f}" for v in cpu_series.values[::20]),
        "threshold (downsampled x20):",
        "  " + " ".join(f"{v:5.1f}" for v in profile[::20]),
        "",
        "paper: the expected prediction error is higher when the original",
        "time series is bursty and lower when it becomes stable.",
    ]
    save_and_print("fig04_expected_error", "\n".join(lines))

    assert bursty > 3 * quiet1
    assert bursty > 3 * quiet2
