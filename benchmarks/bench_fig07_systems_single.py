"""Fig. 7 — localization accuracy, System S single-component faults.

Regenerates the scheme comparison for MemLeak, CpuHog and Bottleneck on
the stream-processing application. Expected shape (paper Sec. III-B):
FChain leads; the Dependency scheme has low precision everywhere because
black-box discovery extracts nothing from gap-free stream traffic and the
scheme degenerates to blaming every abnormal component; every scheme's
precision drops on Bottleneck, whose effects propagate within seconds.
"""

import pytest

from _helpers import save_roc_svgs, records_for, save_and_print, standard_comparison
from repro.eval.report import format_scheme_table
from repro.eval.runner import FChainLocalizer, context_for, dependency_graph_for
from repro.eval.scenarios import scenario_by_name

FAULTS = ("systems/memleak", "systems/cpuhog", "systems/bottleneck")


@pytest.fixture(scope="module")
def fig07():
    per_fault = {}
    sample = None
    for name in FAULTS:
        records = records_for(name)
        per_fault[name.split("/")[1]] = standard_comparison(name, records)
        sample = sample or (scenario_by_name(name), records[0])
    return per_fault, sample


def test_fig07_systems_single_faults(fig07, benchmark):
    per_fault, (scenario, record) = fig07
    context = context_for(scenario, record)
    benchmark(
        lambda: FChainLocalizer().localize(
            record.store, record.violation_time, context
        )
    )
    save_roc_svgs("fig07_systems_single", per_fault)
    save_and_print(
        "fig07_systems_single",
        format_scheme_table(
            "Fig. 7 — System S single-component faults (P/R per scheme)",
            per_fault,
        ),
    )
    # Discovery fails on streams: nothing for Dependency to prune with.
    assert dependency_graph_for("systems").number_of_edges() == 0
    for fault, results in per_fault.items():
        # The degenerate Dependency scheme cannot beat FChain's precision.
        assert (
            results["FChain"].precision >= results["Dependency"].precision
        ), fault
    # FChain wins on the clean single faults...
    assert per_fault["memleak"]["FChain"].f1 >= 0.65
    assert per_fault["cpuhog"]["FChain"].f1 >= 0.6
    # ...while Bottleneck stays hard for everyone (paper Sec. III-B).
    assert per_fault["bottleneck"]["FChain"].precision <= 0.95
