"""Multi-tenant fleet layer — scale and per-tenant isolation.

The fleet layer (:mod:`repro.fleet`) shards many tenants — each an
independent store + warm slaves + SLO detector — across a small pool of
long-lived shard workers. This benchmark pins the two acceptance
targets of that design at full scale:

* **sustained 1 Hz** — 1000 tenants x 8 components tick once per
  second on one machine with bounded p99 fleet-tick latency;
* **storm fairness** — one tenant whose SLO flaps continuously (zero
  cooldown, a diagnosis trigger every few ticks) must leave the other
  999 tenants' per-tick p99 latency within 2x of the quiescent run.

Writes ``BENCH_fleet.json`` when run standalone; the same payload is
produced by ``repro bench --json`` and gated against
``benchmarks/baselines/BENCH_fleet.json`` by ``repro bench --check``.

Run standalone (``python benchmarks/bench_fleet.py``) or via pytest
(``pytest benchmarks/bench_fleet.py``).
"""

import sys

import pytest

from _helpers import save_and_print
from repro.eval.bench import run_fleet_benchmark, write_benchmark_json

TENANTS = 1_000
COMPONENTS = 8
SHARDS = 4


@pytest.fixture(scope="module")
def fleet_report():
    return run_fleet_benchmark(
        tenants=TENANTS, components=COMPONENTS, shards=SHARDS, seed=7
    )


def test_sustains_one_hertz(fleet_report):
    """1000 tenants x 8 components must tick at >= 1 Hz, p99 < 1 s."""
    save_and_print("fleet", fleet_report.summary())
    assert fleet_report.dropped == 0, (
        f"{fleet_report.dropped} batches shed by routing backpressure "
        "during an unloaded run — the shard queues cannot keep up"
    )
    assert fleet_report.sustained, (
        f"fleet ticked at {fleet_report.ticks_per_second:.2f}/s — below "
        f"the 1 Hz target for {TENANTS} tenants x {COMPONENTS} components"
    )


def test_storm_leaves_neighbours_unharmed(fleet_report):
    """One storming tenant must not starve the other 999 tenants."""
    assert fleet_report.fairness_ok, (
        f"non-storming tenants' tick p99 rose "
        f"{fleet_report.fairness_ratio:.2f}x under a one-tenant diagnosis "
        f"storm (bound {fleet_report.FAIRNESS_BOUND:.1f}x): "
        f"{fleet_report.quiescent_tenant_p99_ms:.3f} ms quiescent vs "
        f"{fleet_report.storm_tenant_p99_ms:.3f} ms under storm"
    )
    assert fleet_report.storm_incidents > 0, (
        "the storm produced no incidents — the flapping SLO never "
        "triggered, so the fairness case measured nothing"
    )


def main() -> int:
    report = run_fleet_benchmark(
        tenants=TENANTS, components=COMPONENTS, shards=SHARDS, seed=7
    )
    print(report.summary())
    write_benchmark_json("BENCH_fleet.json", report)
    print("wrote BENCH_fleet.json")
    ok = (
        report.dropped == 0
        and report.sustained
        and report.fairness_ok
        and report.storm_incidents > 0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
