"""Table I — sensitivity to the look-back window and concurrency threshold.

Reproduces the paper's sensitivity study on the same three faults:
NetHog (RUBiS), CpuHog (System S) and DiskHog (Hadoop), sweeping
W in {100, 300, 500} seconds and the concurrency threshold in {2, 5, 10}
seconds. Expected shape: accuracy is stable across settings except for
the Hadoop DiskHog, which manifests so slowly that W = 100 misses the
onset and needs W = 500.

The recorded runs are shared across all parameter settings — only the
analysis is repeated — matching how the study isolates the parameters.
"""


import pytest

from _helpers import records_for, save_and_print
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.eval.metrics import PrecisionRecall
from repro.eval.report import format_sensitivity_table
from repro.eval.runner import dependency_graph_for
from repro.eval.scenarios import scenario_by_name

FAULTS = ("rubis/nethog", "systems/cpuhog", "hadoop/conc_diskhog")
WINDOWS = (100, 300, 500)
CONCURRENCY = (2.0, 5.0, 10.0)


def _score(records, scenario, config):
    graph = dependency_graph_for(scenario.app_name)
    pr = PrecisionRecall()
    for record in records:
        fchain = FChain(config, dependency_graph=graph, seed=record.seed)
        result = fchain.localize(
            record.store, violation_time=record.violation_time
        )
        pr.update(result.faulty, record.ground_truth)
    return pr


@pytest.fixture(scope="module")
def table1():
    rows = []
    shared = {
        name: (scenario_by_name(name), records_for(name)) for name in FAULTS
    }
    for window in WINDOWS:
        for name, (scenario, records) in shared.items():
            config = FChainConfig(look_back_window=window)
            rows.append((f"W={window}s", name, _score(records, scenario, config)))
    for threshold in CONCURRENCY:
        for name, (scenario, records) in shared.items():
            window = scenario.look_back_window or 100
            config = FChainConfig(
                look_back_window=window, concurrency_threshold=threshold
            )
            rows.append(
                (
                    f"concurrency={threshold:g}s",
                    name,
                    _score(records, scenario, config),
                )
            )
    return rows, shared


def test_table1_parameter_sensitivity(table1, benchmark):
    rows, shared = table1
    scenario, records = shared[FAULTS[0]]
    graph = dependency_graph_for(scenario.app_name)
    record = records[0]
    benchmark(
        lambda: FChain(
            FChainConfig(), dependency_graph=graph, seed=record.seed
        ).localize(record.store, violation_time=record.violation_time)
    )
    text = format_sensitivity_table(rows)
    text += (
        "\n\nnote: the paper's one strong sensitivity — DiskHog needing"
        "\nW=500 — does not reproduce here: this implementation's"
        "\nselection still finds the (synchronized) tail of the slow"
        "\nmanifestation inside W=100, and the dependency rule pinpoints"
        "\nindependent concurrent maps regardless of onset scatter."
        "\nSee EXPERIMENTS.md for the analysis."
    )
    save_and_print("table1_sensitivity", text)

    by_key = {(param, fault): pr for param, fault, pr in rows}
    # Every setting keeps DiskHog usable (no W collapse either way).
    for w in WINDOWS:
        assert by_key[(f"W={w}s", "hadoop/conc_diskhog")].f1 >= 0.4, w
    # The fast faults degrade at most moderately with larger windows
    # (more candidates admit more false chain sources).
    for fault in ("rubis/nethog", "systems/cpuhog"):
        f1s = [by_key[(f"W={w}s", fault)].f1 for w in WINDOWS]
        # The default W is at (or within noise of) the optimum.
        assert f1s[0] >= max(f1s) - 0.08, fault
        assert max(f1s) - min(f1s) <= 0.55, fault
    # The concurrency threshold barely matters on these faults.
    for fault in FAULTS:
        f1s = [
            by_key[(f"concurrency={c:g}s", fault)].f1 for c in CONCURRENCY
        ]
        assert max(f1s) - min(f1s) <= 0.35, fault
