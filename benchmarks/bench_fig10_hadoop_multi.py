"""Fig. 10 — localization accuracy, Hadoop multi-component faults.

Concurrent MemLeak / CpuHog (infinite loop) / DiskHog injected into all
three map nodes. Expected shape (paper Sec. III-C): the map-side faults
sit at the *first* components of the data flow, so Topology and Dependency
do well here (no back-pressure trap); plain change-point schemes (PAL)
struggle with Hadoop's highly fluctuating metrics; the slowly manifesting
DiskHog is the hard case (see also Table I: it needs the 500 s window).
"""

import pytest

from _helpers import save_roc_svgs, records_for, save_and_print, standard_comparison
from repro.eval.report import format_scheme_table
from repro.eval.runner import FChainLocalizer, context_for
from repro.eval.scenarios import scenario_by_name

FAULTS = ("hadoop/conc_memleak", "hadoop/conc_cpuhog", "hadoop/conc_diskhog")


@pytest.fixture(scope="module")
def fig10():
    per_fault = {}
    sample = None
    for name in FAULTS:
        records = records_for(name)
        per_fault[name.split("/")[1]] = standard_comparison(name, records)
        sample = sample or (scenario_by_name(name), records[0])
    return per_fault, sample


def test_fig10_hadoop_multi_faults(fig10, benchmark):
    per_fault, (scenario, record) = fig10
    context = context_for(scenario, record)
    benchmark(
        lambda: FChainLocalizer().localize(
            record.store, record.violation_time, context
        )
    )
    save_roc_svgs("fig10_hadoop_multi", per_fault)
    save_and_print(
        "fig10_hadoop_multi",
        format_scheme_table(
            "Fig. 10 — Hadoop multi-component concurrent faults (P/R)",
            per_fault,
        ),
    )
    assert per_fault["conc_memleak"]["FChain"].f1 >= 0.8
    assert per_fault["conc_cpuhog"]["FChain"].f1 >= 0.7
    # Map-side faults sit at the data-flow head, so Topology/Dependency
    # excel here (paper Sec. III-C) — FChain must match them on the two
    # fast faults and beat the change-point/impact baselines everywhere.
    for fault in ("conc_memleak", "conc_cpuhog"):
        results = per_fault[fault]
        fchain = results["FChain"]
        for scheme, pr in results.items():
            assert fchain.f1 >= pr.f1 - 0.15, (fault, scheme)
    diskhog = per_fault["conc_diskhog"]
    assert diskhog["FChain"].f1 >= diskhog["PAL"].f1 - 0.05
    assert diskhog["FChain"].f1 >= 0.5
