"""Fig. 11 — online pinpointing validation effectiveness.

The paper picks the two faults every scheme struggles with — the System S
Bottleneck and the System S concurrent CpuHog — and shows that
``FChain+VAL`` (FChain with online validation) removes most false alarms,
improving precision without improving recall. This benchmark scores both
variants over the same runs.
"""

import pytest

from _helpers import save_roc_svgs, records_for, save_and_print, score_scheme
from repro.eval.report import format_scheme_table
from repro.eval.runner import (
    FChainLocalizer,
    FChainValidatedLocalizer,
    context_for,
)
from repro.eval.metrics import PrecisionRecall
from repro.eval.scenarios import scenario_by_name

FAULTS = ("systems/bottleneck", "systems/conc_cpuhog")


@pytest.fixture(scope="module")
def fig11():
    per_fault = {}
    sample = None
    for name in FAULTS:
        scenario = scenario_by_name(name)
        records = records_for(name)
        plain = score_scheme(FChainLocalizer(), scenario, records)
        validated = PrecisionRecall()
        scheme = FChainValidatedLocalizer()
        for record in records:
            scheme.bind(record)
            pinpointed = scheme.localize(
                record.store,
                violation_time=record.violation_time,
                context=context_for(scenario, record),
            )
            validated.update(pinpointed, record.ground_truth)
        per_fault[name.split("/")[1]] = {
            "FChain": plain,
            "FChain+VAL": validated,
        }
        sample = sample or (scenario, records[0])
    return per_fault, sample


def test_fig11_online_validation(fig11, benchmark):
    per_fault, (scenario, record) = fig11
    scheme = FChainValidatedLocalizer()
    scheme.bind(record)
    context = context_for(scenario, record)
    benchmark(
        lambda: scheme.localize(
            record.store,
            violation_time=record.violation_time,
            context=context,
        )
    )
    save_roc_svgs("fig11_validation", per_fault)
    save_and_print(
        "fig11_validation",
        format_scheme_table(
            "Fig. 11 — online validation on the two hardest System S faults",
            per_fault,
        ),
    )
    for fault, results in per_fault.items():
        plain, validated = results["FChain"], results["FChain+VAL"]
        # Validation removes false alarms (precision up, never down)...
        assert validated.precision >= plain.precision - 1e-9, fault
        # ...and cannot recover missed components (paper Sec. III-D).
        assert validated.recall <= plain.recall + 1e-9, fault
