"""Telemetry overhead — ``telemetry="off"`` must be near-free.

The observability subsystem promises that the default ``"off"`` mode
adds no measurable cost to the pipeline: every instrumented call site
collapses onto the shared :data:`~repro.obs.trace.NULL_SPAN` singleton,
so no spans are allocated and no clocks are read. This benchmark holds
that promise to numbers:

* a NULL_SPAN "instrumented call" (context enter/exit + child + count +
  tag) must cost well under a microsecond — i.e. be indistinguishable
  from the cost of the method dispatch itself;
* an off-mode diagnosis must not be slower than a full-telemetry one
  (best-of-N, with slack for machine noise) — tracing must never be on
  the critical path unless asked for.

Run standalone (``python benchmarks/bench_telemetry_overhead.py``) or
via pytest (``pytest benchmarks/bench_telemetry_overhead.py``).
"""

import sys
import time

import pytest

from _helpers import save_and_print
from repro.core.config import FChainConfig
from repro.core.fchain import FChainMaster
from repro.eval.bench import synthetic_store
from repro.obs.trace import NULL_SPAN

#: Upper bound on one fully instrumented no-op call, in microseconds.
#: Real per-call cost is ~0.1-0.3 us (a few attribute lookups); the
#: bound is loose because CI machines are slow and shared.
MAX_NULL_CALL_US = 5.0

#: Off-mode diagnosis may be at most this fraction of the full-telemetry
#: latency (best-of-N). 1.10 allows 10% machine noise; the real ratio is
#: <= 1.0 since "off" strictly does less work.
MAX_OFF_OVER_FULL = 1.10

CALLS = 200_000
SAMPLES = 4_000
COMPONENTS = 6
METRICS = 2
REPEATS = 5


def time_null_span_call_us(calls: int = CALLS) -> float:
    """Mean cost of one instrumented call in off mode, microseconds."""
    span = NULL_SPAN
    started = time.perf_counter()
    for _ in range(calls):
        with span.child("stage", component="c0") as child:
            child.count("samples", 128)
            child.tag(metric="cpu")
    elapsed = time.perf_counter() - started
    return elapsed / calls * 1e6


def _best_diagnosis_seconds(telemetry: str, repeats: int = REPEATS) -> float:
    """Best-of-N warm incremental diagnosis latency for one mode."""
    config = FChainConfig(cusum_bootstraps=60, telemetry=telemetry)
    store = synthetic_store(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, seed=7
    )
    master = FChainMaster(config, seed=7, incremental=True)
    master.slave.sync_with_store(store, store.end)
    # Distinct violation times defeat the per-window caches, so every
    # repeat pays the full analysis (the path telemetry instruments).
    times = [store.end - config.analysis_grace - 1 - i for i in range(repeats)]
    best = float("inf")
    for t_v in times:
        started = time.perf_counter()
        master.diagnose(store, t_v)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def overhead():
    null_us = time_null_span_call_us()
    off = _best_diagnosis_seconds("off")
    full = _best_diagnosis_seconds("full")
    return null_us, off, full


def _summary(null_us: float, off: float, full: float) -> str:
    return "\n".join(
        [
            f"NULL_SPAN instrumented call: {null_us:8.3f} us "
            f"(bound {MAX_NULL_CALL_US} us)",
            f"diagnosis best-of-{REPEATS}, telemetry=off : "
            f"{off * 1e3:8.2f} ms",
            f"diagnosis best-of-{REPEATS}, telemetry=full: "
            f"{full * 1e3:8.2f} ms",
            f"off/full ratio: {off / full:5.2f} "
            f"(bound {MAX_OFF_OVER_FULL})",
        ]
    )


def test_null_span_call_is_sub_microsecond_scale(overhead):
    """One off-mode instrumented call must cost (far) under the bound."""
    null_us, off, full = overhead
    save_and_print("telemetry_overhead", _summary(null_us, off, full))
    assert null_us < MAX_NULL_CALL_US, (
        f"off-mode instrumented call costs {null_us:.3f} us — NULL_SPAN "
        "is no longer a trivial no-op"
    )


def test_off_mode_diagnosis_not_slower_than_full(overhead):
    """Off-mode diagnosis latency must be within noise of full mode."""
    _, off, full = overhead
    assert off <= full * MAX_OFF_OVER_FULL, (
        f"telemetry=off diagnosis ({off * 1e3:.2f} ms) is slower than "
        f"telemetry=full ({full * 1e3:.2f} ms) beyond the "
        f"{MAX_OFF_OVER_FULL}x noise band — the off path is doing "
        "telemetry work"
    )


def test_off_mode_diagnosis_timed(benchmark):
    """pytest-benchmark target: one warm off-mode diagnosis."""
    config = FChainConfig(cusum_bootstraps=60, telemetry="off")
    store = synthetic_store(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, seed=7
    )
    master = FChainMaster(config, seed=7, incremental=True)
    master.slave.sync_with_store(store, store.end)
    t_v = store.end - config.analysis_grace - 1
    master.diagnose(store, t_v)
    benchmark(lambda: master.diagnose(store, t_v))


def main() -> int:
    null_us = time_null_span_call_us()
    off = _best_diagnosis_seconds("off")
    full = _best_diagnosis_seconds("full")
    print(_summary(null_us, off, full))
    ok = null_us < MAX_NULL_CALL_US and off <= full * MAX_OFF_OVER_FULL
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
