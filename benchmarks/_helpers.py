"""Shared machinery for the per-figure/per-table benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper:
it produces the fault-injection runs once (module-scoped), scores every
scheme on them, prints the resulting rows (precision/recall per scheme per
fault — the paper's ROC points) and saves them under ``benchmarks/out/``.
The pytest-benchmark timing target in each module is the *diagnosis* step,
which is the latency the paper cares about (Sec. III-G).

The number of runs per fault defaults to 6 and can be raised with the
``REPRO_RUNS`` environment variable (the paper uses 30-40; the shape of
the results is stable from ~6 runs).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Iterable, List, Sequence

from repro.baselines import (
    DependencyLocalizer,
    HistogramLocalizer,
    NetMedicLocalizer,
    PALLocalizer,
    TopologyLocalizer,
)
from repro.eval.metrics import PrecisionRecall, RocPoint
from repro.eval.runner import (
    FChainLocalizer,
    RunRecord,
    context_for,
    generate_runs,
)
from repro.eval.scenarios import Scenario, scenario_by_name

#: Runs per fault scenario (paper: 30-40; default scaled for laptop time).
RUNS = int(os.environ.get("REPRO_RUNS", "6"))

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Threshold grids swept for the score-based schemes.
HISTOGRAM_THRESHOLDS = (0.2, 0.5, 1.0, 2.0)
NETMEDIC_DELTAS = (0.02, 0.1, 0.3)


def save_and_print(name: str, text: str) -> None:
    """Print a result block and persist it under ``benchmarks/out/``."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def save_roc_svgs(name: str, per_fault) -> None:
    """Render each fault's precision/recall scatter to an SVG figure."""
    from repro.eval.svgfig import roc_figure, save_svg

    OUT_DIR.mkdir(exist_ok=True)
    for fault, results in per_fault.items():
        svg = roc_figure(
            {
                scheme: (pr.recall, pr.precision)
                for scheme, pr in results.items()
            },
            title=f"{name} — {fault}",
        )
        save_svg(svg, OUT_DIR / f"{name}_{fault}.svg")


def records_for(name: str, runs: int = None) -> List[RunRecord]:
    """Generate (deterministically) the shared runs of one scenario."""
    scenario = scenario_by_name(name)
    return generate_runs(scenario, runs or RUNS, base_seed="bench")


def score_scheme(
    scheme, scenario: Scenario, records: Sequence[RunRecord]
) -> PrecisionRecall:
    """Score one scheme over shared records."""
    accumulator = PrecisionRecall()
    for record in records:
        context = context_for(scenario, record)
        pinpointed = scheme.localize(
            record.store,
            violation_time=record.violation_time,
            context=context,
        )
        accumulator.update(pinpointed, record.ground_truth)
    return accumulator


def best_point(points: Iterable[RocPoint]) -> PrecisionRecall:
    """Pick a sweep's best-F1 operating point, as a PrecisionRecall."""
    best = max(
        points,
        key=lambda p: (
            0.0
            if (p.precision + p.recall) == 0
            else 2 * p.precision * p.recall / (p.precision + p.recall)
        ),
    )
    # Re-encode as a PrecisionRecall-like carrier for uniform printing.
    pr = PrecisionRecall()
    pr.true_positives = int(round(best.recall * 1000))
    pr.false_negatives = 1000 - pr.true_positives
    if best.precision > 0:
        pr.false_positives = int(
            round(pr.true_positives * (1 - best.precision) / best.precision)
        )
    elif pr.true_positives == 0:
        pr.false_positives = 1
    return pr


def histogram_roc(
    scenario: Scenario, records: Sequence[RunRecord]
) -> List[RocPoint]:
    """Sweep the Histogram threshold using per-run scores computed once."""
    scorer = HistogramLocalizer()
    per_run_scores = []
    for record in records:
        context = context_for(scenario, record)
        per_run_scores.append(
            (
                {
                    comp: scorer.score(
                        record.store, comp, record.violation_time, context
                    )
                    for comp in record.store.components
                },
                record.ground_truth,
            )
        )
    points = []
    for threshold in HISTOGRAM_THRESHOLDS:
        pr = PrecisionRecall()
        for scores, truth in per_run_scores:
            pinpointed = {c for c, s in scores.items() if s > threshold}
            pr.update(pinpointed, truth)
        points.append(RocPoint(threshold, pr.precision, pr.recall))
    return points


def netmedic_roc(
    scenario: Scenario, records: Sequence[RunRecord]
) -> List[RocPoint]:
    """Sweep NetMedic's delta using per-run blame scores computed once."""
    scheme = NetMedicLocalizer()
    per_run_blames = []
    for record in records:
        context = context_for(scenario, record)
        per_run_blames.append(
            (
                scheme.blame_scores(
                    record.store, record.violation_time, context
                ),
                record.ground_truth,
            )
        )
    points = []
    for delta in NETMEDIC_DELTAS:
        pr = PrecisionRecall()
        for blames, truth in per_run_blames:
            if blames:
                top = max(blames.values())
                pinpointed = {
                    c for c, b in blames.items() if top - b <= delta
                }
            else:
                pinpointed = set()
            pr.update(pinpointed, truth)
        points.append(RocPoint(delta, pr.precision, pr.recall))
    return points


def standard_comparison(
    scenario_name: str, records: Sequence[RunRecord]
) -> Dict[str, PrecisionRecall]:
    """Run the paper's scheme roster (Figs. 6-10) over shared records.

    Histogram and NetMedic are threshold-swept; their best-F1 operating
    point is reported in the table (their full curves are what the
    paper's ROC figures plot).
    """
    scenario = scenario_by_name(scenario_name)
    results: Dict[str, PrecisionRecall] = {}
    results["FChain"] = score_scheme(FChainLocalizer(), scenario, records)
    results["Histogram"] = best_point(histogram_roc(scenario, records))
    results["NetMedic"] = best_point(netmedic_roc(scenario, records))
    results["Topology"] = score_scheme(TopologyLocalizer(), scenario, records)
    results["Dependency"] = score_scheme(
        DependencyLocalizer(), scenario, records
    )
    results["PAL"] = score_scheme(PALLocalizer(), scenario, records)
    return results
