"""Push a recorded trace into a running edge server and check the verdict.

The CI ``edge`` lane's client half: reads the same long-format metrics
CSV + performance CSV that ``repro replay`` consumes, pushes them
over HTTP in per-tick-chunk CSV bodies (honouring 429 backpressure),
waits for the pipeline to drain, then asserts on the incidents the REST
API reports — the over-the-wire equivalent of ``repro replay
--expect-incidents 1 --expect-culprit db``.

Usage::

    python benchmarks/http_load.py --address 127.0.0.1:8080 \\
        benchmarks/traces/rubis_cpuhog_metrics.csv \\
        benchmarks/traces/rubis_cpuhog_performance.csv \\
        --expect-incidents 1 --expect-culprit db --shutdown
"""

from __future__ import annotations

import argparse
import csv
import io
import sys
import time
from typing import Dict, List

from repro.edge.client import EdgeClient, split_address
from repro.edge.ingest import PERFORMANCE_COMPONENT


def load_rows(metrics_path: str, performance_path: str) -> Dict[int, List]:
    """Group metric + performance rows by tick, ready to re-render."""
    by_tick: Dict[int, List] = {}
    with open(metrics_path, newline="") as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        for row in reader:
            if not row:
                continue
            by_tick.setdefault(int(row[0]), []).append(row)
    with open(performance_path, newline="") as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        for row in reader:
            if not row:
                continue
            tick = int(row[0])
            by_tick.setdefault(tick, []).append(
                [row[0], PERFORMANCE_COMPONENT, "latency", row[1]]
            )
    return by_tick


def render_chunk(by_tick: Dict[int, List], ticks: List[int]) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time", "component", "metric", "value"])
    for tick in ticks:
        writer.writerows(by_tick[tick])
    return out.getvalue()


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("metrics", help="long-format metrics CSV")
    parser.add_argument("performance", help="performance-signal CSV")
    parser.add_argument(
        "--address", default="127.0.0.1:8080", help="edge server host:port"
    )
    parser.add_argument(
        "--chunk-ticks", type=int, default=60,
        help="ticks per HTTP push (default 60)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the pipeline to drain",
    )
    parser.add_argument("--expect-incidents", type=int, default=None)
    parser.add_argument("--expect-culprit", default=None)
    parser.add_argument(
        "--shutdown", action="store_true",
        help="POST /v1/shutdown once the checks are done",
    )
    args = parser.parse_args(argv)

    host, port = split_address(args.address)
    by_tick = load_rows(args.metrics, args.performance)
    ticks = sorted(by_tick)
    print(f"pushing {len(ticks)} ticks to http://{host}:{port} ...")

    client = EdgeClient(host, port, timeout=max(args.timeout, 30.0))
    sheds = 0
    for start in range(0, len(ticks), args.chunk_ticks):
        chunk = ticks[start : start + args.chunk_ticks]
        body = render_chunk(by_tick, chunk)
        while True:
            response = client.push_csv(body)
            if response.status == 202:
                break
            if response.status == 429:
                sheds += 1
                time.sleep(
                    min(float(response.headers.get("retry-after", "1")), 0.2)
                )
                continue
            print(f"FAIL push -> {response.status}: {response.body[:200]}")
            return 1

    stats = client.wait_drained(len(ticks), timeout=args.timeout)
    print(
        f"drained: {stats['pipeline']['ticks']} ticks, "
        f"{stats['pipeline']['triggered']} trigger(s), "
        f"{stats['shed_batches']} shed batch(es), {sheds} shed push(es)"
    )

    incidents = client.incidents()
    ok = True
    for incident in incidents:
        diagnosis = client.diagnosis(incident["id"])["diagnosis"]
        print(
            f"incident #{incident['id']}: violation "
            f"t={incident['violation_tick']} faulty={incident['faulty']} "
            f"confidence={diagnosis.get('confidence')}"
        )
    if args.expect_incidents is not None:
        if len(incidents) != args.expect_incidents:
            print(
                f"FAIL expected exactly {args.expect_incidents} "
                f"incident(s), got {len(incidents)}"
            )
            ok = False
    if args.expect_culprit is not None:
        if not incidents:
            print(f"FAIL no incident names culprit {args.expect_culprit!r}")
            ok = False
        for incident in incidents:
            if args.expect_culprit not in incident["faulty"]:
                print(
                    f"FAIL incident #{incident['id']} pinpointed "
                    f"{incident['faulty']}, expected "
                    f"{args.expect_culprit!r}"
                )
                ok = False

    if args.shutdown:
        client.shutdown()
        print("requested server shutdown")
    client.close()
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
