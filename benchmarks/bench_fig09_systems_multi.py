"""Fig. 9 — localization accuracy, System S multi-component faults.

Concurrent MemLeak and concurrent CpuHog in two randomly selected PEs.
FChain's concurrency threshold must pinpoint both culprits even though no
dependency information is available for the stream application.
"""

import pytest

from _helpers import save_roc_svgs, records_for, save_and_print, standard_comparison
from repro.eval.report import format_scheme_table
from repro.eval.runner import FChainLocalizer, context_for
from repro.eval.scenarios import scenario_by_name

FAULTS = ("systems/conc_memleak", "systems/conc_cpuhog")


@pytest.fixture(scope="module")
def fig09():
    per_fault = {}
    sample = None
    for name in FAULTS:
        records = records_for(name)
        per_fault[name.split("/")[1]] = standard_comparison(name, records)
        sample = sample or (scenario_by_name(name), records[0])
    return per_fault, sample


def test_fig09_systems_multi_faults(fig09, benchmark):
    per_fault, (scenario, record) = fig09
    context = context_for(scenario, record)
    benchmark(
        lambda: FChainLocalizer().localize(
            record.store, record.violation_time, context
        )
    )
    save_roc_svgs("fig09_systems_multi", per_fault)
    save_and_print(
        "fig09_systems_multi",
        format_scheme_table(
            "Fig. 9 — System S multi-component concurrent faults (P/R)",
            per_fault,
        ),
    )
    assert per_fault["conc_memleak"]["FChain"].recall >= 0.6
    for fault, results in per_fault.items():
        fchain = results["FChain"]
        for scheme, pr in results.items():
            assert fchain.f1 >= pr.f1 - 0.15, (fault, scheme)
