"""Fig. 6 — localization accuracy, RUBiS single-component faults.

Regenerates the scheme comparison for MemLeak, CpuHog and NetHog on RUBiS.
Expected shape (paper Sec. III-B): FChain dominates; Histogram misses the
fast-manifesting CpuHog/NetHog; Topology/Dependency collapse on the
last-tier faults (back-pressure blames the upstream tiers) but do fine on
NetHog at the first tier; PAL sits in between.
"""

import pytest

from _helpers import save_roc_svgs, records_for, save_and_print, standard_comparison
from repro.eval.report import format_scheme_table
from repro.eval.runner import FChainLocalizer, context_for
from repro.eval.scenarios import scenario_by_name

FAULTS = ("rubis/memleak", "rubis/cpuhog", "rubis/nethog")


@pytest.fixture(scope="module")
def fig06():
    per_fault = {}
    sample = None
    for name in FAULTS:
        records = records_for(name)
        per_fault[name.split("/")[1]] = standard_comparison(name, records)
        sample = sample or (scenario_by_name(name), records[0])
    return per_fault, sample


def _f1(pr):
    return pr.f1


def test_fig06_rubis_single_faults(fig06, benchmark):
    per_fault, (scenario, record) = fig06
    context = context_for(scenario, record)
    benchmark(
        lambda: FChainLocalizer().localize(
            record.store, record.violation_time, context
        )
    )
    save_roc_svgs("fig06_rubis_single", per_fault)
    save_and_print(
        "fig06_rubis_single",
        format_scheme_table(
            "Fig. 6 — RUBiS single-component faults (P/R per scheme)",
            per_fault,
        ),
    )
    # Headline: FChain has the best aggregate F1 across the three faults
    # (per-fault, threshold-swept baselines are scored at their *oracle*
    # operating point, so aggregate dominance is the fair comparison).
    schemes = next(iter(per_fault.values())).keys()
    mean_f1 = {
        scheme: sum(_f1(per_fault[f][scheme]) for f in per_fault) / len(per_fault)
        for scheme in schemes
    }
    for scheme, value in mean_f1.items():
        assert mean_f1["FChain"] >= value - 0.02, (scheme, value)
    # Back-pressure breaks Topology on the DB-side faults...
    assert _f1(per_fault["cpuhog"]["Topology"]) < 0.6
    # ...but not on the web-tier NetHog.
    assert _f1(per_fault["nethog"]["Topology"]) > 0.6
