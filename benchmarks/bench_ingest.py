"""Ring-store ingest — batched runs vs per-sample samples.

The metric store keeps every series in a preallocated mirrored ring
buffer; a contiguous :class:`~repro.monitoring.store.IngestRun` lands as
one numpy copy instead of one Python call per sample. This benchmark
replays a 10,000-tick history across 8 components and 5 metrics through
both ingest shapes and asserts the batched feed is at least 10x faster
than the per-sample tolerant path *and* at least 10x faster than the
pre-rewrite dict-backed store's committed throughput — while leaving
bit-identical stored series.

Run standalone (``python benchmarks/bench_ingest.py``) or via pytest
(``pytest benchmarks/bench_ingest.py``).
"""

import sys

import pytest

from _helpers import save_and_print
from repro.eval.bench import PRE_REWRITE_INGEST_OPS, run_ingest_benchmark

SAMPLES = 10_000
COMPONENTS = 8
METRICS = 5
CHUNK = 512
REQUIRED_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def ingest_report():
    return run_ingest_benchmark(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, chunk=CHUNK
    )


def test_batched_ingest_speedup(ingest_report):
    """Batched runs must beat per-sample ingest by >= 10x."""
    save_and_print("ingest", ingest_report.summary())
    assert ingest_report.stores_match, (
        "batched and per-sample feeds diverged — run ingest no longer "
        "reproduces the per-sample store contents"
    )
    assert ingest_report.speedup >= REQUIRED_SPEEDUP, (
        f"speedup {ingest_report.speedup:.1f}x below the required "
        f"{REQUIRED_SPEEDUP}x on {SAMPLES} samples x {COMPONENTS} "
        f"components x {METRICS} metrics"
    )


def test_ring_beats_pre_rewrite_store(ingest_report):
    """The ring store must hold >= 10x over the pre-rewrite baseline."""
    assert ingest_report.speedup_vs_pre_rewrite >= REQUIRED_SPEEDUP, (
        f"batched ring ingest at {ingest_report.batched_ops:.0f} "
        f"samples/s is only {ingest_report.speedup_vs_pre_rewrite:.1f}x "
        f"the pre-rewrite store's {PRE_REWRITE_INGEST_OPS:.0f} samples/s"
    )


def test_batched_ingest_timed(benchmark):
    """pytest-benchmark target: batched ingest of one full store."""
    from repro.eval.bench import measure_ingest, synthetic_store

    store = synthetic_store(samples=2000, components=4, metrics=2)
    benchmark(lambda: measure_ingest(store, chunk=CHUNK))


def main() -> int:
    report = run_ingest_benchmark(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, chunk=CHUNK
    )
    print(report.summary())
    ok = (
        report.stores_match
        and report.speedup >= REQUIRED_SPEEDUP
        and report.speedup_vs_pre_rewrite >= REQUIRED_SPEEDUP
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
