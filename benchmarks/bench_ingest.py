"""Fleet-scale ingest — batched vs per-sample model updates.

The slave's normal-fluctuation models are fed at 1 Hz per metric; at
fleet scale (and whenever a slave catches up with a store) the feed
arrives in chunks. ``MarkovPredictor.update_many`` processes a chunk
with O(1) numpy calls instead of O(samples) Python calls while staying
bit-identical to the per-sample path.

This benchmark ingests a 10,000-sample history across 8 components and
5 metrics through both paths and asserts the batched feed is at least
10x faster *while producing identical prediction-error streams*.

Run standalone (``python benchmarks/bench_ingest.py``) or via pytest
(``pytest benchmarks/bench_ingest.py``).
"""

import sys

import pytest

from _helpers import save_and_print
from repro.eval.bench import run_ingest_benchmark

SAMPLES = 10_000
COMPONENTS = 8
METRICS = 5
CHUNK = 512
REQUIRED_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def ingest_report():
    return run_ingest_benchmark(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, chunk=CHUNK
    )


def test_batched_ingest_speedup(ingest_report):
    """Chunked observe_many must beat per-sample observe by >= 10x."""
    save_and_print("ingest", ingest_report.summary())
    assert ingest_report.streams_match, (
        "batched and per-sample feeds diverged — update_many no longer "
        "reproduces the scalar update path"
    )
    assert ingest_report.speedup >= REQUIRED_SPEEDUP, (
        f"speedup {ingest_report.speedup:.1f}x below the required "
        f"{REQUIRED_SPEEDUP}x on {SAMPLES} samples x {COMPONENTS} "
        f"components x {METRICS} metrics"
    )


def test_batched_ingest_timed(benchmark):
    """pytest-benchmark target: batched ingest of one full store."""
    from repro.eval.bench import measure_ingest, synthetic_store

    store = synthetic_store(samples=2000, components=4, metrics=2)
    benchmark(lambda: measure_ingest(store, chunk=CHUNK))


def main() -> int:
    report = run_ingest_benchmark(
        samples=SAMPLES, components=COMPONENTS, metrics=METRICS, chunk=CHUNK
    )
    print(report.summary())
    ok = report.streams_match and report.speedup >= REQUIRED_SPEEDUP
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
