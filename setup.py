"""Legacy setup shim.

Metadata lives in ``pyproject.toml``; this file exists so environments
without the ``wheel`` package (where PEP 660 editable installs fail with
``invalid command 'bdist_wheel'``) can still do a development install via
``python setup.py develop`` — or simply add ``src/`` to ``PYTHONPATH``.
"""

from setuptools import setup

setup()
