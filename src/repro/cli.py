"""Command-line interface: run scenarios and print scheme comparisons.

Examples::

    python -m repro list
    python -m repro run rubis/cpuhog --runs 5
    python -m repro run systems/bottleneck --runs 5 --schemes FChain,PAL
    python -m repro demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.baselines import (
    DependencyLocalizer,
    FixedFilteringLocalizer,
    HistogramLocalizer,
    NetMedicLocalizer,
    PALLocalizer,
    TopologyLocalizer,
)
from repro.baselines.base import Localizer
from repro.eval.report import format_scheme_table
from repro.eval.runner import (
    FChainLocalizer,
    FChainValidatedLocalizer,
    evaluate_schemes,
)
from repro.eval.scenarios import all_scenarios, scenario_by_name

#: Factory for every scheme selectable from the command line.
SCHEMES: Dict[str, callable] = {
    "FChain": FChainLocalizer,
    "FChain+VAL": FChainValidatedLocalizer,
    "Histogram": HistogramLocalizer,
    "NetMedic": NetMedicLocalizer,
    "Topology": TopologyLocalizer,
    "Dependency": DependencyLocalizer,
    "PAL": PALLocalizer,
    "Fixed-Filtering": FixedFilteringLocalizer,
}


#: Schemes whose constructor accepts the slave fan-out width.
_JOB_AWARE = {"FChain", "FChain+VAL"}


def _build_schemes(names: str, jobs: Optional[int] = None) -> List[Localizer]:
    schemes = []
    for name in names.split(","):
        name = name.strip()
        if name not in SCHEMES:
            raise SystemExit(
                f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
            )
        factory = SCHEMES[name]
        if jobs and name in _JOB_AWARE:
            schemes.append(factory(jobs=jobs))
        else:
            schemes.append(factory())
    return schemes


def cmd_list(_: argparse.Namespace) -> int:
    print("Available fault scenarios:")
    for scenario in all_scenarios():
        window = scenario.look_back_window or 100
        print(f"  {scenario.name:26s} (W={window}s)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    schemes = _build_schemes(args.schemes, jobs=args.jobs)
    print(
        f"Running {args.runs} fault-injection runs of {scenario.name} "
        f"with schemes: {[s.name for s in schemes]}"
    )
    results = evaluate_schemes(
        scenario, schemes, n_runs=args.runs, base_seed=args.seed
    )
    print()
    print(
        format_scheme_table(
            f"{scenario.name} over {args.runs} runs",
            {scenario.name.split("/")[1]: results},
        )
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Diagnose recorded metrics from a CSV file."""
    from repro.core import FChain, FChainConfig
    from repro.core.dependency import load_graph
    from repro.monitoring.io import load_store_csv

    store = load_store_csv(args.metrics)
    graph = load_graph(args.graph) if args.graph else None
    config = FChainConfig()
    if args.window:
        config = config.with_window(args.window)
    fchain = FChain(config, dependency_graph=graph, jobs=args.jobs)
    diagnosis = fchain.localize(store, violation_time=args.violation)
    print(diagnosis.summary())
    print(f"(diagnosis latency: {diagnosis.latency_seconds * 1e3:.0f} ms)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced diagnosis on a synthetic scenario and print it."""
    import json

    from repro.core.config import FChainConfig
    from repro.core.fchain import FChain
    from repro.eval.bench import synthetic_store
    from repro.obs import default_registry

    config = FChainConfig(executor=args.executor, telemetry=args.telemetry)
    store = synthetic_store(
        samples=args.samples,
        components=args.components,
        metrics=args.metrics,
        seed=args.seed,
    )
    violation = store.end - config.analysis_grace - 1
    with FChain(config, seed=args.seed, jobs=args.jobs) as fchain:
        diagnosis = fchain.localize(store, violation_time=violation)
    if args.format == "json":
        print(json.dumps(diagnosis.trace.to_dict(), indent=2))
    elif args.format == "prom":
        print(default_registry().render_prometheus(), end="")
    else:
        print(
            f"synthetic scenario: {args.samples} samples x "
            f"{args.components} components x {args.metrics} metrics, "
            f"violation at t={violation}s, executor={args.executor}, "
            f"jobs={args.jobs or 1}"
        )
        print()
        print(diagnosis.trace.format_tree(min_ms=args.min_ms))
        print()
        print(f"pinpointed: {sorted(diagnosis.faulty)}")
        print(f"diagnosis latency: {diagnosis.latency_seconds * 1e3:.0f} ms")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark ingest throughput and diagnosis latency."""
    from repro.core.config import FChainConfig
    from repro.eval.bench import (
        run_benchmark,
        run_fleet_benchmark,
        run_http_ingest_benchmark,
        run_ingest_benchmark,
        run_service_loop_benchmark,
        run_topology_benchmark,
        write_benchmark_json,
    )

    samples = min(args.samples, 2_000) if args.quick else args.samples
    repeats = min(args.repeats, 2) if args.quick else args.repeats
    config = FChainConfig(
        executor=args.executor,
        telemetry="full" if args.emit_metrics else "off",
    )

    print(
        f"Benchmarking ingest throughput: {samples} samples x "
        f"{args.components} components x {args.metrics} metrics"
    )
    ingest = run_ingest_benchmark(
        samples=samples,
        components=args.components,
        metrics=args.metrics,
        seed=args.seed,
        config=config,
    )
    print()
    print(ingest.summary())

    print()
    print(
        f"Benchmarking diagnosis latency: {samples} samples x "
        f"{args.components} components x {args.metrics} metrics, "
        f"{repeats} repeats, jobs={args.jobs or 1}, "
        f"executor={args.executor}"
    )
    report = run_benchmark(
        samples=samples,
        components=args.components,
        metrics=args.metrics,
        repeats=repeats,
        jobs=args.jobs,
        seed=args.seed,
        config=config,
    )
    print()
    print(report.summary())

    print()
    print(
        f"Benchmarking service loop steady state: {samples} ticks x "
        f"{args.components} components x {args.metrics} metrics"
    )
    service = run_service_loop_benchmark(
        samples=samples,
        components=args.components,
        metrics=args.metrics,
        seed=args.seed,
        config=config,
    )
    print()
    print(service.summary())

    print()
    print(
        f"Benchmarking HTTP edge ingest: {samples} ticks x "
        f"{args.components} components x {args.metrics} metrics over "
        f"loopback"
    )
    http_ingest = run_http_ingest_benchmark(
        samples=samples,
        components=args.components,
        metrics=args.metrics,
        seed=args.seed,
        config=config,
    )
    print()
    print(http_ingest.summary())

    print()
    print(
        f"Benchmarking fleet layer: {args.fleet_tenants} tenants x "
        f"{args.components} components x 1 metric on "
        f"{args.fleet_shards} shards"
    )
    # Deliberately NOT shrunk by --quick: the regression gate matches
    # workload parameters against the committed baseline, and the 1 Hz /
    # fairness acceptance targets are defined at this scale.
    fleet = run_fleet_benchmark(
        tenants=args.fleet_tenants,
        components=args.components,
        shards=args.fleet_shards,
        seed=args.seed,
    )
    print()
    print(fleet.summary())

    topology = None
    if args.topology_services > 0:
        print()
        print(
            f"Benchmarking topology-guided diagnosis: "
            f"{args.topology_services}-service mesh, top-15 neighborhood"
        )
        # Also NOT shrunk by --quick: the subset/culprit/speedup
        # acceptance targets (and the committed baseline's workload
        # parameters) are defined on the canonical 100-service mesh run.
        topology = run_topology_benchmark(services=args.topology_services)
        print()
        print(topology.summary())

    if args.json:
        write_benchmark_json("BENCH_ingest.json", ingest)
        write_benchmark_json("BENCH_incremental_engine.json", report)
        write_benchmark_json("BENCH_service_loop.json", service)
        write_benchmark_json("BENCH_http_ingest.json", http_ingest)
        write_benchmark_json("BENCH_fleet.json", fleet)
        if topology is not None:
            write_benchmark_json("BENCH_topology.json", topology)
        print(
            "\nwrote BENCH_ingest.json, BENCH_incremental_engine.json, "
            "BENCH_service_loop.json, BENCH_http_ingest.json, "
            "BENCH_fleet.json"
            + (" and BENCH_topology.json" if topology is not None else "")
        )

    if args.emit_metrics:
        from repro.obs import default_registry

        print("\n# --- telemetry metrics (Prometheus text format) ---")
        print(default_registry().render_prometheus(), end="")

    gate_ok = True
    if args.check:
        from repro.eval.regression import (
            BaselineMismatch,
            check_against_baselines,
            format_checks,
        )

        reports = {
            "BENCH_ingest.json": ingest.to_json(),
            "BENCH_incremental_engine.json": report.to_json(),
            "BENCH_service_loop.json": service.to_json(),
            "BENCH_http_ingest.json": http_ingest.to_json(),
            "BENCH_fleet.json": fleet.to_json(),
        }
        if topology is not None:
            reports["BENCH_topology.json"] = topology.to_json()
        print(f"\nregression gate vs baselines in {args.check}:")
        try:
            checks, missing = check_against_baselines(
                reports,
                args.check,
                ops_tolerance=args.tolerance,
                p99_tolerance=args.p99_tolerance,
            )
        except BaselineMismatch as exc:
            print(f"FAIL {exc}")
            gate_ok = False
        else:
            print(format_checks(checks))
            for name in missing:
                print(f"FAIL no committed baseline for {name}")
            gate_ok = all(c.ok for c in checks) and not missing

    if not fleet.sustained:
        print("\nFAIL fleet did not sustain the 1 Hz tick target")
    if not fleet.fairness_ok:
        print(
            f"\nFAIL storm fairness: non-storming tenants' p99 rose "
            f"{fleet.fairness_ratio:.2f}x (bound {fleet.FAIRNESS_BOUND:.1f}x)"
        )
    if topology is not None and not topology.gate_ok:
        print(
            f"\nFAIL topology scoping: subset_ok={topology.subset_ok} "
            f"culprit_match={topology.culprit_match} "
            f"speedup={topology.speedup:.1f}x "
            f"(target >= {topology.SPEEDUP_TARGET:.1f}x)"
        )
    ok = (
        report.results_match
        and ingest.stores_match
        and gate_ok
        and fleet.sustained
        and fleet.fairness_ok
        and (topology is None or topology.gate_ok)
    )
    return 0 if ok else 1


def _service_config(args) -> "FChainConfig":
    from repro.core.config import FChainConfig

    return FChainConfig(
        service_cooldown=args.cooldown,
        service_queue_depth=args.queue_depth,
        executor=args.executor,
        telemetry=args.telemetry,
        topology_mode=getattr(args, "topology_mode", "full"),
        topology_top_k=getattr(args, "topology_top_k", 0) or 0,
    )


def _print_loop_outcome(pipeline, incidents) -> None:
    for incident in incidents:
        print(incident.summary())
    if not incidents:
        print("no incidents")
    print(
        f"loop: {pipeline.ticks} ticks, {pipeline.triggered} trigger(s), "
        f"{pipeline.dropped} shed, "
        f"{pipeline.warm_sync_skipped} warm-sync skip(s)"
    )
    for violation_tick, error in pipeline.failures:
        print(f"FAIL diagnosis at t={violation_tick} raised: {error!r}")


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the online service loop against a live simulated application."""
    from repro.monitoring.slo import LatencySLO
    from repro.service import JsonlSink, OnlinePipeline, SimFeed

    topology = None
    origin = None
    if args.app == "mesh":
        from repro.apps.mesh import MeshApplication
        from repro.core.topology import OnlineTopology
        from repro.faults.library import BottleneckFault

        app = MeshApplication(
            seed=args.seed,
            services=args.services,
            duration=args.duration + 600,
        )
        threshold = app.slo_threshold
        if args.fault_at is not None:
            target = args.fault_component or app.default_fault_target()
            app.inject(
                BottleneckFault(
                    args.fault_at, target, cap=app.bottleneck_cap(target)
                )
            )
            print(
                f"injecting bottleneck on {target!r} at t={args.fault_at}s"
            )
        topology = OnlineTopology()
        origin = app.gateway
        if args.topology_mode == "neighborhood":
            print(
                f"topology-guided diagnosis: top-{args.topology_top_k} "
                f"neighborhood of {origin!r}"
            )
    else:
        from repro.apps.rubis import RubisApplication

        app = RubisApplication(seed=args.seed, duration=args.duration + 600)
        threshold = RubisApplication.SLO_THRESHOLD
        if args.fault_at is not None:
            from repro.faults.library import CpuHogFault

            target = args.fault_component or "db"
            app.inject(CpuHogFault(args.fault_at, target))
            print(f"injecting cpuhog on {target!r} at t={args.fault_at}s")
    feed = SimFeed(app, duration=args.duration)
    if args.chaos is not None:
        from repro.eval.chaos import ChaosSpec, CorruptedFeed

        feed = CorruptedFeed(
            feed,
            ChaosSpec(
                seed=args.chaos,
                gap_fraction=0.05,
                nan_fraction=0.02,
                delay_fraction=0.05,
                delay_max=3,
            ),
        )
        print(f"chaos: corrupting the live feed (seed {args.chaos})")
    detector = LatencySLO(threshold, sustain=10, retention=600)
    sinks = [JsonlSink(args.incidents)] if args.incidents else []
    pipeline = OnlinePipeline(
        feed,
        detector,
        config=_service_config(args),
        seed=args.seed,
        jobs=args.jobs,
        sinks=sinks,
        topology=topology,
        origin=origin,
    )
    print(f"serving {args.app} for {args.duration} simulated seconds ...")
    incidents = pipeline.run()
    _print_loop_outcome(pipeline, incidents)
    if args.incidents:
        print(f"incident records appended to {args.incidents}")
    ok = not pipeline.failures
    ok &= _expected_incidents_ok(args, incidents)
    return 0 if ok else 1


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a recorded trace through the online service loop."""
    from repro.monitoring.io import load_store_csv
    from repro.monitoring.quality import DataQualityPolicy
    from repro.monitoring.slo import LatencySLO
    from repro.service import (
        JsonlSink,
        OnlinePipeline,
        StoreReplayFeed,
        load_performance_csv,
    )

    store = load_store_csv(args.metrics, policy=DataQualityPolicy())
    performance = load_performance_csv(args.performance)
    feed = StoreReplayFeed(store, performance=performance)
    detector = LatencySLO(args.threshold, sustain=args.sustain)
    sinks = [JsonlSink(args.incidents)] if args.incidents else []
    pipeline = OnlinePipeline(
        feed,
        detector,
        config=_service_config(args),
        seed=args.seed,
        jobs=args.jobs,
        sinks=sinks,
    )
    print(
        f"replaying {store.length} ticks x {len(store.components)} "
        f"components from {args.metrics} ..."
    )
    incidents = pipeline.run()
    _print_loop_outcome(pipeline, incidents)

    ok = not pipeline.failures
    ok &= _expected_incidents_ok(args, incidents)
    return 0 if ok else 1


def _expected_incidents_ok(args: argparse.Namespace, incidents) -> bool:
    """Apply the CI soak assertions (--expect-incidents/--expect-culprit)."""
    ok = True
    if args.expect_incidents is not None and len(incidents) != args.expect_incidents:
        print(
            f"FAIL expected exactly {args.expect_incidents} incident(s), "
            f"got {len(incidents)}"
        )
        ok = False
    if args.expect_culprit is not None:
        if not incidents:
            print(f"FAIL no incident names culprit {args.expect_culprit!r}")
            ok = False
        for incident in incidents:
            if args.expect_culprit not in incident.faulty:
                print(
                    f"FAIL incident #{incident.index} pinpointed "
                    f"{incident.faulty}, expected {args.expect_culprit!r}"
                )
                ok = False
    return ok


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run a tenant-fleet manifest through the sharded fleet layer."""
    import dataclasses
    import json as json_module

    from repro.fleet import HashRing, load_manifest, run_manifest

    manifest = load_manifest(args.manifest)
    overrides = {}
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.backend is not None:
        overrides["backend"] = args.backend
    if overrides:
        manifest = dataclasses.replace(manifest, **overrides).validate()

    if args.map:
        ring = HashRing(range(manifest.shards))
        placement = {}
        for tenant, shard in ring.assignments(manifest.tenants).items():
            placement.setdefault(shard, []).append(tenant)
        for shard in range(manifest.shards):
            tenants = sorted(placement.get(shard, []))
            print(f"shard {shard}: {len(tenants)} tenant(s)")
            for tenant in tenants:
                print(f"  {tenant}")
        return 0

    sinks = []
    handle = None
    if args.incidents:
        handle = open(args.incidents, "w")

        def jsonl_sink(tenant, incident, _handle=handle):
            json_module.dump(
                {"tenant": tenant, **incident.to_dict()}, _handle
            )
            _handle.write("\n")
            _handle.flush()

        sinks.append(jsonl_sink)

    print(
        f"fleet: {len(manifest.tenants)} tenants x {manifest.components} "
        f"components on {manifest.shards} {manifest.backend} shard(s), "
        f"{args.ticks} ticks, {len(manifest.faults)} injected fault(s)"
    )
    result = run_manifest(manifest, args.ticks, sinks=sinks)
    if handle is not None:
        handle.close()
    supervisor = result.supervisor
    incidents = supervisor.incidents
    total = sum(len(v) for v in incidents.values())
    print(
        f"drained: routed {result.routed} batches "
        f"({result.dropped} dropped), {total} incident(s) across "
        f"{len(incidents)} tenant(s)"
    )
    for tenant in sorted(incidents):
        for incident in incidents[tenant]:
            faulty = ",".join(incident.faulty) or "-"
            print(
                f"  {tenant}: violation t={incident.violation_tick} "
                f"faulty=[{faulty}] quality={incident.quality}"
            )
    for shard, tenant, message in supervisor.failures:
        print(f"  ERROR shard {shard} tenant {tenant}: {message}")

    ok = not supervisor.failures
    if args.expect_incidents is not None and total != args.expect_incidents:
        print(
            f"FAIL expected exactly {args.expect_incidents} incident(s), "
            f"got {total}"
        )
        ok = False
    if args.expect_tenant is not None:
        others = sorted(set(incidents) - {args.expect_tenant})
        if args.expect_tenant not in incidents:
            print(f"FAIL no incident for tenant {args.expect_tenant!r}")
            ok = False
        if others:
            print(f"FAIL cross-tenant incidents for {others}")
            ok = False
    if args.expect_culprit is not None:
        flat = [i for v in incidents.values() for i in v]
        if not flat:
            print(f"FAIL no incident names culprit {args.expect_culprit!r}")
            ok = False
        for incident in flat:
            if args.expect_culprit not in incident.faulty:
                print(
                    f"FAIL incident #{incident.index} pinpointed "
                    f"{incident.faulty}, expected {args.expect_culprit!r}"
                )
                ok = False
    return 0 if ok else 1


def cmd_edge(args: argparse.Namespace) -> int:
    """Serve the HTTP edge: push ingest in, incidents and metrics out."""
    from repro.edge import EdgeConfig, EdgeServer, open_incident_store
    from repro.edge.webhook import WebhookSink
    from repro.monitoring.slo import LatencySLO
    from repro.service import JsonlSink

    if args.store != "memory" and not args.store_path:
        raise SystemExit(f"--store {args.store} needs --store-path")
    store = open_incident_store(args.store, args.store_path)
    config = EdgeConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.ingest_queue_depth,
        telemetry=args.telemetry,
        allow_shutdown=not args.no_shutdown_endpoint,
    )
    server = EdgeServer(config, incident_store=store)

    sinks = []
    if args.webhook:
        sinks.append(
            WebhookSink(
                args.webhook, dead_letter_path=args.dead_letter
            )
        )
    if args.incidents:
        sinks.append(JsonlSink(args.incidents))

    if args.manifest:
        from repro.fleet import FleetSupervisor, load_manifest

        manifest = load_manifest(args.manifest)
        supervisor = FleetSupervisor(manifest.fleet_config())
        for spec in manifest.tenant_specs():
            supervisor.add_tenant(spec)
        server.attach_fleet(supervisor, sinks=sinks)
        print(
            f"edge: fleet mode, {len(manifest.tenants)} tenants on "
            f"{manifest.shards} shard(s)"
        )
    else:
        detector = LatencySLO(args.threshold, sustain=args.sustain)
        server.attach_pipeline(
            detector,
            fchain_config=_service_config(args),
            seed=args.seed,
            jobs=args.jobs,
            sinks=sinks,
        )

    server.start()
    print(
        f"edge: listening on http://{config.host}:{server.port} "
        f"(store={store.backend}, ingest queue depth "
        f"{config.queue_depth})"
    )
    print("  POST /v1/ingest         push metrics (JSON or CSV)")
    print("  GET  /v1/incidents      list diagnosed incidents")
    print("  GET  /v1/metrics        Prometheus metrics")
    try:
        server.serve_forever()
    finally:
        server.stop()
        incidents = store.count()
        store.close()
    print(
        f"edge: stopped after {server.enqueued_batches} batches "
        f"({server.shed_batches} shed), {incidents} incident(s)"
    )
    return 0


def cmd_demo(_: argparse.Namespace) -> int:
    from repro.apps.rubis import DB, RubisApplication
    from repro.core import FChain
    from repro.faults.library import CpuHogFault

    app = RubisApplication(seed=42, duration=2400)
    app.inject(CpuHogFault(1300, DB))
    app.run(1500)
    violation = app.slo.first_violation_after(1300)
    diagnosis = FChain(seed=42).localize(app.store, violation_time=violation)
    print(f"SLO violated at t={violation}s; FChain pinpoints "
          f"{sorted(diagnosis.faulty)} (truth: ['db'])")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FChain reproduction: run fault scenarios and compare "
        "localization schemes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list fault scenarios").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="run one scenario across schemes")
    run.add_argument("scenario", help="scenario name, e.g. rubis/cpuhog")
    run.add_argument("--runs", type=int, default=5)
    run.add_argument("--seed", default="cli")
    run.add_argument(
        "--schemes",
        default="FChain,Histogram,NetMedic,Topology,Dependency,PAL",
        help="comma-separated scheme names",
    )
    run.add_argument(
        "--jobs", type=int, default=None,
        help="FChain slave fan-out width (component analyses in parallel; "
        "default serial)",
    )
    run.set_defaults(func=cmd_run)

    analyze = sub.add_parser(
        "analyze", help="diagnose recorded metrics from a CSV file"
    )
    analyze.add_argument(
        "metrics", help="long-format CSV: time,component,metric,value"
    )
    analyze.add_argument(
        "--violation", type=int, required=True,
        help="SLO violation time t_v (seconds)",
    )
    analyze.add_argument(
        "--graph", default=None,
        help="dependency graph JSON (from repro.core.dependency.save_graph)",
    )
    analyze.add_argument(
        "--window", type=int, default=None, help="look-back window W override"
    )
    analyze.add_argument(
        "--jobs", type=int, default=None,
        help="slave fan-out width (default serial)",
    )
    analyze.set_defaults(func=cmd_analyze)

    bench = sub.add_parser(
        "bench",
        help="benchmark replay vs incremental diagnosis latency",
    )
    bench.add_argument("--samples", type=int, default=10_000)
    bench.add_argument("--components", type=int, default=8)
    bench.add_argument("--metrics", type=int, default=3)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--jobs", type=int, default=None,
        help="slave fan-out width for the incremental engine",
    )
    bench.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="slave pool executor used when --jobs >= 2",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="write BENCH_ingest.json and BENCH_incremental_engine.json "
        "to the current directory",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: shrink the history to 2000 samples and the "
        "repeats to 2",
    )
    bench.add_argument(
        "--fleet-tenants", type=int, default=1_000,
        help="fleet-benchmark tenant count (not shrunk by --quick: the "
        "acceptance targets are defined at 1000 tenants)",
    )
    bench.add_argument(
        "--fleet-shards", type=int, default=4,
        help="fleet-benchmark shard worker count",
    )
    bench.add_argument(
        "--topology-services", type=int, default=100,
        help="mesh size of the topology benchmark (not shrunk by "
        "--quick: the subset/culprit/speedup targets are defined at "
        "100 services; 0 skips the topology benchmark entirely)",
    )
    bench.add_argument(
        "--emit-metrics", action="store_true",
        help="run with telemetry enabled and print the aggregated "
        "Prometheus text-format metrics after the benchmarks",
    )
    bench.add_argument(
        "--check", metavar="BASELINE_DIR", default=None,
        help="compare the fresh ops/s and p99 numbers against committed "
        "baseline JSON files (e.g. benchmarks/baselines) and exit "
        "non-zero on regression",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional ops/s drop before --check fails "
        "(default 0.5 = fail below half the baseline throughput)",
    )
    bench.add_argument(
        "--p99-tolerance", type=float, default=1.5,
        help="allowed fractional p99 rise before --check fails "
        "(default 1.5 = fail above 2.5x the baseline p99)",
    )
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="run one fully traced diagnosis on a synthetic scenario",
    )
    trace.add_argument("--samples", type=int, default=2_000)
    trace.add_argument("--components", type=int, default=6)
    trace.add_argument("--metrics", type=int, default=3)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument(
        "--jobs", type=int, default=None,
        help="slave fan-out width (default serial)",
    )
    trace.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="slave pool executor used when --jobs >= 2",
    )
    trace.add_argument(
        "--telemetry", choices=("timings", "full"), default="full",
        help="telemetry level for the traced run",
    )
    trace.add_argument(
        "--format", choices=("tree", "json", "prom"), default="tree",
        help="tree: human-readable timeline; json: span tree dump; "
        "prom: Prometheus text-format metrics",
    )
    trace.add_argument(
        "--min-ms", type=float, default=0.0,
        help="hide tree spans shorter than this many milliseconds",
    )
    trace.set_defaults(func=cmd_trace)

    def _add_service_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--cooldown", type=int, default=60,
            help="service_cooldown: minimum ticks between diagnosis "
            "triggers (dedups flapping violations; default 60)",
        )
        parser.add_argument(
            "--queue-depth", type=int, default=4,
            help="service_queue_depth: triggers that may wait behind an "
            "in-flight diagnosis before shedding (default 4)",
        )
        parser.add_argument(
            "--jobs", type=int, default=None,
            help="slave fan-out width (default serial)",
        )
        parser.add_argument(
            "--executor", choices=("thread", "process"), default="thread",
            help="slave pool executor used when --jobs >= 2",
        )
        parser.add_argument(
            "--telemetry", choices=("off", "timings", "full"), default="off",
            help="service-loop tracing level",
        )
        parser.add_argument(
            "--incidents", metavar="FILE", default=None,
            help="append one JSON line per incident to this file",
        )

    serve = sub.add_parser(
        "serve",
        help="run the online service loop against a live simulated app",
    )
    serve.add_argument(
        "--app", choices=("rubis", "mesh"), default="rubis",
        help="application to serve: the paper's RUBiS web stack, or the "
        "generated fan-out/fan-in microservice mesh (topology testbed)",
    )
    serve.add_argument(
        "--services", type=int, default=50,
        help="mesh size in services (mesh app only; default 50)",
    )
    serve.add_argument(
        "--topology-mode", choices=("full", "neighborhood"), default="full",
        help="diagnosis scoping: analyse every component (full) or only "
        "the learned-topology neighborhood of the SLO origin "
        "(neighborhood; mesh app only)",
    )
    serve.add_argument(
        "--topology-top-k", type=int, default=15,
        help="neighborhood size when --topology-mode=neighborhood "
        "(default 15)",
    )
    serve.add_argument(
        "--duration", type=int, default=1380,
        help="simulated seconds to serve (default 1380)",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument(
        "--fault-at", type=int, default=1300,
        help="inject a fault at this tick: a cpuhog (rubis) or a capacity "
        "bottleneck (mesh)",
    )
    serve.add_argument(
        "--no-fault", dest="fault_at", action="store_const", const=None,
        help="serve a healthy run without any injected fault",
    )
    serve.add_argument(
        "--fault-component", default=None,
        help="component the fault is injected on (default: db for rubis, "
        "the mesh's canonical layer-1 target for mesh)",
    )
    serve.add_argument(
        "--chaos", type=int, metavar="SEED", default=None,
        help="corrupt the live feed (gaps, NaN readings, delayed "
        "delivery) with this chaos seed",
    )
    serve.add_argument(
        "--expect-incidents", type=int, default=None,
        help="exit non-zero unless exactly this many incidents occurred "
        "(the CI soak assertion)",
    )
    serve.add_argument(
        "--expect-culprit", default=None,
        help="exit non-zero unless every incident names this component",
    )
    _add_service_options(serve)
    serve.set_defaults(func=cmd_serve)

    replay = sub.add_parser(
        "replay",
        help="replay a recorded CSV trace through the online service loop",
    )
    replay.add_argument(
        "metrics", help="long-format metrics CSV: time,component,metric,value"
    )
    replay.add_argument(
        "performance", help="performance-signal CSV: time,value"
    )
    replay.add_argument("--seed", type=int, default=42)
    replay.add_argument(
        "--threshold", type=float, default=0.100,
        help="latency SLO threshold in seconds (default 0.100 = RUBiS)",
    )
    replay.add_argument(
        "--sustain", type=int, default=10,
        help="consecutive seconds above threshold before a violation",
    )
    replay.add_argument(
        "--expect-incidents", type=int, default=None,
        help="exit non-zero unless exactly this many incidents occurred "
        "(the CI soak assertion)",
    )
    replay.add_argument(
        "--expect-culprit", default=None,
        help="exit non-zero unless every incident pinpoints this "
        "component (the CI soak assertion)",
    )
    _add_service_options(replay)
    replay.set_defaults(func=cmd_replay)

    fleet = sub.add_parser(
        "fleet",
        help="run a multi-tenant fleet manifest across shard workers",
    )
    fleet.add_argument(
        "manifest", help="JSON fleet manifest (see docs/architecture.md)"
    )
    fleet.add_argument(
        "--ticks", type=int, default=60,
        help="ticks of synthetic telemetry to stream (default 60)",
    )
    fleet.add_argument(
        "--map", action="store_true",
        help="print the consistent-hash shard placement and exit",
    )
    fleet.add_argument(
        "--shards", type=int, default=None,
        help="override the manifest's shard count",
    )
    fleet.add_argument(
        "--backend", choices=("thread", "process"), default=None,
        help="override the manifest's worker backend",
    )
    fleet.add_argument(
        "--incidents", default=None,
        help="append tenant-labeled incidents to this JSONL file",
    )
    fleet.add_argument(
        "--expect-incidents", type=int, default=None,
        help="exit non-zero unless exactly this many incidents occurred "
        "(the CI soak assertion)",
    )
    fleet.add_argument(
        "--expect-tenant", default=None,
        help="exit non-zero unless all incidents belong to this tenant",
    )
    fleet.add_argument(
        "--expect-culprit", default=None,
        help="exit non-zero unless every incident pinpoints this component",
    )
    fleet.set_defaults(func=cmd_fleet)

    edge = sub.add_parser(
        "edge",
        help="serve the HTTP edge: push ingest, incident queries, webhooks",
    )
    edge.add_argument("--host", default="127.0.0.1")
    edge.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks an ephemeral port, printed at startup)",
    )
    edge.add_argument(
        "--store", choices=("memory", "jsonl", "sqlite"), default="memory",
        help="durable incident store backend (default memory)",
    )
    edge.add_argument(
        "--store-path", default=None,
        help="store location: a directory for jsonl, a file for sqlite",
    )
    edge.add_argument(
        "--manifest", default=None,
        help="fleet manifest JSON: serve multi-tenant pushes routed by "
        "?tenant= instead of a single pipeline",
    )
    edge.add_argument(
        "--webhook", action="append", default=None, metavar="URL",
        help="POST each incident to this URL (repeatable; retried with "
        "backoff, circuit-broken per endpoint)",
    )
    edge.add_argument(
        "--dead-letter", default=None, metavar="FILE",
        help="append webhook deliveries that exhausted retries here",
    )
    edge.add_argument(
        "--ingest-queue-depth", type=int, default=256,
        help="in-flight tick batches between the HTTP edge and the "
        "pipeline; pushes beyond it are shed with 429 (default 256)",
    )
    edge.add_argument(
        "--no-shutdown-endpoint", action="store_true",
        help="disable POST /v1/shutdown (enabled by default for CI)",
    )
    edge.add_argument("--seed", type=int, default=42)
    edge.add_argument(
        "--threshold", type=float, default=0.100,
        help="latency SLO threshold in seconds (default 0.100 = RUBiS)",
    )
    edge.add_argument(
        "--sustain", type=int, default=10,
        help="consecutive seconds above threshold before a violation",
    )
    _add_service_options(edge)
    edge.set_defaults(func=cmd_edge)

    sub.add_parser("demo", help="30-second quickstart demo").set_defaults(
        func=cmd_demo
    )

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
