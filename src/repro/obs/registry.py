"""Counter/histogram registries for pipeline telemetry.

A :class:`MetricsRegistry` is a process-local collection of named
:class:`Counter` and :class:`Histogram` metrics with Prometheus-style
label sets. Finished diagnosis traces are folded in via
:func:`aggregate_trace`; the registry then renders to the Prometheus
text exposition format (:meth:`MetricsRegistry.render_prometheus`) or a
JSON dump (:meth:`MetricsRegistry.to_json`).

Everything is plain Python — no client library dependency — and the
exporter output round-trips through
:func:`repro.obs.export.parse_prometheus_text` (asserted by
``tests/obs/test_registry.py``).
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds) — spans from sub-millisecond stage
#: timings up to multi-second whole-diagnosis latencies.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


def _check_labels(label_names: Sequence[str]) -> Tuple[str, ...]:
    for label in label_names:
        if not _LABEL_RE.match(label):
            raise ConfigurationError(f"invalid label name {label!r}")
    return tuple(label_names)


class _Metric:
    """Shared label-set bookkeeping for counters and histograms."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.label_names = _check_labels(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> LabelKey:
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Metric):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = OrderedDict()

    def inc(self, n: float = 1.0, **labels) -> None:
        if n < 0:
            raise ConfigurationError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + n

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[LabelKey, float]]:
        yield from self._values.items()


class Gauge(_Metric):
    """A value that can go up and down per label set.

    Used for instantaneous fleet state — registered tenants, per-shard
    queue depth — where a counter's monotonicity would be wrong.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = OrderedDict()

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, n: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + n

    def dec(self, n: float = 1.0, **labels) -> None:
        self.inc(-n, **labels)

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[LabelKey, float]]:
        yield from self._values.items()


class Histogram(_Metric):
    """Cumulative-bucket histogram per label set (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        self.buckets = bounds
        # Per label set: per-bucket counts (+Inf implicit), sum, count.
        self._counts: Dict[LabelKey, List[int]] = OrderedDict()
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
                self._totals[key] = 0
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] += value
            self._totals[key] += 1

    def count(self, **labels) -> int:
        return self._totals.get(self._key(labels), 0)

    def sum(self, **labels) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[LabelKey, List[int], float, int]]:
        """``(label key, cumulative bucket counts incl. +Inf, sum, count)``."""
        for key, counts in self._counts.items():
            cumulative: List[int] = []
            running = 0
            for c in counts:
                running += c
                cumulative.append(running)
            yield key, cumulative, self._sums[key], self._totals[key]


class MetricsRegistry:
    """A named collection of counters and histograms.

    ``counter()`` / ``histogram()`` are get-or-create: instrumented code
    declares its metrics at use time and repeated declarations return the
    same object (conflicting kinds or label sets raise).
    """

    def __init__(self) -> None:
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()
        self._lock = threading.Lock()

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, label_names, buckets=buckets
        )

    def _get_or_create(self, cls, name, help, label_names, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(label_names):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help, label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        return list(self._metrics.values())

    def reset(self) -> None:
        """Drop every registered metric (test isolation)."""
        with self._lock:
            self._metrics.clear()

    # -- exporters ------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self)

    def to_json(self) -> Dict:
        """JSON dump of every metric's samples."""
        from repro.obs.export import registry_to_json

        return registry_to_json(self)


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry tracers aggregate into."""
    return _DEFAULT_REGISTRY


def _counter_metric_name(span_counter: str) -> str:
    safe = re.sub(r"[^a-zA-Z0-9_]", "_", span_counter)
    return f"fchain_{safe}_total"


def aggregate_trace(trace, registry: MetricsRegistry) -> None:
    """Fold one finished span tree into stage histograms and counters.

    Produces:

    * ``fchain_stage_seconds{stage=...}`` — histogram of per-span wall
      times (nested stages each contribute their own wall time);
    * ``fchain_spans_total{stage=...}`` — spans recorded per stage;
    * ``fchain_<counter>_total{stage=...}`` — one counter per span
      counter name (``"full"`` telemetry only);
    * ``fchain_diagnoses_total`` — completed diagnosis traces.
    """
    from repro.obs.trace import STAGE_DIAGNOSIS

    stage_seconds = registry.histogram(
        "fchain_stage_seconds",
        "Wall-clock seconds spent per pipeline stage",
        ("stage",),
    )
    spans_total = registry.counter(
        "fchain_spans_total", "Spans recorded per pipeline stage", ("stage",)
    )
    for span in trace.walk():
        stage_seconds.observe(span.duration, stage=span.name)
        spans_total.inc(1, stage=span.name)
        for counter_name, value in span.counters.items():
            registry.counter(
                _counter_metric_name(counter_name),
                f"Total {counter_name.replace('_', ' ')} across diagnoses",
                ("stage",),
            ).inc(value, stage=span.name)
    if trace.name == STAGE_DIAGNOSIS:
        registry.counter(
            "fchain_diagnoses_total", "Completed diagnosis traces"
        ).inc(1)


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "aggregate_trace",
    "default_registry",
]
