"""Observability for the diagnosis pipeline (``repro.obs``).

A zero-dependency telemetry subsystem: :class:`~repro.obs.trace.Tracer`
produces nested :class:`~repro.obs.trace.Span` trees with wall-clock
timings and counters for every pipeline stage, and
:class:`~repro.obs.registry.MetricsRegistry` aggregates finished traces
into Prometheus-exportable counters and histograms.

Telemetry is governed by ``FChainConfig.telemetry``:

* ``"off"`` (default) — no spans are created; the instrumentation
  reduces to calls on a shared no-op singleton;
* ``"timings"`` — spans with stage names and wall times only;
* ``"full"`` — spans plus per-stage counters and component/metric tags.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    PIPELINE_STAGES,
    STAGE_BURST,
    STAGE_COMPONENT,
    STAGE_CUSUM,
    STAGE_DIAGNOSIS,
    STAGE_METRIC,
    STAGE_OUTLIERS,
    STAGE_PINPOINT,
    STAGE_ROLLBACK,
    STAGE_SMOOTHING,
    STAGE_STORE_SYNC,
    STAGE_VALIDATION,
    NullTracer,
    Span,
    Tracer,
    make_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "NULL_SPAN",
    "PIPELINE_STAGES",
    "STAGE_BURST",
    "STAGE_COMPONENT",
    "STAGE_CUSUM",
    "STAGE_DIAGNOSIS",
    "STAGE_METRIC",
    "STAGE_OUTLIERS",
    "STAGE_PINPOINT",
    "STAGE_ROLLBACK",
    "STAGE_SMOOTHING",
    "STAGE_STORE_SYNC",
    "STAGE_VALIDATION",
    "NullTracer",
    "Span",
    "Tracer",
    "make_tracer",
]
