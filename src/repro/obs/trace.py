"""Nested-span tracing for the diagnosis pipeline.

A :class:`Span` is a plain, picklable record of one timed pipeline stage:
name, wall-clock duration, optional tags (component, metric, executor),
optional counters (change points found / filtered / survived) and child
spans. Spans are context managers::

    with tracer.span(STAGE_DIAGNOSIS, executor="thread") as root:
        with root.child(STAGE_STORE_SYNC) as sync:
            sync.count("samples", n)

Thread and process safety come from *structure*, not locks: every
concurrently executing unit of work (one component analysis) builds its
own private span tree, and the single-threaded collector adopts the
finished trees into the diagnosis root afterwards. Worker processes
pickle their span trees back inside the
:class:`~repro.core.propagation.ComponentReport`, so both ``SlavePool``
executors merge into one diagnosis trace the same way.

When telemetry is off the instrumentation collapses onto
:data:`NULL_SPAN`, a shared no-op singleton: no spans, no timing reads,
no retained allocation per call.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional

from repro.common.errors import ConfigurationError

# ----------------------------------------------------------------------
# Stage names — the stable vocabulary of a diagnosis trace.
# ``Diagnosis.trace`` consumers (exporters, dashboards, the regression
# tests) key on these strings; treat renames as breaking changes.
# ----------------------------------------------------------------------
STAGE_DIAGNOSIS = "diagnosis"
STAGE_STORE_SYNC = "store_sync"
STAGE_COMPONENT = "component"
STAGE_METRIC = "metric"
STAGE_SMOOTHING = "smoothing"
STAGE_CUSUM = "cusum_bootstrap"
STAGE_OUTLIERS = "outlier_filter"
STAGE_BURST = "burst_thresholds"
STAGE_ROLLBACK = "onset_rollback"
STAGE_PINPOINT = "pinpoint"
STAGE_VALIDATION = "validation"
STAGE_SERVICE_TICK = "service_tick"
STAGE_SLO_EVAL = "slo_eval"
STAGE_DISPATCH = "dispatch"
STAGE_DRAIN = "drain"
STAGE_EDGE_REQUEST = "edge_request"

#: Every stage a full (cold-cache) diagnosis that selects at least one
#: abnormal change passes through, in pipeline order.
PIPELINE_STAGES = (
    STAGE_DIAGNOSIS,
    STAGE_STORE_SYNC,
    STAGE_COMPONENT,
    STAGE_METRIC,
    STAGE_SMOOTHING,
    STAGE_CUSUM,
    STAGE_OUTLIERS,
    STAGE_BURST,
    STAGE_ROLLBACK,
    STAGE_PINPOINT,
)

#: Stages of one online service-loop tick (``repro.service``): the tick
#: root, the SLO evaluation and the trigger/dispatch decision, plus the
#: shutdown drain. Diagnoses dispatched by the loop carry the regular
#: ``PIPELINE_STAGES`` vocabulary of their own.
SERVICE_STAGES = (
    STAGE_SERVICE_TICK,
    STAGE_SLO_EVAL,
    STAGE_DISPATCH,
    STAGE_DRAIN,
)

#: Stages of the HTTP edge (``repro.edge``): one span per request,
#: tagged with route, method and response status.
EDGE_STAGES = (STAGE_EDGE_REQUEST,)

#: Recognized ``FChainConfig.telemetry`` values.
TELEMETRY_MODES = ("off", "timings", "full")


class Span:
    """One timed pipeline stage with tags, counters and children."""

    __slots__ = ("name", "tags", "duration", "counters", "children", "_full", "_started")

    def __init__(self, name: str, tags: Optional[Dict[str, object]] = None, *, full: bool = True):
        self.name = name
        self.tags: Dict[str, object] = dict(tags) if (full and tags) else {}
        self.duration: float = 0.0
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self._full = full
        self._started: Optional[float] = None

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if self._started is not None:
            self.duration = time.perf_counter() - self._started
            self._started = None
        return False

    # -- building -------------------------------------------------------
    def child(self, name: str, **tags) -> "Span":
        """Create (and attach) a nested span; use as a context manager."""
        span = Span(name, tags, full=self._full)
        self.children.append(span)
        return span

    def count(self, name: str, n: float = 1) -> None:
        """Bump a counter on this span (``"full"`` telemetry only)."""
        if self._full:
            self.counters[name] = self.counters.get(name, 0) + n

    def tag(self, **tags) -> None:
        """Attach tags to this span (``"full"`` telemetry only)."""
        if self._full:
            self.tags.update(tags)

    def adopt(self, span: "Span") -> None:
        """Attach an independently built span tree (worker merge-back)."""
        self.children.append(span)

    # -- queries --------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def stage_names(self) -> frozenset:
        """The set of stage names appearing anywhere in this trace."""
        return frozenset(span.name for span in self.walk())

    def find_all(self, name: str) -> List["Span"]:
        """Every span in the trace with the given stage name."""
        return [span for span in self.walk() if span.name == name]

    def counter_total(self, name: str) -> float:
        """Sum of one counter over the whole trace."""
        return sum(span.counters.get(name, 0) for span in self.walk())

    def stage_seconds(self) -> Dict[str, float]:
        """Total wall time per stage name across the trace.

        Nested stages each report their own wall time, so parent stages
        (``diagnosis``, ``component``) include their children's time —
        the timeline reads like a flame graph, not a partition.
        """
        totals: Dict[str, float] = {}
        for span in self.walk():
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready representation of the span tree."""
        payload: Dict = {"name": self.name, "duration_ms": self.duration * 1e3}
        if self.tags:
            payload["tags"] = dict(self.tags)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def format_tree(self, *, indent: int = 0, min_ms: float = 0.0) -> str:
        """Human-readable timeline (``repro trace`` output)."""
        lines = []
        label = self.name
        if self.tags:
            tagged = ",".join(f"{k}={v}" for k, v in sorted(self.tags.items()))
            label += f"[{tagged}]"
        line = f"{'  ' * indent}{label:<{max(1, 44 - 2 * indent)}} {self.duration * 1e3:9.2f} ms"
        if self.counters:
            line += "  " + " ".join(
                f"{k}={v:g}" for k, v in sorted(self.counters.items())
            )
        lines.append(line)
        for child in self.children:
            if child.duration * 1e3 >= min_ms:
                lines.append(child.format_tree(indent=indent + 1, min_ms=min_ms))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.2f} ms, "
            f"{len(self.children)} children)"
        )

    # -- pickling (``__slots__`` has no ``__dict__``) --------------------
    def __getstate__(self):
        return (
            self.name, self.tags, self.duration, self.counters,
            self.children, self._full,
        )

    def __setstate__(self, state):
        (self.name, self.tags, self.duration, self.counters,
         self.children, self._full) = state
        self._started = None


class _NullSpan:
    """Shared no-op span: the entire cost of ``telemetry="off"``.

    Every method returns the singleton itself (or does nothing), so
    instrumented call sites allocate no spans and read no clocks.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def child(self, name: str, **tags) -> "_NullSpan":
        return self

    def count(self, name: str, n: float = 1) -> None:
        pass

    def tag(self, **tags) -> None:
        pass

    def adopt(self, span) -> None:
        pass


#: The singleton no-op span used wherever telemetry is off.
NULL_SPAN = _NullSpan()


class Tracer:
    """Produces root spans and aggregates finished traces.

    Args:
        mode: ``"timings"`` or ``"full"`` (``"off"`` is served by
            :class:`NullTracer` — use :func:`make_tracer`).
        registry: The :class:`~repro.obs.registry.MetricsRegistry`
            finished traces are aggregated into; defaults to the
            process-wide :func:`~repro.obs.registry.default_registry`.
    """

    enabled = True

    def __init__(self, mode: str = "full", registry=None) -> None:
        if mode not in ("timings", "full"):
            raise ConfigurationError(
                f"tracer mode {mode!r} is not supported: choose 'timings' "
                "or 'full' ('off' means no tracer at all)"
            )
        self.mode = mode
        if registry is None:
            from repro.obs.registry import default_registry

            registry = default_registry()
        self.registry = registry

    def span(self, name: str, **tags) -> Span:
        """A fresh root span (not attached to anything)."""
        return Span(name, tags, full=self.mode == "full")

    def observe(self, trace: Span) -> None:
        """Aggregate one finished trace into the metrics registry."""
        from repro.obs.registry import aggregate_trace

        aggregate_trace(trace, self.registry)


class NullTracer:
    """The ``telemetry="off"`` tracer: hands out :data:`NULL_SPAN`."""

    enabled = False
    mode = "off"
    registry = None

    def span(self, name: str, **tags) -> _NullSpan:
        return NULL_SPAN

    def observe(self, trace) -> None:
        pass


#: Shared no-op tracer instance.
NULL_TRACER = NullTracer()


def make_tracer(mode: str, registry=None):
    """Build the tracer for a ``FChainConfig.telemetry`` value."""
    if mode == "off":
        return NULL_TRACER
    if mode not in TELEMETRY_MODES:
        raise ConfigurationError(
            f"telemetry={mode!r} is not supported: choose one of "
            f"{TELEMETRY_MODES}"
        )
    return Tracer(mode, registry=registry)


__all__ = [
    "EDGE_STAGES",
    "NULL_SPAN",
    "NULL_TRACER",
    "PIPELINE_STAGES",
    "SERVICE_STAGES",
    "TELEMETRY_MODES",
    "STAGE_BURST",
    "STAGE_COMPONENT",
    "STAGE_CUSUM",
    "STAGE_DIAGNOSIS",
    "STAGE_DISPATCH",
    "STAGE_DRAIN",
    "STAGE_EDGE_REQUEST",
    "STAGE_METRIC",
    "STAGE_OUTLIERS",
    "STAGE_PINPOINT",
    "STAGE_ROLLBACK",
    "STAGE_SERVICE_TICK",
    "STAGE_SLO_EVAL",
    "STAGE_SMOOTHING",
    "STAGE_STORE_SYNC",
    "STAGE_VALIDATION",
    "NullTracer",
    "Span",
    "Tracer",
    "make_tracer",
]
