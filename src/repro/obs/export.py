"""Prometheus text-format rendering/parsing and JSON dumps.

The renderer emits the Prometheus text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` headers, escaped label values,
cumulative histogram buckets with a trailing ``+Inf``, and ``_sum`` /
``_count`` series. :func:`parse_prometheus_text` is the matching reader
used by the round-trip tests and by the CI regression tooling — it
understands exactly what the renderer produces (the common subset of the
format), not arbitrary exposition payloads.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Tuple

LabelItems = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    """Exact, round-trippable sample value (integers stay integral)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _render_labels(names, values, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(names, values)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def _format_le(bound: float) -> str:
    return _format_value(bound)


def render_prometheus(registry) -> str:
    """Render every metric of a registry to exposition text."""
    lines = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind in ("counter", "gauge"):
            for key, value in metric.samples():
                labels = _render_labels(metric.label_names, key)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
        elif metric.kind == "histogram":
            for key, cumulative, total_sum, count in metric.samples():
                bounds = [_format_le(b) for b in metric.buckets] + ["+Inf"]
                for bound, running in zip(bounds, cumulative):
                    labels = _render_labels(
                        metric.label_names, key, extra=(("le", bound),)
                    )
                    lines.append(
                        f"{metric.name}_bucket{labels} {running}"
                    )
                labels = _render_labels(metric.label_names, key)
                lines.append(
                    f"{metric.name}_sum{labels} {_format_value(total_sum)}"
                )
                lines.append(f"{metric.name}_count{labels} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def registry_to_json(registry) -> Dict:
    """JSON-ready dump of a registry (one entry per metric)."""
    payload: Dict = {}
    for metric in registry.metrics():
        entry: Dict = {
            "type": metric.kind,
            "help": metric.help,
            "label_names": list(metric.label_names),
        }
        if metric.kind in ("counter", "gauge"):
            entry["samples"] = [
                {"labels": dict(zip(metric.label_names, key)), "value": value}
                for key, value in metric.samples()
            ]
        elif metric.kind == "histogram":
            entry["buckets"] = list(metric.buckets)
            entry["samples"] = [
                {
                    "labels": dict(zip(metric.label_names, key)),
                    "cumulative_counts": list(cumulative),
                    "sum": total_sum,
                    "count": count,
                }
                for key, cumulative, total_sum, count in metric.samples()
            ]
        payload[metric.name] = entry
    return payload


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


@dataclass
class ParsedExposition:
    """Structured view of a parsed exposition payload.

    Attributes:
        types: ``# TYPE`` declarations, metric name -> kind.
        helps: ``# HELP`` declarations, metric name -> help text.
        samples: Sample series: ``(series name, sorted label items)`` ->
            value. Series names include histogram suffixes
            (``*_bucket``, ``*_sum``, ``*_count``).
    """

    types: Dict[str, str] = field(default_factory=dict)
    helps: Dict[str, str] = field(default_factory=dict)
    samples: Dict[Tuple[str, LabelItems], float] = field(default_factory=dict)

    def value(self, name: str, **labels) -> float:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self.samples[(name, key)]


def _parse_labels(body: str) -> LabelItems:
    items = []
    pos = 0
    while pos < len(body):
        match = _LABEL_PAIR_RE.match(body, pos)
        if match is None:
            raise ValueError(f"unparseable label body: {body[pos:]!r}")
        items.append((match.group("key"), _unescape_label(match.group("value"))))
        pos = match.end()
    return tuple(sorted(items))


def parse_prometheus_text(text: str) -> ParsedExposition:
    """Parse exposition text produced by :func:`render_prometheus`."""
    parsed = ParsedExposition()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            parsed.helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            parsed.types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        parsed.samples[(match.group("name"), labels)] = value
    return parsed


__all__ = [
    "ParsedExposition",
    "parse_prometheus_text",
    "registry_to_json",
    "render_prometheus",
]
