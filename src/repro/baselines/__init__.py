"""Baseline fault localization schemes the paper compares against.

Each scheme implements the :class:`~repro.baselines.base.Localizer`
interface so the evaluation harness can run all of them over the same
recorded runs:

* :mod:`repro.baselines.histogram` — KL-divergence anomaly scores
  (Oliner et al., paper ref. [10]);
* :mod:`repro.baselines.netmedic` — state-similarity impact estimation
  with the 0.8 default for unseen states (Kandula et al., ref. [9]);
* :mod:`repro.baselines.topology` — PAL outlier detection + known
  application topology;
* :mod:`repro.baselines.dependency_only` — PAL outlier detection +
  black-box discovered dependencies;
* :mod:`repro.baselines.pal` — the authors' earlier propagation-based
  localizer (ref. [13]);
* :mod:`repro.baselines.fixed_filtering` — FChain with a fixed
  prediction-error filtering threshold instead of the burst-based one.
"""

from repro.baselines.base import LocalizationContext, Localizer
from repro.baselines.dependency_only import DependencyLocalizer
from repro.baselines.fixed_filtering import FixedFilteringLocalizer
from repro.baselines.histogram import HistogramLocalizer
from repro.baselines.netmedic import NetMedicLocalizer
from repro.baselines.pal import PALLocalizer
from repro.baselines.topology import TopologyLocalizer

__all__ = [
    "DependencyLocalizer",
    "FixedFilteringLocalizer",
    "HistogramLocalizer",
    "LocalizationContext",
    "Localizer",
    "NetMedicLocalizer",
    "PALLocalizer",
    "TopologyLocalizer",
]
