"""Histogram baseline: KL-divergence anomaly scores (paper ref. [10]).

For every metric the scheme compares the histogram of the most recent data
(the same look-back window FChain uses) against the histogram of the whole
recorded history via Kullback–Leibler divergence; a component's anomaly
score is its largest per-metric divergence, and components scoring above a
threshold are pinpointed. Sweeping the threshold yields the ROC trade-off
shown in the paper's figures.

The scheme's characteristic weakness (Sec. III-B): a fault that manifests
*quickly* leaves too few samples in the recent window to shift its
histogram by detection time, so CpuHog/NetHog-style faults are missed,
while gradually manifesting faults (memory leaks) are caught.
"""

from __future__ import annotations

from typing import FrozenSet

import numpy as np

from repro.baselines.base import LocalizationContext, Localizer
from repro.common.types import ComponentId
from repro.monitoring.store import MetricStore


def kl_divergence(
    recent: np.ndarray, reference: np.ndarray, bins: int = 20
) -> float:
    """KL divergence between the histograms of two samples.

    Histograms share a bin grid spanning both samples; both are Laplace
    smoothed so the divergence is finite.

    Args:
        recent: Samples from the look-back window.
        reference: Samples from the whole history.
        bins: Number of histogram bins.

    Returns:
        ``KL(recent || reference)`` in nats (>= 0).
    """
    if len(recent) == 0 or len(reference) == 0:
        return 0.0
    lo = min(float(recent.min()), float(reference.min()))
    hi = max(float(recent.max()), float(reference.max()))
    if hi <= lo:
        return 0.0
    edges = np.linspace(lo, hi, bins + 1)
    p, _ = np.histogram(recent, bins=edges)
    q, _ = np.histogram(reference, bins=edges)
    p = (p + 1.0) / (p.sum() + bins)
    q = (q + 1.0) / (q.sum() + bins)
    return float(np.sum(p * np.log(p / q)))


class HistogramLocalizer(Localizer):
    """Pinpoint components whose recent-vs-history KL score is high.

    Args:
        threshold: Anomaly-score threshold (swept for the ROC curve).
        bins: Histogram resolution.
    """

    name = "Histogram"

    def __init__(self, threshold: float = 0.8, bins: int = 20) -> None:
        self.threshold = threshold
        self.bins = bins

    def score(
        self,
        store: MetricStore,
        component: ComponentId,
        violation_time: int,
        context: LocalizationContext,
    ) -> float:
        """Anomaly score: max KL divergence across the six metrics."""
        window_start = violation_time - context.config.look_back_window
        window_end = violation_time + context.config.analysis_grace + 1
        best = 0.0
        for metric in store.metrics_for(component):
            full = store.series(component, metric).window(
                store.start, window_end
            )
            recent = full.window(window_start, window_end)
            best = max(
                best, kl_divergence(recent.values, full.values, self.bins)
            )
        return best

    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        return frozenset(
            component
            for component in store.components
            if self.score(store, component, violation_time, context)
            > self.threshold
        )
