"""NetMedic baseline: history-based impact estimation (paper ref. [9]).

NetMedic diagnoses by (1) computing per-component abnormality from how far
the current state lies from historical states, (2) estimating the *impact*
of component ``i`` on its topology neighbour ``j`` by finding historical
moments when ``i`` looked similar to now and checking whether ``j`` also
looked like it does now, and (3) ranking candidate causes of the affected
(SLO-observed) component by abnormality x path impact.

Faithfully reproduced quirk (the one the paper's analysis hinges on): when
no historical state resembles the current state of a component — a
previously *unseen* state, which fault injection routinely creates —
NetMedic cannot estimate the edge impact and assigns the default high
value 0.8. Depending on whether that guess happens to be right, the scheme
looks great (Hadoop MemLeak/CpuHog, where the faulty maps genuinely drive
everything) or bad (RUBiS, where unseen states on victim components get
blamed).

The scheme assumes knowledge of the application topology and uses 1800
seconds of recent history for state matching, as configured in the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

import networkx as nx
import numpy as np

from repro.baselines.base import LocalizationContext, Localizer
from repro.common.types import ComponentId
from repro.monitoring.store import MetricStore

#: Default impact for edges touching a component in an unseen state.
UNSEEN_STATE_IMPACT = 0.8

#: History used for state matching, per the paper's NetMedic setup.
HISTORY_SECONDS = 1800

#: Averaging window defining one "state".
STATE_WINDOW = 10


class NetMedicLocalizer(Localizer):
    """Rank components by abnormality x topology impact.

    Args:
        delta: Components whose blame is within ``delta`` of the top
            ranked one are also pinpointed (swept for the ROC curve).
        similarity_threshold: Normalized state distance below which a
            historical state counts as "similar to now"; no similar state
            means the current state is unseen.
    """

    name = "NetMedic"

    def __init__(
        self, delta: float = 0.1, similarity_threshold: float = 1.0
    ) -> None:
        self.delta = delta
        self.similarity_threshold = similarity_threshold

    # ------------------------------------------------------------------
    # State machinery
    # ------------------------------------------------------------------
    def _states(
        self, store: MetricStore, component: ComponentId, t_from: int, t_to: int
    ) -> np.ndarray:
        """Per-tick state vectors (the six metrics) for ``[t_from, t_to)``."""
        columns = []
        for metric in store.metrics_for(component):
            series = store.series(component, metric).window(t_from, t_to)
            columns.append(series.values)
        return np.stack(columns, axis=1) if columns else np.empty((0, 0))

    @staticmethod
    def _normalize(history: np.ndarray) -> np.ndarray:
        scale = history.std(axis=0)
        scale[scale == 0] = 1.0
        return scale

    def _current_state(self, states: np.ndarray) -> np.ndarray:
        return states[-STATE_WINDOW:].mean(axis=0)

    # ------------------------------------------------------------------
    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        if context.topology is None:
            raise ValueError("NetMedic requires the application topology")
        blames = self.blame_scores(store, violation_time, context)
        if not blames:
            return frozenset()
        top = max(blames.values())
        return frozenset(
            component
            for component, blame in blames.items()
            if top - blame <= self.delta
        )

    def blame_scores(
        self,
        store: MetricStore,
        violation_time: int,
        context: LocalizationContext,
    ) -> Dict[ComponentId, float]:
        """Blame of each component for the SLO-observed component's state."""
        t_from = max(store.start, violation_time - HISTORY_SECONDS)
        t_to = violation_time + 1
        states: Dict[ComponentId, np.ndarray] = {}
        currents: Dict[ComponentId, np.ndarray] = {}
        scales: Dict[ComponentId, np.ndarray] = {}
        abnormality: Dict[ComponentId, float] = {}
        similar_times: Dict[ComponentId, Optional[np.ndarray]] = {}

        for component in store.components:
            all_states = self._states(store, component, t_from, t_to)
            history = all_states[:-STATE_WINDOW]
            if len(history) < 5 * STATE_WINDOW:
                continue
            current = self._current_state(all_states)
            scale = self._normalize(history)
            distances = (
                np.abs(history - current) / scale
            ).mean(axis=1)
            abnormality[component] = float(
                np.clip(distances.min(), 0.0, 5.0) / 5.0
            )
            mask = distances < self.similarity_threshold
            similar_times[component] = (
                np.nonzero(mask)[0] if mask.any() else None
            )
            states[component] = history
            currents[component] = current
            scales[component] = scale

        graph = context.topology
        edges = set()
        for a, b in graph.edges:
            if a in states and b in states:
                edges.add((a, b))
                edges.add((b, a))  # impact can flow either way

        impact: Dict[tuple, float] = {}
        for src, dst in edges:
            when = similar_times[src]
            if when is None:
                # Unseen state: NetMedic cannot estimate the impact and
                # falls back to the default high value.
                impact[(src, dst)] = UNSEEN_STATE_IMPACT
                continue
            dst_states = states[dst][when]
            distance = (
                np.abs(dst_states - currents[dst]) / scales[dst]
            ).mean(axis=1)
            # If dst looked like "now" whenever src looked like "now",
            # src plausibly drives dst's current behaviour.
            impact[(src, dst)] = float(
                np.clip(1.0 - distance.min() / 2.0, 0.0, 1.0)
            )

        target = context.slo_component
        if target is None or target not in states:
            target = next(iter(states), None)
        if target is None:
            return {}

        undirected = nx.Graph()
        undirected.add_nodes_from(states)
        undirected.add_edges_from(
            (a, b) for a, b in edges if a < b or (b, a) not in edges
        )
        blames: Dict[ComponentId, float] = {}
        for component in states:
            if component == target:
                path_strength = 1.0
            else:
                try:
                    path = nx.shortest_path(undirected, component, target)
                except nx.NetworkXNoPath:
                    blames[component] = 0.0
                    continue
                path_strength = 1.0
                for a, b in zip(path, path[1:]):
                    path_strength *= impact.get((a, b), UNSEEN_STATE_IMPACT)
            # NetMedic's ranking is driven by the estimated impacts; the
            # component's own abnormality only modulates it. When fault
            # injection has pushed the neighbourhood into unseen states,
            # every edge carries the 0.8 default and the ranking degrades
            # toward "components close to the affected service" — the
            # behaviour behind the paper's Sec. III-B analysis.
            blames[component] = (
                0.5 + 0.5 * abnormality[component]
            ) * path_strength
        return blames
