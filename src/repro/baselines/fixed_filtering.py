"""Fixed-Filtering baseline: FChain with a fixed prediction-error threshold.

Identical pipeline to FChain except for the abnormal change point
selection criterion: instead of the burstiness-derived dynamic expected
error, a *fixed* filtering threshold is applied to the prediction error.
Because the six metrics live on wildly different scales (percent, MB,
KB/s), the fixed threshold is expressed relative to each metric's mean
history level — the most charitable fixed scheme — and is swept to show
the sensitivity trade-off of the paper's Fig. 12.
"""

from __future__ import annotations

from typing import FrozenSet, List

import numpy as np

from repro.baselines.base import LocalizationContext, Localizer
from repro.common.types import ComponentId
from repro.core.config import FChainConfig
from repro.core.cusum import detect_change_points
from repro.core.outliers import outlier_change_points
from repro.core.pinpoint import pinpoint_faulty_components
from repro.core.prediction import prediction_errors
from repro.core.propagation import ComponentReport
from repro.core.selection import (
    AbnormalChange,
    actual_prediction_error,
    censored_onset,
    reference_change_magnitudes,
    rollback_onset,
    shift_persists,
)
from repro.core.smoothing import smooth_series
from repro.monitoring.store import MetricStore


class FixedFilteringLocalizer(Localizer):
    """FChain's pinpointing with a fixed prediction-error threshold.

    Args:
        threshold: Relative filtering threshold: a change point is
            abnormal when its prediction error exceeds ``threshold *``
            the metric's mean absolute history level. Swept in Fig. 12.
    """

    name = "Fixed-Filtering"

    def __init__(self, threshold: float = 0.3) -> None:
        self.threshold = threshold

    def _component_report(
        self,
        store: MetricStore,
        component: ComponentId,
        violation_time: int,
        config: FChainConfig,
        seed: object,
    ) -> ComponentReport:
        window_start = violation_time - config.look_back_window
        window_end = violation_time + config.analysis_grace + 1
        changes: List[AbnormalChange] = []
        for metric in store.metrics_for(component):
            full = store.series(component, metric).window(
                store.start, window_end
            )
            if len(full) < 2 * config.min_segment:
                continue
            raw = full.window(window_start, window_end)
            if len(raw) < 2 * config.min_segment:
                continue
            history = full.window(full.start, raw.start)
            errors = prediction_errors(
                full,
                bins=config.markov_bins,
                halflife=config.markov_halflife,
                signed=True,
            )[raw.start - full.start :]
            smoothed = smooth_series(raw, config.smoothing_window)
            points = detect_change_points(
                smoothed,
                bootstraps=config.cusum_bootstraps,
                confidence=config.cusum_confidence,
                min_segment=config.min_segment,
                seed=(seed, component, str(metric)),
            )
            outliers = outlier_change_points(
                points,
                reference_change_magnitudes(history),
                smoothed,
                zscore=config.outlier_zscore,
            )
            level = float(np.mean(np.abs(history.values))) if len(history) else 0.0
            fixed_threshold = self.threshold * max(level, 1e-9)
            for point in outliers:
                actual = actual_prediction_error(
                    errors, raw, point.time, direction=point.direction
                )
                if actual <= fixed_threshold:
                    continue
                if not shift_persists(
                    raw.values, point.time - raw.start, point.magnitude
                ):
                    continue
                onset = rollback_onset(
                    smoothed, points, point, tolerance=config.tangent_tolerance
                )
                onset = censored_onset(
                    raw, onset, point.direction, point.magnitude
                )
                changes.append(
                    AbnormalChange(
                        metric=metric,
                        change_point=point,
                        onset_time=onset,
                        prediction_error=actual,
                        expected_error=fixed_threshold,
                        direction=point.direction,
                    )
                )
        return ComponentReport(component=component, abnormal_changes=changes)

    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        reports = [
            self._component_report(
                store, component, violation_time, context.config, context.seed
            )
            for component in store.components
        ]
        result = pinpoint_faulty_components(
            reports, context.config, context.dependency_graph
        )
        return result.faulty
