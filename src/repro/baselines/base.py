"""Common interface for fault localization schemes.

The evaluation harness records each application run once and replays the
same metric store through every scheme, so results are directly
comparable. Schemes receive a :class:`LocalizationContext` carrying the
side information the paper grants them: the Topology and NetMedic schemes
*assume* knowledge of the application topology, the Dependency scheme gets
the black-box discovered graph, and FChain-family schemes get the FChain
configuration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

import networkx as nx

from repro.common.types import ComponentId
from repro.core.config import FChainConfig
from repro.monitoring.store import MetricStore


@dataclass
class LocalizationContext:
    """Side information available to a localization scheme.

    Attributes:
        config: FChain configuration (look-back window etc.; shared so
            every scheme examines the same amount of data).
        topology: Ground-truth application topology in request/data-flow
            direction (granted to Topology and NetMedic, which assume it).
        dependency_graph: Black-box discovered dependency graph (granted
            to Dependency and FChain); may be empty or None when discovery
            failed, as it does for stream processing.
        slo_component: The component at which the SLO is observed (the
            front tier / sink); NetMedic ranks causes of this component.
        seed: Deterministic seed label for stochastic steps.
    """

    config: FChainConfig = field(default_factory=FChainConfig)
    topology: Optional[nx.DiGraph] = None
    dependency_graph: Optional[nx.DiGraph] = None
    slo_component: Optional[ComponentId] = None
    seed: object = 0


class Localizer(abc.ABC):
    """A black-box fault localization scheme.

    Schemes implement :meth:`_localize`; callers invoke :meth:`localize`,
    whose call shape matches ``FChain.localize`` — the store positionally,
    everything else by keyword.
    """

    #: Short scheme name used in reports.
    name: str = "localizer"

    def localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: Optional[LocalizationContext] = None,
    ) -> FrozenSet[ComponentId]:
        """Pinpoint faulty components for a violation at ``violation_time``.

        Args:
            store: Recorded metric samples of the run.
            violation_time: ``t_v`` — when the SLO violation was detected
                (keyword-only).
            context: Side information for this application; defaults to a
                bare :class:`LocalizationContext`.

        Returns:
            The set of pinpointed components (possibly empty).
        """
        return self._localize(
            store,
            violation_time=violation_time,
            context=context if context is not None else LocalizationContext(),
        )

    @abc.abstractmethod
    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        """Scheme-specific localization (see :meth:`localize`)."""
