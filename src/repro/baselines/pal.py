"""PAL: propagation-aware anomaly localization (paper ref. [13]).

PAL is the authors' precursor to FChain: it smooths the look-back window,
detects change points with CUSUM + bootstrap, keeps *magnitude outliers*,
rolls back to the onset, sorts components by onset and pinpoints the chain
source plus concurrent components. It does **not** perform
predictability-based selection (no Markov model, no burst threshold), does
not use dependency information, and has no online validation — exactly the
differences the paper lists in Sec. III-A.

The shared :func:`pal_component_report` is also the abnormal-component
detector of the Topology and Dependency baselines ("the outlier change
point detection algorithm developed in our previous work PAL").
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.baselines.base import LocalizationContext, Localizer
from repro.common.types import ComponentId
from repro.core.config import FChainConfig
from repro.core.cusum import detect_change_points
from repro.core.outliers import outlier_change_points
from repro.core.propagation import ComponentReport
from repro.core.selection import (
    AbnormalChange,
    censored_onset,
    reference_change_magnitudes,
    rollback_onset,
)
from repro.core.smoothing import smooth_series
from repro.monitoring.store import MetricStore


def pal_component_report(
    store: MetricStore,
    component: ComponentId,
    violation_time: int,
    config: FChainConfig,
    seed: object = 0,
) -> ComponentReport:
    """PAL-style abnormal change detection for one component.

    Same smoothing + CUSUM + magnitude-outlier + rollback pipeline as
    FChain, but *without* the predictability filter: every magnitude
    outlier counts as an abnormal change.
    """
    window_start = violation_time - config.look_back_window
    window_end = violation_time + config.analysis_grace + 1
    changes: List[AbnormalChange] = []
    for metric in store.metrics_for(component):
        full = store.series(component, metric).window(store.start, window_end)
        if len(full) < 2 * config.min_segment:
            continue
        raw = full.window(window_start, window_end)
        if len(raw) < 2 * config.min_segment:
            continue
        history = full.window(full.start, raw.start)
        smoothed = smooth_series(raw, config.smoothing_window)
        points = detect_change_points(
            smoothed,
            bootstraps=config.cusum_bootstraps,
            confidence=config.cusum_confidence,
            min_segment=config.min_segment,
            seed=(seed, component, str(metric)),
        )
        reference = reference_change_magnitudes(history)
        outliers = outlier_change_points(
            points, reference, smoothed, zscore=config.outlier_zscore
        )
        for point in outliers:
            onset = rollback_onset(
                smoothed, points, point, tolerance=config.tangent_tolerance
            )
            if config.censor_slow_onsets:
                onset = censored_onset(
                    raw, onset, point.direction, point.magnitude
                )
            changes.append(
                AbnormalChange(
                    metric=metric,
                    change_point=point,
                    onset_time=onset,
                    prediction_error=float("nan"),
                    expected_error=float("nan"),
                    direction=point.direction,
                )
            )
    return ComponentReport(component=component, abnormal_changes=changes)


class PALLocalizer(Localizer):
    """The PAL baseline: onset-sorted chain without predictability filter."""

    name = "PAL"

    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        config = context.config
        reports = [
            pal_component_report(
                store, component, violation_time, config, seed=context.seed
            )
            for component in store.components
        ]
        abnormal = sorted(
            (r for r in reports if r.is_abnormal),
            key=lambda r: (r.onset_time, r.component),
        )
        if not abnormal:
            return frozenset()
        faulty = {abnormal[0].component}
        onsets = {r.component: r.onset_time for r in abnormal}
        for report in abnormal[1:]:
            distance = min(
                abs(report.onset_time - onsets[f]) for f in faulty
            )
            if distance <= config.concurrency_threshold:
                faulty.add(report.component)
        return frozenset(faulty)
