"""Topology baseline: known application topology + PAL outlier detection.

The scheme first detects abnormal components with PAL's outlier change
point detection, then pinpoints using the application topology (which it
*assumes* to know): if abnormal component C2 receives its input from
abnormal component C1 (C2's data depends on C1's output), C1 is blamed —
i.e. the most-upstream abnormal components in data-flow order are
pinpointed.

This is exactly what the back-pressure effect defeats (paper Sec. III-B):
a fault at the *last* tier stalls its upstream callers, the first tier
turns abnormal too, and the scheme blames the head of the pipeline.
Conversely it works well when faults sit at the first components (NetHog
at the web tier, Hadoop's map-side faults).
"""

from __future__ import annotations

from typing import FrozenSet

import networkx as nx

from repro.baselines.base import LocalizationContext, Localizer
from repro.baselines.pal import pal_component_report
from repro.common.types import ComponentId
from repro.monitoring.store import MetricStore


def most_upstream_abnormal(
    abnormal: FrozenSet[ComponentId], graph: nx.DiGraph
) -> FrozenSet[ComponentId]:
    """Abnormal components with no abnormal ancestor in data-flow order."""
    pinpointed = set()
    for component in abnormal:
        if component not in graph:
            pinpointed.add(component)
            continue
        ancestors = nx.ancestors(graph, component)
        if not (ancestors & abnormal):
            pinpointed.add(component)
    return frozenset(pinpointed)


class TopologyLocalizer(Localizer):
    """Pinpoint the most-upstream abnormal components in the topology."""

    name = "Topology"

    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        if context.topology is None:
            raise ValueError("Topology scheme requires the application topology")
        abnormal = frozenset(
            component
            for component in store.components
            if pal_component_report(
                store, component, violation_time, context.config, context.seed
            ).is_abnormal
        )
        if not abnormal:
            return frozenset()
        return most_upstream_abnormal(abnormal, context.topology)
