"""Dependency baseline: black-box discovered dependencies + PAL detection.

Identical pinpointing rule to the Topology scheme, but instead of assuming
the application topology it uses the graph produced by black-box
dependency discovery. When discovery found nothing — as it does for the
gap-free traffic of stream processing systems — the scheme degrades to
"output every component with outlier change points as faulty" (paper
Sec. III-A), which is why its precision collapses on System S.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.baselines.base import LocalizationContext, Localizer
from repro.baselines.pal import pal_component_report
from repro.baselines.topology import most_upstream_abnormal
from repro.common.types import ComponentId
from repro.monitoring.store import MetricStore


class DependencyLocalizer(Localizer):
    """Pinpoint via discovered dependencies; all-abnormal when none found."""

    name = "Dependency"

    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        abnormal = frozenset(
            component
            for component in store.components
            if pal_component_report(
                store, component, violation_time, context.config, context.seed
            ).is_abnormal
        )
        if not abnormal:
            return frozenset()
        graph = context.dependency_graph
        if graph is None or graph.number_of_edges() == 0:
            # Discovery failed (stream processing): no way to tell
            # propagation from origin — blame everything abnormal.
            return abnormal
        return most_upstream_abnormal(abnormal, graph)
