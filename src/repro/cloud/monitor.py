"""Domain-0 style black-box monitor.

The paper's FChain slave samples each guest VM from Domain-0 via
libxenstat/libvirt — never touching the application. This monitor is the
simulation analog: once per tick it reads each component's VM-visible state
through a :class:`~repro.sim.metrics.MetricSynthesizer` and appends the six
metric samples to a :class:`~repro.monitoring.store.MetricStore`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cloud.host import Host
from repro.cloud.vm import VirtualMachine
from repro.common.types import MetricSample
from repro.monitoring.store import IngestBatch, MetricStore
from repro.sim.component import QueueComponent
from repro.sim.metrics import MetricSynthesizer


class DomainZeroMonitor:
    """Samples every registered VM once per tick into a metric store.

    Args:
        store: Destination metric store.
        seed: Base seed label, so independent runs produce independent
            measurement noise.
    """

    def __init__(self, store: MetricStore, seed: object = 0) -> None:
        self.store = store
        self.seed = seed
        self._targets: Dict[str, Tuple[QueueComponent, VirtualMachine, Host]] = {}
        self._synths: Dict[str, MetricSynthesizer] = {}

    def register(
        self,
        component: QueueComponent,
        vm: VirtualMachine,
        host: Host,
        synthesizer: MetricSynthesizer = None,
    ) -> None:
        """Start monitoring one component/VM pair."""
        name = component.name
        self._targets[name] = (component, vm, host)
        self._synths[name] = synthesizer or MetricSynthesizer(name, seed=self.seed)

    def sample_all(self, t: int) -> None:
        """Record one tick of samples for every registered VM."""
        samples = [
            MetricSample(name, metric, t, value)
            for name, (component, vm, host) in self._targets.items()
            for metric, value in self._synths[name]
            .sample(t, component, vm, host)
            .items()
        ]
        self.store.ingest(IngestBatch(samples=samples, watermark=t + 1))

    @property
    def monitored(self) -> Tuple[str, ...]:
        """Names of all monitored components."""
        return tuple(sorted(self._targets))
