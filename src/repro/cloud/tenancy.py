"""Multi-tenant deployments: several applications on shared hosts.

The paper evaluates FChain "in multi-tenant cloud computing environments"
by running all three benchmark systems concurrently on the same set of
VCL hosts (Sec. III-A). :class:`SharedDeployment` reproduces that setup:
it consolidates the VMs of several applications onto a shared host pool
and drives one global resource-scheduling pass per tick, so tenants
genuinely contend for CPU and disk — a fault (or just load) in one tenant
can degrade its host neighbours from another tenant.

Usage::

    rubis = RubisApplication(seed=1, duration=2400)
    systems = SystemSApplication(seed=1, duration=2400)
    cloud = SharedDeployment([rubis, systems], hosts_cores=2.0)
    cloud.run(1800)
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cloud.host import Host
from repro.cloud.scheduler import schedule_tick
from repro.common.errors import SimulationError


class SharedDeployment:
    """Consolidates several applications onto a shared host pool.

    The tenants' VMs are re-placed round-robin over fresh shared hosts
    (their original single-tenant hosts are discarded), after which every
    tick runs a *single* scheduling pass across all tenants' components.
    Each tenant keeps its own workload, SLO detector, metric store and
    fault list, so diagnosis still happens per application.

    Args:
        apps: The tenant applications (component/VM names must be unique
            across tenants — the benchmark apps' names already are).
        hosts_cores: CPU cores per shared host.
        vms_per_host: Consolidation density.
        disk_bw_kbps: Disk bandwidth per shared host.
    """

    def __init__(
        self,
        apps: Sequence,
        *,
        hosts_cores: float = 2.0,
        vms_per_host: int = 2,
        disk_bw_kbps: float = 60000.0,
    ) -> None:
        if not apps:
            raise SimulationError("a deployment needs at least one tenant")
        names = [name for app in apps for name in app.components]
        if len(names) != len(set(names)):
            raise SimulationError(
                "component names must be unique across tenants"
            )
        self.apps = list(apps)
        self.time = 0

        all_vms = [
            (app, name, app.vms[name])
            for app in self.apps
            for name in app.component_names()
        ]
        host_count = max(1, -(-len(all_vms) // vms_per_host))
        self.hosts: List[Host] = [
            Host(
                f"shared-host{i + 1}",
                cores=hosts_cores,
                disk_bw_kbps=disk_bw_kbps,
            )
            for i in range(host_count)
        ]
        # Round-robin placement interleaves tenants on each host, the
        # adversarial arrangement for cross-tenant interference.
        for index, (app, name, vm) in enumerate(all_vms):
            vm.host = None
            self.hosts[index % host_count].attach(vm)
        for app in self.apps:
            app.hosts = self.hosts

    # ------------------------------------------------------------------
    @property
    def components(self) -> Dict[str, object]:
        """All components across tenants, keyed by (unique) name."""
        merged = {}
        for app in self.apps:
            merged.update(app.components)
        return merged

    @property
    def vms(self) -> Dict[str, object]:
        """All VMs across tenants, keyed by name."""
        merged = {}
        for app in self.apps:
            merged.update(app.vms)
        return merged

    def tenant_of(self, component: str):
        """The application owning a component."""
        for app in self.apps:
            if component in app.components:
                return app
        raise KeyError(component)

    # ------------------------------------------------------------------
    def tick(self, t: int) -> None:
        """Advance every tenant one second under shared scheduling."""
        self.time = t
        for app in self.apps:
            app.stage_begin(t)
        shares = schedule_tick(self.hosts, self.components, self.vms)
        cpu, disk, memory = shares
        for app in self.apps:
            app_shares = (
                {n: cpu[n] for n in app.components},
                {n: disk[n] for n in app.components},
                {n: memory[n] for n in app.components},
            )
            app.stage_process(t, shares=app_shares)
        for app in self.apps:
            app.stage_finish(t)

    def run(self, seconds: int) -> None:
        """Advance the whole deployment ``seconds`` ticks."""
        for _ in range(seconds):
            self.tick(self.time)
            self.time += 1
