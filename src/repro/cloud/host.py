"""Physical host model: CPU and disk bandwidth shared by guest VMs.

Mirrors the paper's testbed nodes (dual-core Xeon hosts running several
guest VMs). The host runs a simple work-conserving proportional-share
scheduler each tick. Domain-0 interference (the DiskHog fault starts a disk
intensive program in Domain-0) contends for disk bandwidth with priority,
which is what makes the fault manifest slowly in the guests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cloud.vm import VirtualMachine
from repro.common.errors import SimulationError


class Host:
    """One physical machine with fixed CPU cores and disk bandwidth.

    Attributes:
        name: Host identifier.
        cores: CPU cores available to guest VMs.
        disk_bw_kbps: Aggregate disk bandwidth (KB/s) shared by guests.
        dom0_disk_kbps: Disk bandwidth currently consumed in Domain-0
            (injected by the DiskHog fault); served before guest traffic.
    """

    def __init__(
        self, name: str, *, cores: float = 2.0, disk_bw_kbps: float = 60000.0
    ) -> None:
        if cores <= 0 or disk_bw_kbps <= 0:
            raise SimulationError("host resources must be positive")
        self.name = name
        self.cores = cores
        self.disk_bw_kbps = disk_bw_kbps
        self.dom0_disk_kbps = 0.0
        self.vms: List[VirtualMachine] = []

    def attach(self, vm: VirtualMachine) -> None:
        """Place a guest VM on this host."""
        if vm.host is not None:
            raise SimulationError(f"VM {vm.name} already placed")
        vm.host = self
        self.vms.append(vm)

    # ------------------------------------------------------------------
    # CPU scheduling
    # ------------------------------------------------------------------
    def allocate_cpu(self, demands: Dict[str, float]) -> None:
        """Grant CPU to each VM given per-component demands in cores.

        Args:
            demands: Hosted-component CPU demand in core units, keyed by VM
                name. VMs not listed demand only their injected hog load.

        The grant is proportional when the host is oversubscribed and is
        written back to each VM's ``granted_cpu`` (in core units).
        """
        requests = []
        for vm in self.vms:
            demand = demands.get(vm.name, 0.0)
            requests.append(vm.cpu_request(demand))
        total = sum(requests)
        scale = 1.0 if total <= self.cores or total == 0 else self.cores / total
        for vm, request in zip(self.vms, requests):
            vm.granted_cpu = request * scale

    # ------------------------------------------------------------------
    # Disk scheduling
    # ------------------------------------------------------------------
    def allocate_disk(self, demands: Dict[str, float]) -> Dict[str, float]:
        """Apportion disk bandwidth among guests after Domain-0 traffic.

        Args:
            demands: Desired disk throughput (KB/s) keyed by VM name.

        Returns:
            Per-VM disk *share* in ``(0, 1]`` — the fraction of its demand
            each VM can actually sustain this tick. Domain-0 traffic (the
            DiskHog) is served first, shrinking what guests can get.
        """
        available = max(0.0, self.disk_bw_kbps - self.dom0_disk_kbps)
        total = sum(demands.values())
        if total <= available or total == 0:
            return {name: 1.0 for name in demands}
        fraction = available / total
        return {name: max(1e-3, fraction) for name in demands}

    def __repr__(self) -> str:
        return f"Host({self.name!r}, vms={[vm.name for vm in self.vms]})"
