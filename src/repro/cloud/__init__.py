"""IaaS cloud substrate: hosts, guest VMs, contention, and packet traces.

Stands in for the paper's Xen/VCL testbed. Hosts apportion CPU and disk
bandwidth among their guest VMs each tick (two-level scheduling: host-level
shares, then in-VM competition with injected hog processes), and the network
layer records packet traces that feed black-box dependency discovery.
"""

from repro.cloud.host import Host
from repro.cloud.monitor import DomainZeroMonitor
from repro.cloud.network import PacketEvent, PacketTrace, SyntheticPacketizer
from repro.cloud.tenancy import SharedDeployment
from repro.cloud.vm import VirtualMachine

__all__ = [
    "DomainZeroMonitor",
    "Host",
    "PacketEvent",
    "PacketTrace",
    "SharedDeployment",
    "SyntheticPacketizer",
    "VirtualMachine",
]
