"""Per-tick resource scheduling across hosts.

Bridges the queueing components and the cloud substrate: collects each
component's resource demands, lets every host run its proportional-share
allocation, and returns the effective multipliers the components feed into
:meth:`repro.sim.component.QueueComponent.process`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.cloud.host import Host
from repro.cloud.vm import VirtualMachine
from repro.sim.component import QueueComponent


def schedule_tick(
    hosts: Iterable[Host],
    components: Mapping[str, QueueComponent],
    vms: Mapping[str, VirtualMachine],
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, float]]:
    """Run one tick of CPU, disk and memory scheduling.

    Args:
        hosts: All hosts in the deployment.
        components: Components keyed by name (name == VM name).
        vms: The VM hosting each component, same keys.

    Returns:
        Three dicts keyed by component name: CPU share (capacity
        multiplier), disk share (fraction of demanded disk throughput
        available), and memory-pressure penalty.
    """
    # --- CPU: demands in cores, granted per host ----------------------
    demand_cores: Dict[str, float] = {}
    for name, comp in components.items():
        vm = vms[name]
        fraction = min(comp.desired_cpu_demand(), vm.max_component_fraction())
        demand_cores[name] = fraction * vm.vcpus_baseline
    for host in hosts:
        host.allocate_cpu(demand_cores)

    cpu_shares = {name: vms[name].component_cpu_share() for name in components}

    # --- Memory: pressure penalty from current occupancy --------------
    memory_penalties: Dict[str, float] = {}
    for name, comp in components.items():
        vm = vms[name]
        used = comp.memory_mb() + vm.extra_memory_mb
        memory_penalties[name] = vm.memory_pressure(used)

    # --- Disk: desired KB/s per VM, shared per host --------------------
    disk_shares: Dict[str, float] = {name: 1.0 for name in components}
    for host in hosts:
        demands: Dict[str, float] = {}
        for vm in host.vms:
            comp = components.get(vm.name)
            if comp is None:
                continue
            desired_items = min(comp.queue, comp.spec.capacity)
            per_item = (
                comp.spec.disk_read_kb_per_item + comp.spec.disk_write_kb_per_item
            )
            used_mb = comp.memory_mb() + vm.extra_memory_mb
            demands[vm.name] = (
                desired_items * per_item
                + vm.extra_disk_kbps
                + vm.swap_rate_kbps(used_mb)
            )
        shares = host.allocate_disk(demands)
        disk_shares.update(shares)

    return cpu_shares, disk_shares, memory_penalties
