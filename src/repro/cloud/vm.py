"""Guest virtual machine model.

A VM hosts exactly one application component (FChain's unit of diagnosis)
plus, possibly, injected interference: a CPU hog competing inside the VM, a
memory ballast, or extra network traffic. CPU is accounted in *cores*: a
hog process wants a fixed number of cores, so growing the VM (the online
validation's scale-up action) genuinely dilutes the hog, exactly as on real
hardware. The component's nominal capacity corresponds to the VM's
*baseline* vCPU allocation; scaling the VM beyond baseline lets the
component exceed nominal capacity.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError


class VirtualMachine:
    """One guest VM with capped resources on a shared host.

    Attributes:
        name: VM name; equal to the component name it hosts.
        vcpus: Current virtual CPUs (core units); raised by validation.
        vcpus_baseline: vCPUs at creation — the allocation the component's
            nominal ``capacity`` refers to.
        cpu_cap: Fraction of ``vcpus`` the hypervisor lets the VM use
            (1.0 = uncapped). The Bottleneck fault lowers this.
        memory_limit_mb: Memory ceiling; approaching it triggers thrashing.
        extra_cpu_cores: Cores demanded by hog processes injected inside
            the VM (CpuHog fault).
        extra_memory_mb: Memory consumed by injected ballast.
        extra_net_in_kbps: Junk inbound traffic (NetHog).
        extra_disk_kbps: Extra disk traffic generated inside the VM.
        granted_cpu: Cores granted by the host this tick (scheduler output).
        requested_cpu: Cores requested from the host this tick.
    """

    def __init__(
        self,
        name: str,
        *,
        vcpus: float = 1.0,
        memory_limit_mb: float = 2048.0,
        cpu_cap: float = 1.0,
    ) -> None:
        if vcpus <= 0 or memory_limit_mb <= 0:
            raise SimulationError("VM resources must be positive")
        if not 0 < cpu_cap <= 1.0:
            raise SimulationError("cpu_cap must be in (0, 1]")
        self.name = name
        self.vcpus = vcpus
        self.vcpus_baseline = vcpus
        self.memory_limit_mb = memory_limit_mb
        self.cpu_cap = cpu_cap
        self.host: Optional[object] = None  # set by Host.attach
        self.extra_cpu_cores = 0.0
        self.extra_memory_mb = 0.0
        self.extra_net_in_kbps = 0.0
        self.extra_disk_kbps = 0.0
        self.granted_cpu = 0.0
        self.requested_cpu = 0.0
        self._component_demand_cores = 0.0

    # ------------------------------------------------------------------
    # Scheduling interface (driven by the host scheduler)
    # ------------------------------------------------------------------
    def max_component_fraction(self) -> float:
        """Largest capacity multiplier the VM's sizing permits.

        1.0 at baseline; above 1.0 after a scale-up; below 1.0 under a
        Bottleneck cap.
        """
        return self.cpu_cap * self.vcpus / self.vcpus_baseline

    def cpu_request(self, component_demand_cores: float) -> float:
        """Cores the VM asks the host for this tick.

        Args:
            component_demand_cores: Cores the hosted component wants.

        Returns:
            Total demand (component + in-VM hogs), capped by the VM size
            and its hypervisor cap.
        """
        self._component_demand_cores = max(0.0, component_demand_cores)
        wanted = self._component_demand_cores + self.extra_cpu_cores
        self.requested_cpu = min(self.cpu_cap * self.vcpus, wanted)
        return self.requested_cpu

    def _split_grant(self) -> tuple:
        """Weighted-fair split of the host grant inside the VM.

        The component (weight = baseline vCPUs) and any hog processes
        (weight = the cores' worth of busy threads they run) share the
        grant like a weighted-fair scheduler: each side is entitled to its
        weighted share, a side wanting less than its entitlement gets its
        full demand and the leftover flows to the other side
        (work-conserving). This is what makes scaling the VM up genuinely
        dilute a hog — the component's entitlement grows with the grant —
        while a hog on a small VM still crushes the component.

        Returns:
            ``(component_cores, hog_cores)`` actually received.
        """
        demand = self._component_demand_cores
        hog = self.extra_cpu_cores
        grant = self.granted_cpu
        if demand + hog <= grant + 1e-12:
            return demand, hog
        weight_component = self.vcpus_baseline
        weight_hog = max(hog, 1e-12)
        total_weight = weight_component + weight_hog
        entitled_component = grant * weight_component / total_weight
        if demand <= entitled_component:
            return demand, min(hog, grant - demand)
        entitled_hog = grant * weight_hog / total_weight
        if hog <= entitled_hog:
            return min(demand, grant - hog), hog
        return entitled_component, entitled_hog

    def component_cpu_share(self) -> float:
        """Capacity multiplier the component receives after scheduling.

        Expressed relative to the baseline allocation, so it multiplies
        the component's nominal capacity directly. An uncontended VM runs
        at the full speed its sizing allows (work-conserving scheduler).
        """
        demand = self._component_demand_cores
        if demand <= 0:
            return self.max_component_fraction()
        wanted = demand + self.extra_cpu_cores
        if self.granted_cpu >= wanted - 1e-12:
            # Uncontended: the scheduler is work-conserving, so the
            # component runs at the full speed its VM sizing allows.
            return self.max_component_fraction()
        component_cores, _ = self._split_grant()
        return component_cores / self.vcpus_baseline

    def hog_cpu_cores(self) -> float:
        """Cores the in-VM hog actually burned this tick."""
        if self.extra_cpu_cores <= 0:
            return 0.0
        _, hog_cores = self._split_grant()
        return hog_cores

    # ------------------------------------------------------------------
    # Memory pressure
    # ------------------------------------------------------------------
    def memory_pressure(self, used_mb: float) -> float:
        """Thrashing penalty for the given memory usage.

        Below 85 % of the limit there is no penalty. Above it, the
        effective speed decays linearly down to a floor of 5 % at full
        occupancy — modelling swap-induced slowdown as a memory leak
        approaches the VM's limit.

        Returns:
            A multiplier in ``(0, 1]`` applied to the component's rate.
        """
        fraction = used_mb / self.memory_limit_mb
        if fraction <= 0.85:
            return 1.0
        overshoot = min(1.0, (fraction - 0.85) / 0.15)
        return max(0.05, 1.0 - 0.95 * overshoot)

    def swap_rate_kbps(self, used_mb: float) -> float:
        """Swap traffic (KB/s) caused by memory pressure, if any."""
        fraction = used_mb / self.memory_limit_mb
        if fraction <= 0.85:
            return 0.0
        overshoot = min(1.0, (fraction - 0.85) / 0.15)
        return 4000.0 * overshoot

    # ------------------------------------------------------------------
    # Validation levers
    # ------------------------------------------------------------------
    def scale_cpu(self, factor: float) -> None:
        """Grow (or shrink) the VM's CPU allocation and lift any cap."""
        if factor <= 0:
            raise SimulationError("scale factor must be positive")
        self.vcpus *= factor
        if factor > 1.0:
            self.cpu_cap = 1.0

    def scale_memory(self, factor: float) -> None:
        """Grow (or shrink) the VM's memory limit."""
        if factor <= 0:
            raise SimulationError("scale factor must be positive")
        self.memory_limit_mb *= factor

    def __repr__(self) -> str:
        return f"VirtualMachine({self.name!r}, vcpus={self.vcpus}, cap={self.cpu_cap})"
