"""Network message accounting and packet-trace synthesis.

Black-box dependency discovery (Sherlock-style, paper ref. [11]) works on
packet traces: it splits per-edge traffic into *flows* using inter-packet
gaps and then correlates flow starts across edges. The simulation operates
on fluid per-tick message counts, so this module synthesizes sub-second
packet timestamps with the traffic *texture* that matters to the algorithm:

* request/reply applications (RUBiS, Hadoop control traffic) produce short
  per-request packet bursts separated by idle gaps;
* stream-processing applications (System S) produce continuous, closely
  spaced packets with no gaps — which is exactly why the paper observes that
  network-trace dependency discovery fails on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.common.rng import spawn_rng


@dataclass(frozen=True)
class PacketEvent:
    """One observed packet: ``src -> dst`` at ``time`` (seconds, float).

    ``flow`` emulates the transport-level flow identity (the ephemeral
    source port): request/reply applications open a new connection (or a
    pooled one with distinct request framing) per request, while stream
    processing keeps one persistent connection per edge for its entire
    lifetime — the property that makes flow extraction degenerate on
    streaming traffic.
    """

    time: float
    src: str
    dst: str
    flow: int = 0
    size_kb: float = 1.5


class PacketTrace:
    """An append-only packet trace with per-edge retrieval."""

    def __init__(self) -> None:
        self._events: List[PacketEvent] = []

    def record(self, event: PacketEvent) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[PacketEvent]) -> None:
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[PacketEvent]:
        """All events sorted by time."""
        self._events.sort(key=lambda e: e.time)
        return self._events

    def edges(self) -> List[Tuple[str, str]]:
        """Distinct (src, dst) pairs with any traffic."""
        return sorted({(e.src, e.dst) for e in self._events})

    def edge_times(self, src: str, dst: str) -> np.ndarray:
        """Sorted packet timestamps on one directed edge."""
        times = [e.time for e in self._events if e.src == src and e.dst == dst]
        return np.asarray(sorted(times))

    def edge_events(self, src: str, dst: str):
        """``(time, flow)`` pairs on one directed edge, sorted by time."""
        pairs = [
            (e.time, e.flow)
            for e in self._events
            if e.src == src and e.dst == dst
        ]
        pairs.sort()
        return pairs


class SyntheticPacketizer:
    """Turns per-tick fluid message counts into packet timestamps.

    Args:
        trace: Destination trace.
        streaming: If true, packets are spaced uniformly across each tick
            (gap-free continuous flow); otherwise messages are grouped into
            per-request bursts with idle gaps between them.
        packets_per_message: Packets generated per application message.
        seed_parts: Label for the deterministic random stream.
    """

    def __init__(
        self,
        trace: PacketTrace,
        *,
        streaming: bool = False,
        packets_per_message: int = 3,
        seed_parts: Tuple[object, ...] = ("packetizer",),
    ) -> None:
        self.trace = trace
        self.streaming = streaming
        self.packets_per_message = packets_per_message
        self._rng = spawn_rng(*seed_parts)
        self._next_flow = 1

    def emit(self, t: int, src: str, dst: str, messages: float) -> None:
        """Record packets for ``messages`` sent on edge ``src->dst`` at tick ``t``.

        Message counts are rounded stochastically; at most 200 messages per
        tick are packetized (sampling) to bound trace size without changing
        the gap structure the discovery algorithm examines.
        """
        count = int(messages)
        if self._rng.random() < messages - count:
            count += 1
        if count <= 0:
            return
        count = min(count, 200)
        if self.streaming:
            # Continuous stream over one persistent connection: evenly
            # spaced packets, a single flow id for the edge's lifetime.
            n_packets = count * self.packets_per_message
            offsets = (np.arange(n_packets) + self._rng.random(n_packets) * 0.4) / (
                n_packets
            )
            for off in offsets:
                self.trace.record(PacketEvent(t + float(off), src, dst, flow=0))
        else:
            # Request/reply: each message is a short burst (~5 ms) on its
            # own ephemeral connection (fresh flow id).
            starts = np.sort(self._rng.random(count))
            for start in starts:
                flow = self._next_flow
                self._next_flow += 1
                jitter = self._rng.random(self.packets_per_message) * 0.005
                for j in np.sort(jitter):
                    self.trace.record(
                        PacketEvent(t + float(start) + float(j), src, dst, flow=flow)
                    )


    def emit_path(
        self,
        t: int,
        path: List[Tuple[str, str]],
        requests: float,
        *,
        hop_delay: float = 0.004,
    ) -> None:
        """Record correlated per-request flows along a multi-hop path.

        Request/reply dependency discovery keys on the fact that a request
        arriving at a service is followed, within a small delay, by that
        service's own request to its backend. For each request this method
        picks one random offset inside the tick and emits a short packet
        burst on every hop at ``offset + hop_index * hop_delay``, so the
        cross-edge correlation genuinely exists in the trace.

        Args:
            t: Current tick.
            path: Directed edges ``(src, dst)`` in request-flow order.
            requests: Number of requests traversing the full path this tick.
            hop_delay: Per-hop service delay in seconds.
        """
        count = int(requests)
        if self._rng.random() < requests - count:
            count += 1
        if count <= 0 or not path:
            return
        count = min(count, 200)
        starts = np.sort(self._rng.random(count))
        for start in starts:
            for hop_index, (src, dst) in enumerate(path):
                flow = self._next_flow
                self._next_flow += 1
                base = t + float(start) + hop_index * hop_delay
                jitter = np.sort(self._rng.random(self.packets_per_message)) * 0.003
                for j in jitter:
                    self.trace.record(
                        PacketEvent(base + float(j), src, dst, flow=flow)
                    )
