"""A generated microservice mesh: the topology-scaling testbed.

The paper's applications top out at a handful of components; modern
cloud deployments run hundreds of interdependent services, which is
exactly the regime where analysing *every* component per violation stops
scaling and topology-guided candidate ranking pays off. This module
generates a parameterizable service mesh (20–200 services) with the
traffic shapes that matter for propagation analysis:

* **fan-out / fan-in** — a single gateway spreads requests over widening
  service layers that converge again onto a narrow set of backends, so
  one slow backend back-pressures many upstream paths;
* **retries** — requests the gateway refuses under overload are retried
  by clients next tick (partially), amplifying load exactly when the
  mesh is least able to absorb it;
* **timeouts** — callers abandon calls that exceed a timeout budget, so
  a congested service contributes at most the timeout to the end-to-end
  latency (and the SLO signal saturates rather than diverging).

The layer structure, edge wiring and per-service capacities are drawn
deterministically from the seed: the same ``(seed, services)`` pair
always builds the same mesh, which keeps diagnoses reproducible and the
benchmark comparable across runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.base import Application
from repro.common.errors import SimulationError
from repro.common.rng import spawn_rng
from repro.common.types import ComponentId
from repro.monitoring.slo import LatencySLO
from repro.sim.component import ComponentSpec
from repro.workloads.generator import ClientWorkload
from repro.workloads.traces import TraceSpec, diurnal_trace


class MeshApplication(Application):
    """A generated fan-out/fan-in microservice mesh.

    Args:
        seed: Base seed for mesh generation, workload and noise.
        services: Number of services (the paper-scale floor is 20, the
            fleet-scale ceiling 200).
        duration: Length of the pre-generated workload trace (seconds).
        base_rate: Mean external request rate at the gateway (req/s).
        fan_out: Maximum downstream dependencies wired per service.
        retry_fraction: Fraction of refused gateway arrivals clients
            retry on the next tick.
        timeout_s: Per-layer call timeout; a slower layer contributes at
            most this much to the end-to-end latency.
        slo_threshold: Response-time SLO in seconds (None: derived from
            the mesh's nominal no-load latency).
        record_packets: Record a packet trace for offline dependency
            discovery.
    """

    def __init__(
        self,
        seed: object = 0,
        *,
        services: int = 50,
        duration: int = 3600,
        base_rate: float = 80.0,
        fan_out: int = 3,
        retry_fraction: float = 0.5,
        timeout_s: float = 1.0,
        slo_threshold: Optional[float] = None,
        record_packets: bool = False,
    ) -> None:
        if not 2 <= services <= 500:
            raise SimulationError("services must be in [2, 500]")
        if fan_out < 1:
            raise SimulationError("fan_out must be >= 1")
        super().__init__("mesh", seed, record_packets=record_packets)
        self.services = services
        self.base_rate = float(base_rate)
        self.retry_fraction = float(retry_fraction)
        self.timeout_s = float(timeout_s)
        self._retry_backlog = 0.0

        rng = spawn_rng(("mesh-structure", seed, services))
        names = [f"svc{i:03d}" for i in range(services)]
        self.gateway: ComponentId = names[0]

        #: Services per layer, gateway first — fan-out then fan-in.
        self.layers: List[List[ComponentId]] = self._build_layers(names, rng)
        hosts = [
            self.new_host(f"mesh-host{i}", cores=4.0)
            for i in range(max(1, (services + 7) // 8))
        ]
        for index, name in enumerate(names):
            capacity = base_rate * float(rng.uniform(2.2, 3.2))
            self.add_component(
                ComponentSpec(
                    name,
                    capacity=capacity,
                    service_time=float(rng.uniform(0.002, 0.008)),
                    buffer_limit=max(60.0, capacity),
                    kb_in_per_item=float(rng.uniform(2.0, 6.0)),
                    kb_out_per_item=float(rng.uniform(2.0, 6.0)),
                    base_memory_mb=float(rng.uniform(150.0, 280.0)),
                    # Queue growth must be visible in the memory signal:
                    # congestion (a bottleneck ramping its backlog) is the
                    # low-noise channel diagnosis keys on, while the
                    # workload's multiplicative noise drowns cpu/network.
                    memory_per_item_mb=4.0,
                ),
                hosts[index % len(hosts)],
                memory_limit_mb=2048.0,
            )
        self._wire_layers(rng, fan_out)
        self.add_entry(self.gateway)
        # A gentler trace than the web-server benchmarks: the mesh is the
        # *scaling* testbed, so the workload provides texture (drift,
        # occasional bursts) without diurnal swings large enough to
        # dominate the injected fault's manifestation.
        trace = diurnal_trace(
            duration,
            TraceSpec(
                base_rate=base_rate,
                diurnal_amplitude=0.12,
                period=2400,
                walk_sigma=0.002,
                burst_prob=0.003,
                burst_scale=1.4,
                noise_sigma=0.04,
            ),
            seed=("mesh-load", seed),
        )
        self.workload = ClientWorkload(trace, seed=("mesh", seed))
        nominal = self._nominal_latency()
        self.slo_threshold = (
            float(slo_threshold) if slo_threshold is not None
            else max(0.05, 4.0 * nominal)
        )
        self.slo = LatencySLO(self.slo_threshold, sustain=10)
        self.finalize()

    # ------------------------------------------------------------------
    # Mesh generation
    # ------------------------------------------------------------------
    @staticmethod
    def _build_layers(names: List[ComponentId], rng) -> List[List[ComponentId]]:
        """Partition the services into a fan-out/fan-in layer profile.

        Widths rise from the single gateway toward a middle bulge and
        shrink again toward a narrow backend layer; the exact widths are
        drawn from the seeded rng so different seeds produce different
        (but reproducible) meshes.
        """
        n = len(names)
        layers: List[List[ComponentId]] = [[names[0]]]
        assigned = 1
        bulge = max(2, int(round(n ** 0.5)) + 1)
        width = 2
        growing = True
        while assigned < n:
            if growing:
                width = min(bulge, width + int(rng.integers(1, 3)))
                if width >= bulge and assigned > n // 2:
                    growing = False
            else:
                width = max(1, width - int(rng.integers(1, 3)))
            take = min(width, n - assigned)
            layers.append(names[assigned : assigned + take])
            assigned += take
        return layers

    def _wire_layers(self, rng, fan_out: int) -> None:
        """Connect each layer to the next with bounded fan-out.

        Every service gets 1..``fan_out`` downstream dependencies in the
        next layer; every next-layer service is guaranteed at least two
        upstream callers when the upstream layer has two to give (fan-in),
        so no service is unreachable from the gateway and no service's
        input depends on a single upstream — one slow caller dilutes into
        a partial sag rather than starving its victims outright.
        """
        for upstream, downstream in zip(self.layers, self.layers[1:]):
            fed: Dict[ComponentId, set] = {name: set() for name in downstream}
            for src in upstream:
                picks = min(len(downstream), int(rng.integers(1, fan_out + 1)))
                chosen = rng.choice(len(downstream), size=picks, replace=False)
                for index in sorted(int(i) for i in chosen):
                    dst = downstream[index]
                    self.connect(src, dst, weight=float(rng.uniform(0.5, 1.5)))
                    fed[dst].add(src)
            want = min(2, len(upstream))
            for dst, feeders in fed.items():
                while len(feeders) < want:
                    src = upstream[int(rng.integers(0, len(upstream)))]
                    if src in feeders:
                        continue
                    self.connect(src, dst, weight=float(rng.uniform(0.5, 1.5)))
                    feeders.add(src)

    def _nominal_latency(self) -> float:
        """No-load end-to-end latency: summed mean service time per layer
        plus per-hop network delay."""
        total = 0.0
        for layer in self.layers:
            total += sum(
                self.components[name].spec.service_time for name in layer
            ) / len(layer)
        return total + 0.001 * max(0, len(self.layers) - 1)

    # ------------------------------------------------------------------
    # Tick hooks
    # ------------------------------------------------------------------
    def _dispatch_arrivals(self, t: int) -> None:
        """External arrivals plus last tick's client retries."""
        if self.workload is None:
            return
        arrivals = self.workload.arrivals(t) + self._retry_backlog
        self._retry_backlog = 0.0
        self.components[self.gateway].enqueue(arrivals)

    def _post_process(self, t: int) -> None:
        """Refused gateway arrivals partially return as retries."""
        dropped = self.components[self.gateway].dropped
        if dropped > 0:
            # Cap the carried backlog so a sustained overload cannot
            # accumulate an unbounded retry storm.
            limit = self.components[self.gateway].spec.buffer_limit
            self._retry_backlog = min(self.retry_fraction * dropped, limit)

    def _measure_performance(self, t: int) -> float:
        """End-to-end response time through the mesh with call timeouts.

        Per layer, the traffic-weighted mean sojourn of its services,
        clamped at the timeout budget (callers abandon slower calls and
        pay exactly the timeout); summed over layers plus a per-hop
        network delay.
        """
        response = 0.0
        for layer in self.layers:
            weights = [
                max(self.components[name].arrived, 0.0) for name in layer
            ]
            total = sum(weights)
            if total <= 0.0:
                weights = [1.0] * len(layer)
                total = float(len(layer))
            layer_sojourn = 0.0
            for name, weight in zip(layer, weights):
                sojourn = self.components[name].sojourn_time()
                layer_sojourn += min(sojourn, self.timeout_s) * weight
            response += layer_sojourn / total
        return response + 0.001 * max(0, len(self.layers) - 1)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def layer_of(self, component: ComponentId) -> int:
        """Index of the layer a service belongs to."""
        for index, layer in enumerate(self.layers):
            if component in layer:
                return index
        raise SimulationError(f"unknown service {component!r}")

    def service_in_layer(self, layer: int, position: int = 0) -> ComponentId:
        """A deterministic service handle (e.g. a fault target)."""
        return self.layers[layer][position % len(self.layers[layer])]

    def default_fault_target(self) -> ComponentId:
        """The canonical injection point: first service of layer 1 —
        deep enough that its back-pressure has to propagate, close
        enough to the gateway that a scoped neighborhood covers it."""
        return self.service_in_layer(min(1, len(self.layers) - 1))

    def nominal_arrival_rate(self, component: ComponentId) -> float:
        """Mean items/s a service receives under the nominal workload.

        Propagates the base request rate through the routing fractions in
        topological order — the deterministic flow solution of the DAG,
        no warm-up run required.
        """
        if component not in self.components:
            raise SimulationError(f"unknown service {component!r}")
        flow: Dict[ComponentId, float] = {name: 0.0 for name in self._order}
        total_weight = sum(w for _, w in self.entries) or 1.0
        for name, weight in self.entries:
            flow[name] += self.base_rate * weight / total_weight
        for name in self._order:
            for downstream, fraction in self.components[name].routing():
                flow[downstream.name] += flow[name] * fraction
        return flow[component]

    def bottleneck_cap(
        self, component: ComponentId, fraction: float = 0.9
    ) -> float:
        """CPU cap that pins a service just below its nominal load.

        A :class:`~repro.faults.library.BottleneckFault` with this cap
        leaves the service ``fraction`` of the throughput it needs, so
        its backlog ramps steadily (a clean congestion signature on the
        victim) while the downstream traffic sag stays small enough to
        dilute through the mesh's fan-in — the slowly-manifesting fault
        profile of the paper's evaluation, scaled to a generated mesh.
        """
        rate = fraction * self.nominal_arrival_rate(component)
        return rate / self.components[component].spec.capacity


__all__ = ["MeshApplication"]
