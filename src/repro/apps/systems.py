"""IBM System S: a seven-PE data stream processing application.

Models the tax-calculation sample application from the paper (Fig. 2):
seven processing elements (PEs), each in its own guest VM, connected in a
DAG and processing a continuous tuple stream whose arrival rate is
modulated by a ClarkNet-like trace. The SLO is an average per-tuple
processing time below 20 ms.

Two properties of this application drive the paper's findings:

* tuple buffers are small and throughput is high, so faults propagate
  between PEs within seconds (both downstream and, via back-pressure,
  upstream — Fig. 2's PE3 -> PE6 -> PE2 example);
* traffic is a gap-free continuous stream, so black-box network-trace
  dependency discovery extracts no flows and the Dependency baseline
  degenerates to "blame every abnormal component".
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

from repro.apps.base import Application
from repro.monitoring.slo import LatencySLO
from repro.sim.component import ComponentSpec
from repro.workloads.generator import ClientWorkload
from repro.workloads.traces import clarknet_like

#: PE names in topological order.
PES = tuple(f"PE{i}" for i in range(1, 8))

#: Stream graph edges (data-flow direction). PE3 -> PE6 provides the
#: downstream propagation of Fig. 2 and PE2 -> PE6 makes PE2 an upstream
#: neighbour of PE6 that back-pressure can reach.
EDGES: Tuple[Tuple[str, str], ...] = (
    ("PE1", "PE2"),
    ("PE1", "PE3"),
    ("PE2", "PE4"),
    ("PE2", "PE6"),
    ("PE3", "PE6"),
    ("PE4", "PE5"),
    ("PE5", "PE7"),
    ("PE6", "PE7"),
)


class SystemSApplication(Application):
    """The simulated System S deployment.

    Args:
        seed: Base seed for workload, queueing and measurement noise.
        duration: Length of the pre-generated arrival trace (seconds).
        base_rate: Mean tuple arrival rate at the source PE (tuples/s).
        record_packets: Record a (gap-free) packet trace.
    """

    #: Per-tuple processing time SLO threshold in seconds (paper: 20 ms).
    SLO_THRESHOLD = 0.020

    streaming = True

    def __init__(
        self,
        seed: object = 0,
        *,
        duration: int = 3600,
        base_rate: float = 80.0,
        record_packets: bool = False,
    ) -> None:
        super().__init__("systems", seed, record_packets=record_packets)
        hosts = [self.new_host(f"systems-host{i}", cores=2.0) for i in (1, 2, 3, 4)]
        placements = {
            "PE1": hosts[0],
            "PE2": hosts[0],
            "PE3": hosts[1],
            "PE4": hosts[1],
            "PE5": hosts[2],
            "PE6": hosts[2],
            "PE7": hosts[3],
        }
        capacities = {
            "PE1": 300.0,
            "PE2": 180.0,
            "PE3": 170.0,
            "PE4": 160.0,
            "PE5": 160.0,
            "PE6": 190.0,
            "PE7": 220.0,
        }
        for name in PES:
            self.add_component(
                ComponentSpec(
                    name,
                    capacity=capacities[name],
                    service_time=0.002,
                    buffer_limit=220.0,
                    kb_in_per_item=2.0,
                    kb_out_per_item=2.0,
                    base_memory_mb=260.0,
                    memory_per_item_mb=0.5,
                ),
                placements[name],
                memory_limit_mb=1280.0,
            )
        for src, dst in EDGES:
            self.connect(src, dst)
        self.add_entry("PE1")
        self.workload = ClientWorkload(
            clarknet_like(duration, seed=seed, base_rate=base_rate),
            seed=("systems", seed),
        )
        self.slo = LatencySLO(self.SLO_THRESHOLD, sustain=8)
        self.finalize()
        # Cache the root-to-sink paths used for the latency estimate.
        self._paths: List[List[str]] = [
            list(p) for p in nx.all_simple_paths(self.topology, "PE1", "PE7")
        ]

    # ------------------------------------------------------------------
    def _measure_performance(self, t: int) -> float:
        """Average per-tuple processing time: the worst root-to-sink path.

        A tuple's processing time is dominated by the slowest pipeline it
        traverses, so the SLO signal is the maximum over all PE1 -> PE7
        paths of the summed per-PE sojourn times.
        """
        return max(self.path_sojourn(path) for path in self._paths)
