"""Base class for simulated distributed applications.

An :class:`Application` owns the full vertical slice of one deployment:
components and their queues, the VMs and hosts they run on, the workload,
the Domain-0 monitor feeding the metric store, the SLO detector, any
injected faults, and (optionally) a packet trace for dependency discovery.
It implements :meth:`tick` so a :class:`~repro.sim.engine.SimulationEngine`
can drive it, and the whole object graph is deep-copyable so the engine can
fork it for online pinpointing validation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.cloud.host import Host
from repro.cloud.monitor import DomainZeroMonitor
from repro.cloud.network import PacketTrace, SyntheticPacketizer
from repro.cloud.scheduler import schedule_tick
from repro.cloud.vm import VirtualMachine
from repro.common.errors import SimulationError
from repro.common.types import ComponentId, Metric
from repro.monitoring.slo import SLODetector
from repro.monitoring.store import MetricStore
from repro.sim.component import ComponentSpec, QueueComponent
from repro.workloads.generator import ClientWorkload


class Application:
    """A distributed application deployed on the simulated cloud.

    Subclasses build their topology in ``__init__`` via
    :meth:`add_component` / :meth:`connect`, then call :meth:`finalize`.
    They must implement :meth:`_measure_performance` (the SLO signal) and
    may override :meth:`_dispatch_arrivals` and :meth:`_emit_packets`.

    Attributes:
        name: Application name.
        seed: Base seed for every random stream in this run.
        components: Components keyed by name.
        vms: Hosting VM per component, same keys.
        hosts: All hosts of this deployment.
        topology: Request-flow graph (edge ``A -> B`` means A sends
            requests/data to B, i.e. A *depends on* B).
        store: 1 Hz metric samples recorded by the Domain-0 monitor.
        slo: The application's SLO detector.
        faults: Injected faults, advanced every tick.
        packet_trace: Packet trace, populated when ``record_packets``.
    """

    #: Whether the app's traffic is a continuous stream (no inter-packet
    #: gaps) — the property that defeats black-box dependency discovery.
    streaming = False

    def __init__(
        self, name: str, seed: object = 0, *, record_packets: bool = False
    ) -> None:
        self.name = name
        self.seed = seed
        self.components: Dict[ComponentId, QueueComponent] = {}
        self.vms: Dict[ComponentId, VirtualMachine] = {}
        self.hosts: List[Host] = []
        self.topology = nx.DiGraph()
        self.entries: List[Tuple[ComponentId, float]] = []
        self.store = MetricStore()
        self.monitor = DomainZeroMonitor(self.store, seed=seed)
        self.slo: Optional[SLODetector] = None
        self.workload: Optional[ClientWorkload] = None
        self.faults: list = []
        self.packet_trace: Optional[PacketTrace] = None
        self.packetizer: Optional[SyntheticPacketizer] = None
        if record_packets:
            self.packet_trace = PacketTrace()
            self.packetizer = SyntheticPacketizer(
                self.packet_trace,
                streaming=self.streaming,
                seed_parts=("packets", name, seed),
            )
        self._order: List[ComponentId] = []
        self.time = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def new_host(self, name: str, **kwargs) -> Host:
        """Create and register a host."""
        host = Host(name, **kwargs)
        self.hosts.append(host)
        return host

    def add_component(
        self,
        spec: ComponentSpec,
        host: Host,
        *,
        memory_limit_mb: float = 2048.0,
        vcpus: float = 1.0,
    ) -> QueueComponent:
        """Create a component, its VM, and place the VM on ``host``."""
        if spec.name in self.components:
            raise SimulationError(f"duplicate component {spec.name}")
        component = QueueComponent(spec)
        vm = VirtualMachine(
            spec.name, vcpus=vcpus, memory_limit_mb=memory_limit_mb
        )
        host.attach(vm)
        self.components[spec.name] = component
        self.vms[spec.name] = vm
        self.topology.add_node(spec.name)
        self.monitor.register(component, vm, host)
        return component

    def connect(self, src: ComponentId, dst: ComponentId, weight: float = 1.0) -> None:
        """Wire ``src -> dst`` in both the queueing layer and the topology."""
        self.components[src].connect(self.components[dst], weight)
        self.topology.add_edge(src, dst, weight=weight)

    def add_entry(self, component: ComponentId, weight: float = 1.0) -> None:
        """Mark a component as receiving external arrivals."""
        self.entries.append((component, weight))

    def finalize(self) -> None:
        """Freeze the topology; must be called once construction is done."""
        if not nx.is_directed_acyclic_graph(self.topology):
            raise SimulationError("application topology must be a DAG")
        self._order = list(nx.topological_sort(self.topology))

    # ------------------------------------------------------------------
    # Tick pipeline
    # ------------------------------------------------------------------
    # The tick is split into stages so a multi-tenant deployment
    # (several applications sharing hosts) can interleave them: all
    # tenants' demands must be on the table before the shared hosts
    # schedule (see repro.cloud.tenancy).

    def stage_begin(self, t: int) -> None:
        """Stage 1: reset per-tick state, advance faults, feed arrivals."""
        self.time = t
        for comp in self.components.values():
            comp.begin_tick()
        for fault in self.faults:
            fault.on_tick(self, t)
        self._dispatch_arrivals(t)

    def stage_process(self, t: int, shares=None) -> None:
        """Stage 2: schedule resources (unless given) and process queues.

        Sinks first: downstream components drain before upstream ones
        emit, giving a one-second-per-hop pipeline and letting buffer
        space propagate back-pressure deterministically.
        """
        if shares is None:
            shares = schedule_tick(self.hosts, self.components, self.vms)
        cpu, disk, memory = shares
        for name in reversed(self._order):
            self.components[name].process(
                cpu_share=cpu[name],
                disk_share=disk[name],
                memory_penalty=memory[name],
            )
        self._post_process(t)

    def stage_finish(self, t: int) -> None:
        """Stage 3: measure performance, evaluate the SLO, sample metrics."""
        performance = self._measure_performance(t)
        if self.slo is not None:
            self.slo.observe(t, performance)
        self.monitor.sample_all(t)
        if self.packetizer is not None:
            self._emit_packets(t)

    def tick(self, t: int) -> None:
        """Advance the application by one simulated second."""
        self.stage_begin(t)
        self.stage_process(t)
        self.stage_finish(t)

    def run(self, seconds: int) -> None:
        """Convenience loop: advance ``seconds`` ticks from current time."""
        for _ in range(seconds):
            self.tick(self.time)
            self.time += 1

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _dispatch_arrivals(self, t: int) -> None:
        """Feed external arrivals into entry components (override freely)."""
        if self.workload is None or not self.entries:
            return
        arrivals = self.workload.arrivals(t)
        total_weight = sum(w for _, w in self.entries)
        for name, weight in self.entries:
            self.components[name].enqueue(arrivals * weight / total_weight)

    def _post_process(self, t: int) -> None:
        """Hook after components processed, before metrics are sampled.

        Applications with out-of-band transfers (e.g. Hadoop's pull-based
        shuffle) move data here so the traffic is visible to this tick's
        metric samples.
        """

    def _measure_performance(self, t: int) -> float:
        """Return this tick's SLO signal (latency, progress, ...)."""
        raise NotImplementedError

    def _emit_packets(self, t: int) -> None:
        """Record packet traffic for dependency discovery (override)."""
        for src, dst in self.topology.edges:
            messages = self.components[dst].arrived
            if messages > 0:
                self.packetizer.emit(t, src, dst, messages)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def violation_time(self) -> Optional[int]:
        """Tick of the first SLO violation, if one occurred."""
        return self.slo.first_violation if self.slo else None

    def inject(self, fault) -> None:
        """Register a fault; it activates itself based on its start time."""
        self.faults.append(fault)

    def path_sojourn(self, path: Sequence[ComponentId]) -> float:
        """Summed sojourn time along a component path plus per-hop network."""
        total = 0.0
        for name in path:
            total += self.components[name].sojourn_time()
        total += 0.001 * max(0, len(path) - 1)
        return total

    def component_names(self) -> List[ComponentId]:
        """All component names in topological order."""
        return list(self._order)

    def edge_traffic(self) -> Dict[Tuple[ComponentId, ComponentId], float]:
        """Per-edge items delivered this tick (topology-learning evidence).

        Splits each component's emitted items over its current routing
        table — the same split :meth:`QueueComponent.process` applied —
        so an :class:`~repro.core.topology.OnlineTopology` can learn
        edge confidences from live traffic without packet recording.
        """
        traffic: Dict[Tuple[ComponentId, ComponentId], float] = {}
        for name in self._order:
            component = self.components[name]
            if component.emitted <= 0:
                continue
            for downstream, fraction in component.routing():
                if fraction > 0:
                    traffic[(name, downstream.name)] = (
                        component.emitted * fraction
                    )
        return traffic

    # ------------------------------------------------------------------
    # Online-validation lever
    # ------------------------------------------------------------------
    def scale_resource(
        self, component: ComponentId, metric: Metric, factor: float = 2.0
    ) -> None:
        """Scale the resource behind ``metric`` on one component's VM/host.

        This is the dynamic resource-scaling knob FChain's online
        validation turns (paper Sec. II-A): CPU metrics scale the VM's CPU
        allocation, memory scales the memory limit, disk scales the host's
        disk bandwidth, and network scales the VM's CPU (a bigger instance —
        the network itself is not the modelled constraint).
        """
        vm = self.vms[component]
        if metric in (Metric.MEMORY_USAGE,):
            vm.scale_memory(factor)
        elif metric in (Metric.DISK_READ, Metric.DISK_WRITE):
            vm.host.disk_bw_kbps *= factor
        else:
            # CPU and network metrics: grow the instance. The host gains
            # the added cores too (validation migrates/scales for real on
            # the paper's testbed; here we model the capacity arriving).
            added = vm.vcpus * (factor - 1.0)
            vm.scale_cpu(factor)
            vm.host.cores += max(0.0, added)
