"""RUBiS: the three-tier online auction benchmark (EJB version).

Topology (paper Fig. 5): a web server load-balances requests over two EJB
application servers, both backed by one database server. Each component
runs in its own guest VM; the deployment spans two dual-core hosts. The
request rate is modulated by a NASA-web-trace-like workload, and the SLO is
an average response time below 100 ms.

This is the application where the *back-pressure* effect matters most: a
fault injected at the database (the last tier) drives queues in the
application and web tiers, so upstream components manifest abnormal
behaviour even though they are healthy — which is what defeats the
Topology/Dependency baselines in the paper's Fig. 6.
"""

from __future__ import annotations



from repro.apps.base import Application
from repro.monitoring.slo import LatencySLO
from repro.sim.component import ComponentSpec
from repro.workloads.generator import ClientWorkload
from repro.workloads.traces import nasa_like

#: Component names, also used by the fault library.
WEB, APP1, APP2, DB = "web", "app1", "app2", "db"


class RubisApplication(Application):
    """The simulated RUBiS deployment.

    Args:
        seed: Base seed controlling the workload trace, queueing noise and
            measurement noise of this run.
        duration: Length of the workload trace to pre-generate (seconds).
        base_rate: Mean client request rate (requests/s).
        record_packets: Record a packet trace for dependency discovery.
    """

    #: Response-time SLO threshold in seconds (paper: 100 ms).
    SLO_THRESHOLD = 0.100

    def __init__(
        self,
        seed: object = 0,
        *,
        duration: int = 3600,
        base_rate: float = 60.0,
        record_packets: bool = False,
    ) -> None:
        super().__init__("rubis", seed, record_packets=record_packets)
        host1 = self.new_host("rubis-host1", cores=2.0)
        host2 = self.new_host("rubis-host2", cores=2.0)

        self.add_component(
            ComponentSpec(
                WEB,
                capacity=260.0,
                service_time=0.002,
                buffer_limit=200.0,
                kb_in_per_item=3.0,
                kb_out_per_item=12.0,
                base_memory_mb=350.0,
                memory_per_item_mb=0.15,
            ),
            host1,
            memory_limit_mb=1536.0,
        )
        app_spec = dict(
            capacity=85.0,
            service_time=0.010,
            buffer_limit=120.0,
            kb_in_per_item=4.0,
            kb_out_per_item=5.0,
            base_memory_mb=500.0,
            memory_per_item_mb=0.4,
        )
        self.add_component(
            ComponentSpec(APP1, **app_spec), host1, memory_limit_mb=2048.0
        )
        self.add_component(
            ComponentSpec(APP2, **app_spec), host2, memory_limit_mb=2048.0
        )
        self.add_component(
            ComponentSpec(
                DB,
                capacity=200.0,
                service_time=0.008,
                buffer_limit=100.0,
                kb_in_per_item=2.0,
                kb_out_per_item=6.0,
                disk_read_kb_per_item=10.0,
                disk_write_kb_per_item=5.0,
                base_memory_mb=420.0,
                memory_per_item_mb=0.3,
            ),
            host2,
            memory_limit_mb=1536.0,
        )

        self.connect(WEB, APP1, weight=0.5)
        self.connect(WEB, APP2, weight=0.5)
        self.connect(APP1, DB)
        self.connect(APP2, DB)
        self.add_entry(WEB)
        self.workload = ClientWorkload(
            nasa_like(duration, seed=seed, base_rate=base_rate),
            seed=("rubis", seed),
        )
        self.slo = LatencySLO(self.SLO_THRESHOLD, sustain=10)
        self.finalize()

    # ------------------------------------------------------------------
    def _measure_performance(self, t: int) -> float:
        """Average end-to-end response time of this tick's requests.

        A request traverses web -> (app1 | app2, per the current routing
        weights) -> db; its response time is the sum of per-tier sojourn
        times plus a small fixed network delay.
        """
        web = self.components[WEB]
        db = self.components[DB]
        app_sojourn = 0.0
        for downstream, fraction in web.routing():
            if fraction > 0:
                app_sojourn += fraction * downstream.sojourn_time()
        response = (
            web.sojourn_time() + app_sojourn + db.sojourn_time() + 0.003
        )
        return response

    def _emit_packets(self, t: int) -> None:
        """Correlated per-request flows client -> web -> app_i -> db."""
        arrivals = self.components[WEB].arrived
        for app_name in (APP1, APP2):
            fraction = dict(
                (c.name, f) for c, f in self.components[WEB].routing()
            ).get(app_name, 0.0)
            if fraction <= 0:
                continue
            self.packetizer.emit_path(
                t,
                [("client", WEB), (WEB, app_name), (app_name, DB)],
                arrivals * fraction,
            )
