"""Hadoop: a MapReduce sorting job with three map and six reduce nodes.

Models the paper's Hadoop sort benchmark: each map node streams input
splits off disk (disk-bound, with bursty spill writes — the noisy DiskWrite
metric of Fig. 3), shuffles its output to all six reduce nodes, and the
reduce nodes write sorted output. Progress is a monotone score in [0, 1]
(as reported by the Hadoop API); the SLO is violated when the job makes no
meaningful progress for 30 seconds.

Hadoop is the most *dynamic* of the three applications — its metrics
fluctuate heavily during normal execution, which is what defeats plain
change-point schemes (PAL) and motivates FChain's burst-aware filtering.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.base import Application
from repro.monitoring.slo import ProgressSLO
from repro.sim.component import ComponentSpec
from repro.sim.metrics import MetricSynthesizer, NoiseProfile
from repro.common.types import Metric

#: Component names.
MAPS = ("map1", "map2", "map3")
REDUCES = tuple(f"red{i}" for i in range(1, 7))


class HadoopApplication(Application):
    """The simulated Hadoop sort deployment.

    Args:
        seed: Base seed for feed noise and measurement noise.
        total_input_items: Input records per map node; sized so the job
            outlives any experiment run (the paper's 12 GB sort).
        feed_rate: Records each map pulls from its input split per second.
    """

    #: SLO: no progress for more than this many seconds (paper: 30 s).
    STALL_SECONDS = 30

    def __init__(
        self,
        seed: object = 0,
        *,
        total_input_items: float = 240_000.0,
        feed_rate: float = 30.0,
        record_packets: bool = False,
    ) -> None:
        super().__init__("hadoop", seed, record_packets=record_packets)
        hosts = [
            self.new_host(f"hadoop-host{i}", cores=2.0) for i in (1, 2, 3, 4, 5)
        ]
        self.feed_rate = feed_rate
        self.total_input_items = total_input_items
        self.remaining_input: Dict[str, float] = {}

        map_profiles = {
            # Map-side disk traffic is bursty (spill cycles) — the noisy
            # DiskWrite texture of the paper's Fig. 3.
            Metric.DISK_WRITE: NoiseProfile(0.25, 0.025, 2.2, 2.0),
            Metric.DISK_READ: NoiseProfile(0.20, 0.020, 2.0, 1.0),
            Metric.CPU_USAGE: NoiseProfile(0.06, 0.015, 1.4, 1.0),
        }
        for i, name in enumerate(MAPS):
            comp = self.add_component(
                ComponentSpec(
                    name,
                    capacity=60.0,
                    service_time=0.015,
                    buffer_limit=600.0,
                    kb_in_per_item=1.0,
                    kb_out_per_item=30.0,
                    disk_read_kb_per_item=120.0,
                    disk_write_kb_per_item=60.0,
                    base_memory_mb=420.0,
                    memory_per_item_mb=0.3,
                    disk_bound=True,
                ),
                hosts[i],
                memory_limit_mb=1536.0,
            )
            self.remaining_input[name] = total_input_items / len(MAPS)
            self.monitor.register(
                comp,
                self.vms[name],
                hosts[i],
                MetricSynthesizer(name, seed=seed, profiles=map_profiles),
            )
        for j, name in enumerate(REDUCES):
            self.add_component(
                ComponentSpec(
                    name,
                    capacity=18.0,
                    service_time=0.020,
                    buffer_limit=300.0,
                    kb_in_per_item=30.0,
                    kb_out_per_item=2.0,
                    disk_write_kb_per_item=80.0,
                    base_memory_mb=380.0,
                    memory_per_item_mb=0.4,
                ),
                # Two VMs per host: reduces 1-3 share with maps 1-3,
                # reduces 4-6 fill hosts 4 and 5.
                hosts[j] if j < 3 else hosts[3 + (j - 3) // 2],
                memory_limit_mb=1536.0,
            )
        # Full shuffle, but *batched*: maps spill their output to disk and
        # the reduces fetch a whole spill every ``spill_interval`` seconds
        # (real Hadoop shuffle is pull-based over spill files). The queue
        # layer therefore has no direct map->reduce wiring — the transfer
        # happens in :meth:`tick` via the spill accumulators — while the
        # topology keeps the logical edges for dependency analysis.
        self.spill_interval = 10
        self._spill_accum = {m: 0.0 for m in MAPS}
        for m in MAPS:
            for r in REDUCES:
                self.topology.add_edge(m, r, weight=1.0 / len(REDUCES))
        nominal_rate = feed_rate * len(MAPS) / total_input_items  # per second
        self.slo = ProgressSLO(
            stall_seconds=self.STALL_SECONDS,
            min_delta=0.1 * self.STALL_SECONDS * nominal_rate,
        )
        self.finalize()

    # ------------------------------------------------------------------
    def _post_process(self, t: int) -> None:
        """Collect map output into spill accumulators; flush per phase.

        The flush happens before metric sampling, so the shuffle transfer
        shows up as map network-out and reduce network-in bursts of this
        tick — the on/off periodic texture that makes Hadoop the most
        dynamic of the three benchmarks.
        """
        for i, name in enumerate(MAPS):
            comp = self.components[name]
            self._spill_accum[name] += comp.processed
            if t % self.spill_interval != (i * 3) % self.spill_interval:
                continue
            spill = self._spill_accum[name]
            self._spill_accum[name] = 0.0
            if spill <= 0:
                continue
            comp.emitted += spill
            per_reduce = spill / len(REDUCES)
            for r in REDUCES:
                self.components[r].enqueue(per_reduce)

    def _dispatch_arrivals(self, t: int) -> None:
        """Maps pull records from their remaining input splits."""
        for name in MAPS:
            remaining = self.remaining_input[name]
            if remaining <= 0:
                continue
            comp = self.components[name]
            pulled = min(remaining, self.feed_rate, comp.free_space())
            comp.enqueue(pulled)
            self.remaining_input[name] = remaining - pulled

    def _measure_performance(self, t: int) -> float:
        """Job progress score in [0, 1]: half map work, half reduce work."""
        if not hasattr(self, "_cum_map"):
            self._cum_map = 0.0
            self._cum_reduce = 0.0
        self._cum_map += sum(self.components[m].processed for m in MAPS)
        self._cum_reduce += sum(self.components[r].processed for r in REDUCES)
        total = self.total_input_items
        return min(1.0, 0.5 * (self._cum_map / total + self._cum_reduce / total))

    def _emit_packets(self, t: int) -> None:
        """Shuffle transfers: bursty per-edge request/reply traffic."""
        for m in MAPS:
            comp = self.components[m]
            if comp.emitted <= 0:
                continue
            per_reduce = comp.emitted / len(REDUCES)
            for r in REDUCES:
                # Scale message count down: one "message" per record batch.
                self.packetizer.emit(t, m, r, per_reduce / 4.0)
