"""Benchmark applications used in the paper's evaluation.

Three distributed applications run on the simulated cloud substrate:

* :mod:`repro.apps.rubis` — the RUBiS three-tier online auction benchmark
  (web server, two EJB application servers, database);
* :mod:`repro.apps.hadoop` — a Hadoop sort job (3 map nodes, 6 reduce
  nodes) with a job progress score;
* :mod:`repro.apps.systems` — an IBM System S style stream-processing
  application with seven processing elements (Fig. 2 topology).

Beyond the paper's testbed, :mod:`repro.apps.mesh` generates a
parameterizable microservice mesh (20–200 services with fan-out/fan-in,
retries and timeouts) — the scaling testbed for topology-guided
pinpointing.
"""

from repro.apps.base import Application
from repro.apps.hadoop import HadoopApplication
from repro.apps.mesh import MeshApplication
from repro.apps.rubis import RubisApplication
from repro.apps.systems import SystemSApplication

__all__ = [
    "Application",
    "HadoopApplication",
    "MeshApplication",
    "RubisApplication",
    "SystemSApplication",
]
