"""FChain reproduction: black-box online fault localization for clouds.

Reproduces Nguyen, Shen, Tan & Gu, *"FChain: Toward Black-box Online Fault
Localization for Cloud Systems"* (ICDCS 2013): the FChain system itself
(:mod:`repro.core`), the simulated IaaS substrate and the three benchmark
applications it is evaluated on (:mod:`repro.cloud`, :mod:`repro.sim`,
:mod:`repro.apps`), the fault injection campaigns (:mod:`repro.faults`),
six comparison baselines (:mod:`repro.baselines`) and the experiment
harness regenerating every table and figure (:mod:`repro.eval`).

Quickstart::

    from repro.apps.rubis import RubisApplication, DB
    from repro.faults.library import CpuHogFault
    from repro.core import FChain

    app = RubisApplication(seed=1, duration=2400)
    app.inject(CpuHogFault(1300, DB))
    app.run(1400)
    result = FChain().localize(
        app.store, violation_time=app.slo.first_violation_after(1300)
    )
    print(result.faulty)  # frozenset({'db'})
"""

from repro.core import FChain, FChainConfig, FChainMaster, FChainSlave, PinpointResult

__version__ = "1.0.0"

__all__ = [
    "FChain",
    "FChainConfig",
    "FChainMaster",
    "FChainSlave",
    "PinpointResult",
    "__version__",
]
