"""The fault library: every fault type from the paper's evaluation.

Each class documents which paper fault it models and how the behavioural
substitution preserves the manifestation the localization schemes see.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.types import ComponentId
from repro.faults.base import Fault


class MemLeakFault(Fault):
    """A memory-leak bug inside one component (paper: MemLeak).

    Memory grows steadily from injection; once occupancy approaches the
    VM's limit the component starts thrashing (speed collapses, swap
    traffic appears on disk metrics). The *memory* metric changes at the
    injection instant, so the faulty component's abnormal-change onset
    precedes every propagated effect — the pattern of Fig. 2.
    """

    kind = "memleak"

    def __init__(
        self, start_time: int, component: ComponentId, rate_mb_per_s: float = 8.0
    ) -> None:
        super().__init__(start_time, [component])
        self.component = component
        self.rate_mb_per_s = rate_mb_per_s

    def progress(self, app, t: int) -> None:
        app.components[self.component].leaked_mb += self.rate_mb_per_s


class CpuHogFault(Fault):
    """A CPU-bound program competing inside the component's VM (CpuHog).

    The hog ramps up over ``ramp_seconds`` (threads spawning, caches
    warming) rather than appearing at full intensity instantly; the
    component's degradation is therefore gradual, and back-pressure
    reaches its neighbours several seconds after the hog starts — the
    propagation-delay regime the paper reports.
    """

    kind = "cpuhog"

    def __init__(
        self,
        start_time: int,
        component: ComponentId,
        cores: float = 7.0,
        ramp_seconds: int = 25,
    ) -> None:
        super().__init__(start_time, [component])
        self.component = component
        self.cores = cores
        self.ramp_seconds = max(1, ramp_seconds)
        self._applied = 0.0

    def progress(self, app, t: int) -> None:
        elapsed = t - self.start_time
        level = self.cores * min(1.0, elapsed / self.ramp_seconds)
        app.vms[self.component].extra_cpu_cores += level - self._applied
        self._applied = level


class InfiniteLoopFault(Fault):
    """An infinite-loop bug inside the component itself.

    Used for Hadoop's "Concurrent CpuHog" (the paper injects an infinite
    loop into every map task): the task burns a full core while making
    almost no forward progress.
    """

    kind = "infinite_loop"

    def __init__(
        self,
        start_time: int,
        component: ComponentId,
        *,
        residual_speed: float = 0.03,
        loop_cores: float = 1.0,
    ) -> None:
        super().__init__(start_time, [component])
        self.component = component
        self.residual_speed = residual_speed
        self.loop_cores = loop_cores

    def activate(self, app) -> None:
        app.components[self.component].speed_multiplier *= self.residual_speed
        app.vms[self.component].extra_cpu_cores += self.loop_cores


class NetHogFault(Fault):
    """An httperf-style request flood at the web tier (NetHog).

    Junk requests consume CPU at the target and show up as a surge of
    inbound network traffic; the earliest abnormal metric is network-in.
    """

    kind = "nethog"

    def __init__(
        self,
        start_time: int,
        component: ComponentId,
        *,
        cores: float = 8.0,
        net_kbps: float = 25000.0,
        ramp_seconds: int = 20,
    ) -> None:
        super().__init__(start_time, [component])
        self.component = component
        self.cores = cores
        self.net_kbps = net_kbps
        self.ramp_seconds = max(1, ramp_seconds)
        self._applied = 0.0

    def progress(self, app, t: int) -> None:
        elapsed = t - self.start_time
        level = min(1.0, elapsed / self.ramp_seconds)
        vm = app.vms[self.component]
        vm.extra_cpu_cores += self.cores * (level - self._applied)
        vm.extra_net_in_kbps += self.net_kbps * (level - self._applied)
        self._applied = level


class DiskHogFault(Fault):
    """A disk-intensive program in Domain-0 of the targets' hosts (DiskHog).

    Domain-0 I/O ramps up gradually, shrinking the disk bandwidth available
    to disk-bound guests. This is the paper's slowest-manifesting fault —
    the one that needs a 500-second look-back window.
    """

    kind = "diskhog"

    def __init__(
        self,
        start_time: int,
        components: Iterable[ComponentId],
        *,
        ramp_kbps_per_s: float = 180.0,
    ) -> None:
        super().__init__(start_time, components)
        self.components = list(components)
        self.ramp_kbps_per_s = ramp_kbps_per_s

    def progress(self, app, t: int) -> None:
        elapsed = t - self.start_time
        for name in self.components:
            host = app.vms[name].host
            host.dom0_disk_kbps = min(
                host.disk_bw_kbps * 0.995, elapsed * self.ramp_kbps_per_s
            )


class BottleneckFault(Fault):
    """A low CPU cap set over one PE's VM (System S Bottleneck)."""

    kind = "bottleneck"

    def __init__(
        self, start_time: int, component: ComponentId, cap: float = 0.10
    ) -> None:
        super().__init__(start_time, [component])
        self.component = component
        self.cap = cap

    def activate(self, app) -> None:
        app.vms[self.component].cpu_cap = self.cap


class OffloadBugFault(Fault):
    """JBoss remote-lookup bug JBAS-1442 (RUBiS OffloadBug).

    Application server 1 tries to offload EJBs to application server 2 but
    the broken lookup returns the local binding: app1 silently absorbs the
    offloaded work (with lookup overhead) while app2's share collapses.
    Both application servers manifest concurrently — the paper classes
    this as a multi-component concurrent fault, so the ground truth is
    both EJB servers.
    """

    kind = "offload_bug"

    def __init__(
        self,
        start_time: int,
        *,
        web: ComponentId = "web",
        app1: ComponentId = "app1",
        app2: ComponentId = "app2",
        skew: float = 0.92,
        overhead: float = 0.45,
    ) -> None:
        super().__init__(start_time, [app1, app2])
        self.web = web
        self.app1 = app1
        self.app2 = app2
        self.skew = skew
        self.overhead = overhead

    def activate(self, app) -> None:
        web = app.components[self.web]
        web.weight_overrides[self.app1] = self.skew
        web.weight_overrides[self.app2] = 1.0 - self.skew
        # Remote lookups resolving locally: app1 also pays the lookup and
        # the EJB work it should have shipped away.
        app.components[self.app1].speed_multiplier *= self.overhead


class LBBugFault(Fault):
    """mod_jk 1.2.30 load-balancing bug (RUBiS LBBug).

    The web tier's balancer dispatches requests entirely to one worker:
    app1 saturates while app2 starves. Both application servers show
    concurrent abnormal changes; ground truth is both EJB servers
    (multi-component concurrent fault, as in the paper).
    """

    kind = "lb_bug"

    def __init__(
        self,
        start_time: int,
        *,
        web: ComponentId = "web",
        app1: ComponentId = "app1",
        app2: ComponentId = "app2",
    ) -> None:
        super().__init__(start_time, [app1, app2])
        self.web = web
        self.app1 = app1
        self.app2 = app2

    def activate(self, app) -> None:
        web = app.components[self.web]
        web.weight_overrides[self.app1] = 1.0
        web.weight_overrides[self.app2] = 1e-6
        # The broken balancer hammers one worker with reconnect/retry
        # overhead on top of the full request stream.
        app.components[self.app1].speed_multiplier *= 0.55


class WorkloadSurge(Fault):
    """An external workload surge — *not* an application fault.

    Used to exercise FChain's external-factor detection: every component
    trends upward together, so a correct localizer should pinpoint nothing.
    The ground truth is accordingly empty.
    """

    kind = "workload_surge"

    def __init__(self, start_time: int, *, factor: float = 2.6) -> None:
        super().__init__(start_time, [])
        self.factor = factor
        self._original = None

    def activate(self, app) -> None:
        workload = app.workload
        self._original = workload.rates
        workload.rates = workload.rates * self.factor
