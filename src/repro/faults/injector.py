"""Fault campaign scheduling.

The paper injects one fault per application run at a random time instant to
exercise different workload conditions, repeating 30-40 runs per fault.
:class:`FaultCampaign` captures one such fault configuration — a factory
that builds the fault(s) given an injection time and an RNG (some faults
pick random target PEs) — and materializes it deterministically per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Tuple

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.types import ComponentId
from repro.faults.base import Fault

#: Signature of a campaign fault factory.
FaultFactory = Callable[[int, np.random.Generator], List[Fault]]


def schedule_fault_time(
    rng: np.random.Generator, window: Tuple[int, int]
) -> int:
    """Draw a random injection tick from ``[window[0], window[1])``."""
    lo, hi = window
    if not 0 <= lo < hi:
        raise ValueError(f"invalid injection window {window}")
    return int(rng.integers(lo, hi))


@dataclass(frozen=True)
class FaultCampaign:
    """One fault configuration to be repeated across runs.

    Attributes:
        name: Campaign name (e.g. ``"rubis/memleak"``).
        factory: Builds the concrete fault list for a run; receives the
            injection tick and a per-run RNG (used e.g. to pick random
            target PEs in System S).
        window: Injection-time range ``[lo, hi)`` in ticks.
    """

    name: str
    factory: FaultFactory
    window: Tuple[int, int] = (600, 900)

    def materialize(
        self, run_seed: object
    ) -> Tuple[List[Fault], int, FrozenSet[ComponentId]]:
        """Build this campaign's faults for one run.

        Returns:
            The fault list, the injection tick, and the combined ground
            truth (union over all faults).
        """
        rng = spawn_rng("inject", self.name, run_seed)
        t_inject = schedule_fault_time(rng, self.window)
        faults = self.factory(t_inject, rng)
        truth: FrozenSet[ComponentId] = frozenset().union(
            *(f.ground_truth for f in faults)
        ) if faults else frozenset()
        return faults, t_inject, truth
