"""Fault base class.

A fault is a tick-driven mutation of the application/cloud state. It stays
dormant until its start time, applies a one-shot activation (e.g. start a
hog process, flip a routing table) and may then keep progressing every tick
(e.g. a memory leak growing). Faults carry their own ground truth — the set
of components a perfect localizer should pinpoint — which the evaluation
harness scores against.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.common.types import ComponentId


class Fault:
    """Base class for injected faults.

    Args:
        start_time: Tick at which the fault begins to act.
        targets: Component(s) the fault is considered to originate from —
            the localization ground truth.
    """

    #: Human-readable fault kind, overridden by subclasses.
    kind = "fault"

    def __init__(self, start_time: int, targets: Iterable[ComponentId]) -> None:
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        self.start_time = start_time
        self._targets = frozenset(targets)
        self._activated = False

    @property
    def ground_truth(self) -> FrozenSet[ComponentId]:
        """Components a perfect localizer should pinpoint for this fault."""
        return self._targets

    @property
    def active(self) -> bool:
        """Whether the fault has activated yet."""
        return self._activated

    # ------------------------------------------------------------------
    def on_tick(self, app, t: int) -> None:
        """Advance the fault; called by the application every tick."""
        if t < self.start_time:
            return
        if not self._activated:
            self.activate(app)
            self._activated = True
        self.progress(app, t)

    # Subclass hooks -----------------------------------------------------
    def activate(self, app) -> None:
        """One-shot state change when the fault first fires."""

    def progress(self, app, t: int) -> None:
        """Recurring per-tick effect while the fault is active."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(start={self.start_time}, "
            f"targets={sorted(self._targets)})"
        )
