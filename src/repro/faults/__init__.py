"""Fault injection.

Behavioural models of the faults the paper injects (Sec. III-A): common
software bugs (memory leaks, infinite loops, real JBoss/mod_jk bugs) and
resource interference (CPU/network/disk hogs, CPU caps), in both
single-component and multi-component concurrent variants.
"""

from repro.faults.base import Fault
from repro.faults.injector import FaultCampaign, schedule_fault_time
from repro.faults.library import (
    BottleneckFault,
    CpuHogFault,
    DiskHogFault,
    LBBugFault,
    MemLeakFault,
    NetHogFault,
    OffloadBugFault,
    WorkloadSurge,
)

__all__ = [
    "BottleneckFault",
    "CpuHogFault",
    "DiskHogFault",
    "Fault",
    "FaultCampaign",
    "LBBugFault",
    "MemLeakFault",
    "NetHogFault",
    "OffloadBugFault",
    "WorkloadSurge",
    "schedule_fault_time",
]
