"""Client workload generator.

Turns a rate trace into per-tick arrivals (Poisson counts around the traced
rate, like the paper's client emulator driving RUBiS/System S) and keeps the
trace accessible for inspection. The generator is deliberately stateless
across ticks apart from its RNG so forked simulations diverge correctly.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import spawn_rng


class ClientWorkload:
    """Arrival process driven by a per-second rate trace.

    Args:
        rates: Rate trace (items/s), one entry per simulated second. Ticks
            beyond the trace reuse the final value.
        seed: Label for the deterministic arrival-noise stream.
    """

    def __init__(self, rates: np.ndarray, seed: object = 0) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 1 or len(rates) == 0:
            raise ValueError("rates must be a non-empty 1-D array")
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        self.rates = rates
        self._rng = spawn_rng("workload", seed)

    def rate(self, t: int) -> float:
        """Traced rate at tick ``t`` (clamped to the trace bounds)."""
        idx = min(max(t, 0), len(self.rates) - 1)
        return float(self.rates[idx])

    def arrivals(self, t: int) -> float:
        """Sampled arrival count for tick ``t`` (Poisson around the rate)."""
        rate = self.rate(t)
        if rate <= 0:
            return 0.0
        return float(self._rng.poisson(rate))

    def __len__(self) -> int:
        return len(self.rates)
