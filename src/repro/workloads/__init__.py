"""Workload traces and client generators.

The paper modulates request/data rates with real web traces (NASA and
ClarkNet from the IRCache archive) to create realistic normal fluctuations.
Those archives are not available offline, so this package synthesizes
traces with the same statistical character — diurnal cycles, self-similar
bursts, heavy-tailed noise — which exercise the identical code path: the
normal fluctuation patterns FChain must learn and filter out.
"""

from repro.workloads.generator import ClientWorkload
from repro.workloads.traces import TraceSpec, clarknet_like, diurnal_trace, nasa_like

__all__ = [
    "ClientWorkload",
    "TraceSpec",
    "clarknet_like",
    "diurnal_trace",
    "nasa_like",
]
