"""Synthetic web-server workload traces.

Each trace is a per-second request-rate series combining:

* a diurnal (sinusoidal) cycle, compressed so a laptop-scale run of a few
  thousand simulated seconds sweeps through meaningful load variation, as
  an hour of the real NASA/ClarkNet traces does;
* a slow mean-reverting random walk (day-to-day drift);
* recurring multiplicative bursts (flash-crowd texture) — these are the
  benign change points FChain must learn to ignore;
* heavy-tailed per-second noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import spawn_rng


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a synthetic rate trace.

    Attributes:
        base_rate: Mean request rate (items/s).
        diurnal_amplitude: Relative amplitude of the daily cycle (0..1).
        period: Length of one compressed "day" in seconds.
        walk_sigma: Step size of the mean-reverting drift.
        burst_prob: Per-second probability of a flash burst starting.
        burst_scale: Peak multiplicative amplitude of a burst.
        burst_length: Mean burst duration in seconds.
        noise_sigma: Relative per-second gaussian noise.
    """

    base_rate: float = 60.0
    diurnal_amplitude: float = 0.35
    period: int = 1200
    walk_sigma: float = 0.004
    burst_prob: float = 0.01
    burst_scale: float = 1.8
    burst_length: float = 8.0
    noise_sigma: float = 0.06


def diurnal_trace(length: int, spec: TraceSpec, seed: object = 0) -> np.ndarray:
    """Generate a rate series of ``length`` seconds from ``spec``.

    Returns:
        Non-negative request rates, one per second.
    """
    rng = spawn_rng("trace", seed, spec.base_rate, spec.period)
    t = np.arange(length, dtype=float)
    phase = rng.random() * 2 * np.pi
    cycle = 1.0 + spec.diurnal_amplitude * np.sin(2 * np.pi * t / spec.period + phase)

    # Mean-reverting random walk in log space.
    steps = rng.normal(0.0, spec.walk_sigma, size=length)
    walk = np.empty(length)
    level = 0.0
    for i in range(length):
        level = 0.995 * level + steps[i]
        walk[i] = level
    drift = np.exp(walk)

    # Recurring flash bursts with exponential decay shape.
    bursts = np.ones(length)
    starts = np.nonzero(rng.random(length) < spec.burst_prob)[0]
    for s in starts:
        duration = max(2, int(rng.exponential(spec.burst_length)))
        peak = 1.0 + rng.random() * (spec.burst_scale - 1.0)
        end = min(length, s + duration)
        shape = np.exp(-np.arange(end - s) / max(1.0, duration / 3.0))
        bursts[s:end] *= 1.0 + (peak - 1.0) * shape

    noise = 1.0 + rng.normal(0.0, spec.noise_sigma, size=length)
    rates = spec.base_rate * cycle * drift * bursts * noise
    return np.clip(rates, 0.0, None)


def nasa_like(length: int, seed: object = 0, base_rate: float = 60.0) -> np.ndarray:
    """NASA-July-1995-like trace: pronounced diurnal swing, moderate bursts.

    Used to modulate the RUBiS request rate (paper Sec. III-A).
    """
    spec = TraceSpec(
        base_rate=base_rate,
        diurnal_amplitude=0.40,
        period=1200,
        burst_prob=0.010,
        burst_scale=1.9,
        noise_sigma=0.07,
    )
    return diurnal_trace(length, spec, seed=("nasa", seed))


def clarknet_like(length: int, seed: object = 0, base_rate: float = 80.0) -> np.ndarray:
    """ClarkNet-August-1995-like trace: denser traffic, burstier texture.

    Used to modulate the System S data arrival rate (paper Sec. III-A).
    """
    spec = TraceSpec(
        base_rate=base_rate,
        diurnal_amplitude=0.30,
        period=1000,
        burst_prob=0.016,
        burst_scale=2.1,
        burst_length=6.0,
        noise_sigma=0.09,
    )
    return diurnal_trace(length, spec, seed=("clarknet", seed))
