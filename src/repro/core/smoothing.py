"""Series smoothing.

PAL (the paper's precursor system, ref. [13]) smooths raw monitoring data
before change point detection to remove sensor noise; FChain inherits the
step. A centred moving average preserves the timing of level shifts, which
matters because onset times feed the propagation ordering.
"""

from __future__ import annotations

import numpy as np

from repro.common.timeseries import TimeSeries


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge shrinking.

    Near the boundaries the window shrinks symmetrically instead of
    padding, so no artificial level shifts are introduced at the series
    ends (the look-back window boundary is exactly where onset rollback
    operates).

    Args:
        values: Input samples.
        window: Nominal window width (>= 1); even widths are rounded up to
            the next odd width to stay centred.

    Returns:
        Smoothed array of the same length.
    """
    values = np.asarray(values, dtype=float)
    if window <= 1 or len(values) <= 2:
        return values.copy()
    half = max(1, window // 2)
    out = np.empty_like(values)
    n = len(values)
    # Prefix sums make each shrunken-window mean O(1).
    csum = np.concatenate([[0.0], np.cumsum(values)])
    for i in range(n):
        radius = min(half, i, n - 1 - i)
        lo, hi = i - radius, i + radius + 1
        out[i] = (csum[hi] - csum[lo]) / (hi - lo)
    return out


def smooth_series(series: TimeSeries, window: int) -> TimeSeries:
    """Smooth a :class:`TimeSeries`, preserving its time grid."""
    return TimeSeries(moving_average(series.values, window), start=series.start)
