"""Online learned, weighted dependency topology.

The paper discovers the inter-component dependency graph *offline* from a
profiling packet trace (Sec. II-C) and stores it in a file for diagnosis
time. This module promotes that artifact to a continuously learned one:
an :class:`OnlineTopology` watches normal operation tick by tick and
maintains a per-edge *confidence* in ``[0, 1]`` with exponential decay —
fresh traffic-correlation or metric co-movement evidence pushes an edge's
confidence toward 1, silence decays it toward 0, so the graph tracks
deployments, traffic shifts and retired call paths without a re-profiling
run (the direction of arXiv 2509.05511's end-to-end service topology).

Two evidence channels feed the learner:

* :meth:`OnlineTopology.observe_traffic` — per-tick packet/request counts
  per directed edge (the cheap channel when the platform exports edge
  traffic, e.g. the simulator's packet trace or a service mesh's
  telemetry);
* :meth:`OnlineTopology.observe_comovement` — per-tick metric values per
  component; candidate edges are corroborated by the correlation of the
  two endpoints' recent *changes* (the black-box channel when only
  per-VM metrics are visible, FChain's own observability assumption).

The learned graph plugs into diagnosis twice:

* its weighted snapshot (:meth:`OnlineTopology.graph`) replaces the static
  dependency graph in ``pinpoint_faulty_components``, where edge weights
  strengthen the spurious-propagation pruning
  (``propagation_path_confidence``), and
* :func:`rank_candidates` orders components by graph distance from the
  SLO-violating origin so the master can dispatch slaves for the top-K
  propagation neighborhood only, escalating to a full analysis whenever
  :func:`neighborhood_complete` shows the scoped result could have missed
  a culprit outside the frontier.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

from repro.common.types import ComponentId
from repro.core.dependency import load_graph, save_graph

Edge = Tuple[ComponentId, ComponentId]


class OnlineTopology:
    """Continuously learned weighted dependency graph.

    Each directed edge carries a confidence in ``[0, 1]`` maintained as a
    per-tick exponential moving average of evidence: at every tick,
    ``confidence = decay * confidence + (1 - decay) * evidence`` with
    ``decay = 0.5 ** (1 / halflife)``. Ticks with no evidence contribute
    ``evidence = 0`` — applied lazily, so silent edges cost nothing until
    they are read. An edge observed every tick asymptotes to 1; an edge
    that falls silent halves every ``halflife`` ticks.

    Args:
        halflife: Ticks of silence after which an edge's confidence
            halves (and the averaging window of the evidence EWMA).
        min_confidence: Default cutoff below which edges are omitted from
            :meth:`graph` snapshots (decayed-away edges disappear).
        comovement_window: Samples of per-component signal history kept
            for the co-movement correlation channel.
        activity_threshold: Per-tick traffic count a directed edge must
            exceed to register as active evidence.
        seed_graph: Offline-discovered graph (``discover_dependencies``)
            to seed the learner with; seeded edges start at
            ``seed_confidence`` (or their stored ``weight``) and then
            decay / refresh like any learned edge.
        seed_confidence: Starting confidence for seeded edges without a
            stored weight.
    """

    def __init__(
        self,
        *,
        halflife: float = 600.0,
        min_confidence: float = 0.05,
        comovement_window: int = 32,
        activity_threshold: float = 0.0,
        seed_graph: Optional[nx.DiGraph] = None,
        seed_confidence: float = 1.0,
    ) -> None:
        if halflife <= 0:
            raise ValueError("halflife must be positive")
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        if comovement_window < 4:
            raise ValueError("comovement_window must be >= 4")
        if not 0.0 <= seed_confidence <= 1.0:
            raise ValueError("seed_confidence must be in [0, 1]")
        self.halflife = float(halflife)
        self.min_confidence = float(min_confidence)
        self.comovement_window = int(comovement_window)
        self.activity_threshold = float(activity_threshold)
        self._decay = 0.5 ** (1.0 / self.halflife)
        self._confidence: Dict[Edge, float] = {}
        self._last_update: Dict[Edge, int] = {}
        self._nodes: set = set()
        self._tick: int = 0
        self._signals: Dict[ComponentId, Deque[float]] = {}
        if seed_graph is not None:
            self.seed(seed_graph, confidence=seed_confidence)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """Latest tick the learner has observed."""
        return self._tick

    @property
    def nodes(self) -> frozenset:
        """Every component the learner has seen (as node or endpoint)."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._confidence)

    def confidence(self, src: ComponentId, dst: ComponentId) -> float:
        """Current confidence of the directed edge ``src -> dst``.

        Applies the lazy decay for ticks since the edge last saw
        evidence; unknown edges have confidence 0.
        """
        edge = (src, dst)
        stored = self._confidence.get(edge)
        if stored is None:
            return 0.0
        silent = self._tick - self._last_update[edge]
        return stored * self._decay**silent if silent > 0 else stored

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def seed(self, graph: nx.DiGraph, *, confidence: float = 1.0) -> None:
        """Adopt an offline-discovered graph as the starting topology.

        Edges carrying a stored ``weight`` keep it; others start at
        ``confidence``. Seeded edges decay and refresh exactly like
        learned ones.
        """
        self._nodes.update(graph.nodes)
        for src, dst, data in graph.edges(data=True):
            weight = float(data.get("weight", confidence))
            edge = (src, dst)
            self._confidence[edge] = min(1.0, max(0.0, weight))
            self._last_update[edge] = self._tick

    def observe_traffic(
        self, tick: int, counts: Mapping[Edge, float]
    ) -> None:
        """Feed one tick of per-edge traffic counts.

        Every directed edge whose count exceeds ``activity_threshold``
        receives full evidence for this tick; every other known edge
        implicitly receives zero evidence through lazy decay.
        """
        self._advance(tick)
        for (src, dst), count in counts.items():
            if count <= self.activity_threshold:
                continue
            self._nodes.add(src)
            self._nodes.add(dst)
            self._bump((src, dst), 1.0)

    def observe_comovement(
        self, tick: int, signals: Mapping[ComponentId, float]
    ) -> None:
        """Feed one tick of per-component metric signals.

        Appends each signal to the component's rolling window and, for
        every *known* edge whose endpoints both have full windows,
        uses the positive correlation of the two endpoints' recent
        changes as this tick's evidence. Co-movement corroborates (or
        decays) edges that exist — from the offline seed or the traffic
        channel — it does not invent new ones: correlation alone cannot
        orient an edge, and all-pairs scanning is quadratic.
        """
        self._advance(tick)
        for component, value in signals.items():
            self._nodes.add(component)
            window = self._signals.get(component)
            if window is None:
                window = deque(maxlen=self.comovement_window)
                self._signals[component] = window
            window.append(float(value))
        for edge in list(self._confidence):
            src, dst = edge
            evidence = self._delta_correlation(src, dst)
            if evidence is None:
                continue
            self._bump(edge, evidence)

    def _delta_correlation(
        self, src: ComponentId, dst: ComponentId
    ) -> Optional[float]:
        """Positive Pearson correlation of the endpoints' signal deltas,
        or None when either window is not full yet."""
        a = self._signals.get(src)
        b = self._signals.get(dst)
        if (
            a is None
            or b is None
            or len(a) < self.comovement_window
            or len(b) < self.comovement_window
        ):
            return None
        da = np.diff(np.asarray(a, dtype=float))
        db = np.diff(np.asarray(b, dtype=float))
        sa = float(da.std())
        sb = float(db.std())
        if sa <= 0.0 or sb <= 0.0:
            return 0.0
        corr = float(np.corrcoef(da, db)[0, 1])
        if not np.isfinite(corr):
            return 0.0
        return max(0.0, corr)

    def _advance(self, tick: int) -> None:
        if tick > self._tick:
            self._tick = tick

    def _bump(self, edge: Edge, evidence: float) -> None:
        stored = self._confidence.get(edge, 0.0)
        last = self._last_update.get(edge, self._tick)
        # ``gap`` ticks passed since the last evidence; the EWMA step
        # itself advances one of them, leaving ``gap - 1`` silent ticks
        # of pure decay. Folding the step into ``decay**gap`` keeps an
        # every-tick edge asymptoting to 1 instead of double-decaying.
        gap = max(1, self._tick - last)
        updated = stored * self._decay**gap + (
            1.0 - self._decay
        ) * float(evidence)
        self._confidence[edge] = min(1.0, updated)
        self._last_update[edge] = self._tick

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def graph(self, min_confidence: Optional[float] = None) -> nx.DiGraph:
        """Weighted snapshot of the current topology.

        Every node the learner has seen is included; edges with current
        confidence at least ``min_confidence`` (default: the learner's
        cutoff) appear with their confidence as the ``weight`` attribute
        — the format ``propagation_path_confidence`` and the extended
        ``save_graph`` understand.
        """
        cutoff = self.min_confidence if min_confidence is None else min_confidence
        graph = nx.DiGraph()
        graph.add_nodes_from(sorted(self._nodes))
        for (src, dst) in sorted(self._confidence):
            weight = self.confidence(src, dst)
            if weight >= cutoff and weight > 0.0:
                graph.add_edge(src, dst, weight=weight)
        return graph

    def save(self, path) -> None:
        """Persist the current weighted snapshot (``save_graph`` format)."""
        save_graph(self.graph(), path)

    @classmethod
    def load(cls, path, **kwargs) -> "OnlineTopology":
        """Restore a learner from a snapshot written by :meth:`save`.

        Stored edge weights become the starting confidences; learning
        resumes from tick 0.
        """
        return cls(seed_graph=load_graph(path), **kwargs)

    # ------------------------------------------------------------------
    # Candidate ranking
    # ------------------------------------------------------------------
    def neighborhood(
        self,
        origin: ComponentId,
        components: Iterable[ComponentId],
        k: Optional[int] = None,
    ) -> List[ComponentId]:
        """Components ranked by propagation distance from ``origin``.

        Delegates to :func:`rank_candidates` on the current snapshot;
        ``k`` truncates the ranking (None returns it whole).
        """
        ranked = rank_candidates(self.graph(), origin, components)
        return ranked if k is None else ranked[: max(1, k)]


def rank_candidates(
    graph: nx.DiGraph,
    origin: ComponentId,
    components: Iterable[ComponentId],
) -> List[ComponentId]:
    """Rank ``components`` by graph distance from ``origin``.

    Distance is undirected hop count — propagation travels with request
    flow and against it (back-pressure), so both directions count. Ties
    break by best path confidence (product of edge ``weight`` attributes,
    treating each undirected hop as the better of its two directions),
    then by name for determinism. Components the graph knows nothing
    about rank last (sorted): they cannot be reached by any learned
    propagation path, but they are not ruled out — the caller's
    escalation logic covers them.

    The origin always ranks first, whether or not the graph knows it.
    """
    components = list(dict.fromkeys(components))
    if origin not in components:
        components = [origin] + components
    member = set(components)

    # Undirected adjacency with per-hop best confidence.
    adjacency: Dict[ComponentId, Dict[ComponentId, float]] = {}
    for src, dst, data in graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        adjacency.setdefault(src, {})
        adjacency.setdefault(dst, {})
        adjacency[src][dst] = max(adjacency[src].get(dst, 0.0), weight)
        adjacency[dst][src] = max(adjacency[dst].get(src, 0.0), weight)

    distance: Dict[ComponentId, int] = {origin: 0}
    path_conf: Dict[ComponentId, float] = {origin: 1.0}
    frontier = [origin]
    hops = 0
    while frontier:
        hops += 1
        next_frontier: Dict[ComponentId, float] = {}
        for node in frontier:
            for neighbor, weight in adjacency.get(node, {}).items():
                if neighbor in distance:
                    continue
                candidate = path_conf[node] * weight
                if candidate > next_frontier.get(neighbor, -1.0):
                    next_frontier[neighbor] = candidate
        for neighbor, conf in next_frontier.items():
            distance[neighbor] = hops
            path_conf[neighbor] = conf
        frontier = sorted(next_frontier)

    reached = [c for c in components if c in distance]
    reached.sort(key=lambda c: (distance[c], -path_conf[c], c))
    unreached = sorted(c for c in components if c not in distance)
    ranked = reached + unreached
    # The origin leads even when the graph does not know it.
    ranked.remove(origin)
    return [origin] + [c for c in ranked if c in member]


def neighborhood_complete(
    graph: nx.DiGraph,
    abnormal: Iterable[ComponentId],
    analyzed: Iterable[ComponentId],
) -> bool:
    """Whether a scoped analysis covered every plausible propagation hop.

    True when every undirected graph neighbor of every abnormal component
    was itself analysed — no anomaly sits at the frontier of the analysed
    set with an unexamined neighbor its anomaly could have arrived from
    (or spread to). When False, a culprit outside the neighborhood cannot
    be ruled out and the caller must widen the search.
    """
    analyzed_set = set(analyzed)
    for component in abnormal:
        if component not in graph:
            continue
        neighbors = set(graph.successors(component)) | set(
            graph.predecessors(component)
        )
        if not neighbors <= analyzed_set:
            return False
    return True


__all__ = [
    "OnlineTopology",
    "neighborhood_complete",
    "rank_candidates",
]
