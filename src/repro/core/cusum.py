"""CUSUM + bootstrap change point detection.

The standard algorithm the paper cites (Basseville & Nikiforov [21], the
"CUSUM + Bootstrap" method of Fig. 3): the cumulative sum of deviations
from the segment mean peaks where the mean shifts; a permutation bootstrap
decides whether the peak is significant; recursive binary segmentation
finds multiple change points.

This deliberately over-fires on fluctuating metrics — that is the paper's
point: raw change point detection finds "many change points [that] are just
random peak and bottom values", and FChain's later stages must filter them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries


@dataclass(frozen=True)
class ChangePoint:
    """One detected change point.

    Attributes:
        time: Absolute timestamp of the change point.
        index: Index within the analysed series.
        confidence: Bootstrap confidence of the mean shift.
        magnitude: ``|mean(after) - mean(before)|`` around the point.
        direction: +1 for an upward shift, -1 for downward.
    """

    time: int
    index: int
    confidence: float
    magnitude: float
    direction: int


def _cusum_peak(values: np.ndarray) -> tuple:
    """Location and range of the CUSUM peak of one segment."""
    deviations = values - values.mean()
    track = np.cumsum(deviations)
    peak_index = int(np.argmax(np.abs(track)))
    spread = float(track.max() - track.min())
    return peak_index, spread


def _bootstrap_confidence(
    values: np.ndarray, spread: float, bootstraps: int, rng: np.random.Generator
) -> float:
    """Fraction of value permutations with a smaller CUSUM spread.

    The permutations are drawn exactly as the reference implementation
    did — ``bootstraps`` sequential in-place shuffles of one work buffer,
    so the RNG stream (and therefore every detected change point) is
    unchanged — but the CUSUM spreads of all permutations are computed in
    one vectorized batch instead of a Python loop. This test dominates
    diagnosis latency (it runs per candidate split per metric), so the
    batching is worth ~5x end-to-end.
    """
    if spread == 0.0:
        return 0.0
    work = values.copy()
    permutations = np.empty((bootstraps, len(values)))
    for i in range(bootstraps):
        rng.shuffle(work)
        permutations[i] = work
    deviations = permutations - permutations.mean(axis=1, keepdims=True)
    tracks = np.cumsum(deviations, axis=1)
    spreads = tracks.max(axis=1) - tracks.min(axis=1)
    return int(np.count_nonzero(spreads < spread)) / bootstraps


def detect_change_points(
    series: TimeSeries,
    *,
    bootstraps: int = 120,
    confidence: float = 0.95,
    min_segment: int = 5,
    seed: object = 0,
) -> List[ChangePoint]:
    """Find change points via recursive CUSUM + bootstrap segmentation.

    Args:
        series: The (typically smoothed) series to segment.
        bootstraps: Permutations per significance test.
        confidence: Minimum bootstrap confidence to accept a change point.
        min_segment: Do not split segments shorter than this.
        seed: Label for the deterministic bootstrap stream.

    Returns:
        Accepted change points sorted by time.
    """
    rng = spawn_rng("cusum", seed)
    values = series.values
    found: List[ChangePoint] = []

    def split(lo: int, hi: int) -> None:
        segment = values[lo:hi]
        if len(segment) < 2 * min_segment:
            return
        peak, spread = _cusum_peak(segment)
        conf = _bootstrap_confidence(segment, spread, bootstraps, rng)
        if conf < confidence:
            return
        index = lo + peak
        if index - lo < min_segment or hi - index < min_segment:
            return
        before = values[lo:index]
        after = values[index:hi]
        magnitude = float(abs(after.mean() - before.mean()))
        direction = 1 if after.mean() >= before.mean() else -1
        found.append(
            ChangePoint(
                time=series.start + index,
                index=index,
                confidence=conf,
                magnitude=magnitude,
                direction=direction,
            )
        )
        split(lo, index)
        split(index, hi)

    split(0, len(values))
    found.sort(key=lambda cp: cp.time)
    return found
