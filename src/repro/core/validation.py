"""Online pinpointing validation via dynamic resource scaling.

Paper Sec. II-A / III-D: because FChain knows *which metrics* are abnormal
on each pinpointed component, it can scale the corresponding resource and
watch the application's SLO. If the SLO recovers, the pinpointing is
confirmed; if nothing improves, the component was a false alarm and is
removed. The paper performs the scaling live on the testbed (PREPARE-style
[20]); here the simulation is *forked* — a deep copy that diverges
independently — the scaling applied in the fork, and the SLO observed for
``validation_horizon`` simulated seconds.

As in the paper, validation improves precision only: it cannot recover
components that were never pinpointed (Sec. III-D).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.common.types import ComponentId, Metric
from repro.core.config import FChainConfig
from repro.core.pinpoint import PinpointResult
from repro.monitoring.slo import LatencySLO, ProgressSLO


@dataclass(frozen=True)
class ValidationOutcome:
    """Result of validating one pinpointed component.

    Attributes:
        component: The component whose resource was scaled.
        metric: The metric whose backing resource was scaled.
        baseline_badness: SLO badness with no intervention.
        scaled_badness: SLO badness after the scaling action.
        improvement: Relative improvement of the badness.
        confirmed: Whether the pinpointing survived validation.
    """

    component: ComponentId
    metric: Optional[Metric]
    baseline_badness: float
    scaled_badness: float
    improvement: float
    confirmed: bool


def _slo_badness(app, horizon: int) -> float:
    """How badly the app violates its SLO over the last ``horizon`` ticks.

    Latency SLOs: mean latency of the last ``horizon`` samples (capped so
    a fully stalled tier does not produce infinities). Progress SLOs: the
    negated progress gained over the horizon (less progress = worse).
    """
    slo = app.slo
    samples = np.asarray(slo.samples[-horizon:], dtype=float)
    if isinstance(slo, ProgressSLO):
        if len(samples) < 2:
            return 0.0
        return -(float(samples[-1]) - float(samples[0]))
    cap = 100.0 * getattr(slo, "threshold", 1.0)
    return float(np.mean(np.minimum(samples, cap))) if len(samples) else 0.0


def _badness_floor(app) -> float:
    """Scale floor so near-zero baselines do not inflate ratios."""
    slo = app.slo
    if isinstance(slo, LatencySLO):
        return slo.threshold
    if isinstance(slo, ProgressSLO):
        return max(slo.min_delta, 1e-9)
    return 1e-9


def validate_component(
    app,
    component: ComponentId,
    metric: Optional[Metric],
    config: FChainConfig,
    *,
    scale_factor: float = 4.0,
) -> ValidationOutcome:
    """Validate one pinpointed component by scaling its implicated resource.

    Args:
        app: The live application (forked internally, never mutated).
        component: The pinpointed component.
        metric: The implicated metric whose resource to scale (earliest
            abnormal metric); None falls back to CPU.
        config: FChain configuration (horizon, improvement threshold).
        scale_factor: Resource multiplier applied in the fork.

    Returns:
        The validation outcome.
    """
    horizon = config.validation_horizon
    baseline = copy.deepcopy(app)
    baseline.run(horizon)
    baseline_badness = _slo_badness(baseline, horizon)

    scaled = copy.deepcopy(app)
    scaled.scale_resource(component, metric or Metric.CPU_USAGE, scale_factor)
    scaled.run(horizon)
    scaled_badness = _slo_badness(scaled, horizon)

    floor = _badness_floor(app)
    denominator = max(abs(baseline_badness), floor)
    improvement = (baseline_badness - scaled_badness) / denominator
    return ValidationOutcome(
        component=component,
        metric=metric,
        baseline_badness=baseline_badness,
        scaled_badness=scaled_badness,
        improvement=improvement,
        confirmed=improvement >= config.validation_improvement,
    )


def validate_pinpointing(
    app,
    result: PinpointResult,
    config: FChainConfig,
    *,
    scale_factor: float = 4.0,
) -> Dict[ComponentId, ValidationOutcome]:
    """Validate every pinpointed component of a diagnosis.

    Uses leave-one-out joint scaling: all pinpointed components are scaled
    together (which clears the SLO when the pinpointing is right, even for
    concurrent multi-component faults), then each component's scaling is
    withheld in turn. A component is confirmed when withholding its
    scaling makes the SLO measurably worse — i.e. its resource genuinely
    participates in the anomaly. A false alarm's scaling changes nothing,
    so it is removed; true positives of concurrent faults all survive,
    matching the paper's observation that validation improves precision
    without affecting recall.

    Returns:
        Outcomes keyed by component. Use :func:`apply_validation` to
        filter the result.
    """
    components = sorted(result.faulty)
    metrics: Dict[ComponentId, List[Metric]] = {}
    for component in components:
        implicated = result.implicated_metrics(component)
        # CPU is always included: abnormal metrics are often symptoms
        # (queue-driven memory growth under a CPU cap), and growing the
        # instance is harmless when CPU was not the constraint.
        metrics[component] = _distinct_resources(
            implicated + [Metric.CPU_USAGE]
        )

    def run_with_scaling(excluded: Optional[ComponentId]) -> float:
        fork = copy.deepcopy(app)
        for component in components:
            if component == excluded:
                continue
            # Scale every resource the abnormal metrics implicate: the
            # earliest metric alone is often a *symptom* (queue-driven
            # memory growth under a CPU cap), and adjusting only it would
            # wrongly fail to clear the SLO.
            for metric in metrics[component]:
                fork.scale_resource(component, metric, scale_factor)
        fork.run(config.validation_horizon)
        return _slo_badness(fork, config.validation_horizon)

    badness_all = run_with_scaling(excluded=None)
    floor = _badness_floor(app)
    outcomes: Dict[ComponentId, ValidationOutcome] = {}
    for component in components:
        badness_without = run_with_scaling(excluded=component)
        denominator = max(abs(badness_without), floor)
        improvement = (badness_without - badness_all) / denominator
        outcomes[component] = ValidationOutcome(
            component=component,
            metric=metrics[component][0] if metrics[component] else None,
            baseline_badness=badness_without,
            scaled_badness=badness_all,
            improvement=improvement,
            confirmed=improvement >= config.validation_improvement,
        )
    return outcomes


def _distinct_resources(metrics: List[Metric]) -> List[Metric]:
    """Deduplicate implicated metrics by the resource they scale.

    CPU and network metrics both scale the instance's CPU; the two disk
    metrics both scale the host's disk bandwidth.
    """
    groups = {
        Metric.CPU_USAGE: "cpu",
        Metric.NETWORK_IN: "cpu",
        Metric.NETWORK_OUT: "cpu",
        Metric.MEMORY_USAGE: "memory",
        Metric.DISK_READ: "disk",
        Metric.DISK_WRITE: "disk",
    }
    seen = set()
    distinct: List[Metric] = []
    for metric in metrics:
        group = groups[metric]
        if group not in seen:
            seen.add(group)
            distinct.append(metric)
    return distinct or [Metric.CPU_USAGE]


def apply_validation(
    result: PinpointResult, outcomes: Dict[ComponentId, ValidationOutcome]
) -> PinpointResult:
    """Drop pinpointed components whose validation failed."""
    confirmed = frozenset(
        component
        for component in result.faulty
        if outcomes.get(component) is None or outcomes[component].confirmed
    )
    return PinpointResult(
        faulty=confirmed,
        external_factor=result.external_factor,
        chain=result.chain,
        reports=result.reports,
        skipped=result.skipped,
        trace=result.trace,
    )
