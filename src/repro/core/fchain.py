"""The FChain system facade: slaves, master, and a one-call API.

Mirrors the paper's architecture (Fig. 1): slave modules (normal
fluctuation modeling + abnormal change point selection) conceptually run in
Domain-0 of every cloud node; the master module (integrated fault
diagnosis + online pinpointing validation) runs on a dedicated server and
is invoked when a performance anomaly is detected. In this reproduction
the slaves analyse a shared :class:`~repro.monitoring.store.MetricStore`,
and "contacting the slaves" is a method call — the algorithms and the data
they see are identical to the distributed deployment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.common.errors import DiagnosisError
from repro.common.timeseries import TimeSeries
from repro.common.types import ComponentId, Metric
from repro.core.config import FChainConfig
from repro.core.pinpoint import PinpointResult, pinpoint_faulty_components
from repro.core.prediction import MarkovPredictor, prediction_errors
from repro.core.propagation import ComponentReport
from repro.core.selection import select_abnormal_changes
from repro.core.validation import (
    ValidationOutcome,
    apply_validation,
    validate_pinpointing,
)
from repro.monitoring.store import MetricStore


class FChainSlave:
    """Slave-side analysis for the components of one node.

    The slave owns the *normal fluctuation modeling* (online Markov
    predictors, fed continuously at 1 Hz via :meth:`observe`) and the
    *abnormal change point selection* that the master triggers with a
    look-back window after an SLO violation.
    """

    def __init__(self, config: Optional[FChainConfig] = None, seed: object = 0):
        self.config = config or FChainConfig()
        self.seed = seed
        self._models: Dict[Tuple[ComponentId, Metric], MarkovPredictor] = {}
        self._errors: Dict[Tuple[ComponentId, Metric], List[float]] = {}

    # ------------------------------------------------------------------
    # Continuous modeling (streaming interface)
    # ------------------------------------------------------------------
    def observe(self, component: ComponentId, metric: Metric, value: float) -> None:
        """Feed one 1 Hz sample into the online fluctuation model."""
        key = (component, metric)
        model = self._models.get(key)
        if model is None:
            model = MarkovPredictor(
                bins=self.config.markov_bins,
                halflife=self.config.markov_halflife,
            )
            self._models[key] = model
            self._errors[key] = []
        error = model.update(value)
        self._errors[key].append(np.nan if error is None else error)

    def model_for(
        self, component: ComponentId, metric: Metric
    ) -> Optional[MarkovPredictor]:
        """The online model of one metric, if any samples were observed."""
        return self._models.get((component, metric))

    # ------------------------------------------------------------------
    # On-demand abnormal change point selection
    # ------------------------------------------------------------------
    def analyze(
        self, store: MetricStore, component: ComponentId, violation_time: int
    ) -> ComponentReport:
        """Examine one component's look-back window before a violation.

        Args:
            store: Metric samples (only data up to ``violation_time`` is
                used — the diagnosis is online).
            component: The component to examine.
            violation_time: ``t_v``, the SLO violation tick.

        Returns:
            The component report with any selected abnormal changes.
        """
        window_start = violation_time - self.config.look_back_window
        window_end = violation_time + self.config.analysis_grace + 1
        changes = []
        for metric in store.metrics_for(component):
            full = store.series(component, metric).window(
                store.start, window_end
            )
            if len(full) < 2 * self.config.min_segment:
                continue
            errors = prediction_errors(
                full,
                bins=self.config.markov_bins,
                halflife=self.config.markov_halflife,
                signed=True,
            )
            raw = full.window(window_start, window_end)
            history = full.window(full.start, raw.start)
            split = raw.start - full.start
            changes.extend(
                select_abnormal_changes(
                    raw,
                    history,
                    metric,
                    self.config,
                    seed=(self.seed, component),
                    errors=errors[split:],
                    history_errors=errors[:split],
                )
            )
        return ComponentReport(component=component, abnormal_changes=changes)


class FChainMaster:
    """Master-side integrated fault diagnosis and validation."""

    def __init__(
        self,
        config: Optional[FChainConfig] = None,
        dependency_graph: Optional[nx.DiGraph] = None,
        seed: object = 0,
    ) -> None:
        self.config = config or FChainConfig()
        self.dependency_graph = dependency_graph
        self.seed = seed

    def diagnose(
        self, store: MetricStore, violation_time: int
    ) -> PinpointResult:
        """Pinpoint faulty components after an SLO violation at ``t_v``.

        Triggers the slave analysis for every monitored component, builds
        the propagation chain and runs integrated pinpointing against the
        (offline discovered) dependency graph.
        """
        if violation_time <= store.start:
            raise DiagnosisError("violation time precedes recorded history")
        slave = FChainSlave(self.config, seed=self.seed)
        reports = [
            slave.analyze(store, component, violation_time)
            for component in store.components
        ]
        return pinpoint_faulty_components(
            reports, self.config, self.dependency_graph
        )

    def validate(
        self, app, result: PinpointResult
    ) -> Tuple[PinpointResult, Dict[ComponentId, ValidationOutcome]]:
        """Run online pinpointing validation and filter false alarms."""
        outcomes = validate_pinpointing(app, result, self.config)
        return apply_validation(result, outcomes), outcomes


class FChain:
    """One-call facade over the FChain system.

    Example::

        fchain = FChain(FChainConfig(), dependency_graph=graph)
        result = fchain.localize(app.store, app.slo.first_violation)
        print(result.faulty)
    """

    def __init__(
        self,
        config: Optional[FChainConfig] = None,
        dependency_graph: Optional[nx.DiGraph] = None,
        seed: object = 0,
    ) -> None:
        self.config = config or FChainConfig()
        self.master = FChainMaster(self.config, dependency_graph, seed=seed)

    @property
    def dependency_graph(self) -> Optional[nx.DiGraph]:
        return self.master.dependency_graph

    def localize(
        self, store: MetricStore, violation_time: int
    ) -> PinpointResult:
        """Diagnose the faulty components for a detected SLO violation."""
        return self.master.diagnose(store, violation_time)

    def localize_and_validate(
        self, app, violation_time: int
    ) -> Tuple[PinpointResult, Dict[ComponentId, ValidationOutcome]]:
        """Diagnose, then validate the pinpointing online (FChain+VAL)."""
        result = self.master.diagnose(app.store, violation_time)
        return self.master.validate(app, result)
