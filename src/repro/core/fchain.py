"""The FChain system facade: slaves, master, and a one-call API.

Mirrors the paper's architecture (Fig. 1): slave modules (normal
fluctuation modeling + abnormal change point selection) conceptually run in
Domain-0 of every cloud node; the master module (integrated fault
diagnosis + online pinpointing validation) runs on a dedicated server and
is invoked when a performance anomaly is detected. In this reproduction
the slaves analyse a shared :class:`~repro.monitoring.store.MetricStore`,
and "contacting the slaves" is a method call — the algorithms and the data
they see are identical to the distributed deployment.

The slave is a *long-lived, stateful* object, exactly as in the paper:
``observe()`` / ``observe_many()`` keep the per-(component, metric)
Markov models and their rolling prediction-error streams warm at 1 Hz,
so ``analyze()`` at violation time only runs change-point selection on
the look-back window instead of replaying the full metric history
through fresh models. Expensive per-window CUSUM/bootstrap intermediates
are cached keyed by ``(component, metric, window)`` — the store is
append-only, so a window's samples never change and the cache is exact.
The replay path of the original implementation remains available via
``FChainMaster(..., incremental=False)`` and produces bit-identical
results (the equivalence is asserted by
``tests/core/test_incremental_engine.py``).
"""

from __future__ import annotations

import time
import weakref
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

from repro.common.errors import DiagnosisError
from repro.common.timeseries import TimeSeries
from repro.common.types import ComponentId, Metric
from repro.core.config import FChainConfig
from repro.core.diagnosis import Diagnosis
from repro.core.engine import SlavePool
from repro.core.pinpoint import PinpointResult, pinpoint_faulty_components
from repro.core.prediction import MarkovPredictor
from repro.core.propagation import ComponentReport
from repro.core.selection import (
    detect_window_change_points,
    select_abnormal_changes,
)
from repro.core.topology import (
    OnlineTopology,
    neighborhood_complete,
    rank_candidates,
)
from repro.core.validation import (
    ValidationOutcome,
    apply_validation,
    validate_pinpointing,
)
from repro.monitoring.quality import DEFAULT_POLICY, DataQualityReport
from repro.monitoring.store import MetricStore
from repro.obs.trace import (
    STAGE_COMPONENT,
    STAGE_DIAGNOSIS,
    STAGE_METRIC,
    STAGE_PINPOINT,
    STAGE_STORE_SYNC,
    STAGE_VALIDATION,
    make_tracer,
)

_Key = Tuple[ComponentId, Metric]

#: Entries kept per slave-side window cache (LRU eviction).
_CACHE_LIMIT = 512

#: Initial capacity of a prediction-error stream buffer.
_MIN_BUFFER_CAPACITY = 256


class _ErrorStream:
    """Append-only float64 buffer with amortized O(1) growth.

    Holds one metric's rolling *signed* prediction errors. Reads are
    zero-copy prefix views; because entries are append-only, a view taken
    for one diagnosis window stays valid while streaming continues.
    """

    __slots__ = ("_data", "length")

    def __init__(self) -> None:
        self._data = np.empty(_MIN_BUFFER_CAPACITY, dtype=float)
        self.length = 0

    def append(self, value: float) -> None:
        if self.length == len(self._data):
            grown = np.empty(2 * len(self._data), dtype=float)
            grown[: self.length] = self._data
            self._data = grown
        self._data[self.length] = value
        self.length += 1

    def extend(self, values: np.ndarray) -> None:
        """Append a whole chunk of errors with one vectorized copy."""
        needed = self.length + len(values)
        if needed > len(self._data):
            capacity = len(self._data)
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=float)
            grown[: self.length] = self._data[: self.length]
            self._data = grown
        self._data[self.length : needed] = values
        self.length = needed

    def view(self, count: Optional[int] = None) -> np.ndarray:
        """The first ``count`` errors (all of them when None), no copy."""
        return self._data[: self.length if count is None else count]


class FChainSlave:
    """Slave-side analysis for the components of one node.

    The slave owns the *normal fluctuation modeling* (online Markov
    predictors, fed continuously at 1 Hz via :meth:`observe` /
    :meth:`observe_many`) and the *abnormal change point selection* that
    the master triggers with a look-back window after an SLO violation.

    State is persistent across diagnoses: models, signed
    prediction-error streams and per-window CUSUM caches stay warm, so
    repeated ``analyze()`` calls cost O(look-back window), not O(recorded
    history). When ``analyze`` is handed a store the slave has not fully
    consumed, the missing samples are streamed in first — the slave and
    the batch replay therefore always see identical model state
    (``prediction_errors`` parity is covered by
    ``tests/core/test_streaming_slave.py``).
    """

    def __init__(self, config: Optional[FChainConfig] = None, seed: object = 0):
        self.config = (config or FChainConfig()).validate()
        self.seed = seed
        self.tracer = make_tracer(self.config.telemetry)
        self._models: Dict[_Key, MarkovPredictor] = {}
        self._streams: Dict[_Key, _ErrorStream] = {}
        self._consumed: Dict[_Key, int] = {}
        self._store_ref: Optional[weakref.ref] = None
        self._cusum_cache: "OrderedDict" = OrderedDict()
        self._selection_cache: "OrderedDict" = OrderedDict()

    # ------------------------------------------------------------------
    # Continuous modeling (streaming interface)
    # ------------------------------------------------------------------
    def observe(self, component: ComponentId, metric: Metric, value: float) -> None:
        """Feed one 1 Hz sample into the online fluctuation model."""
        self.observe_many(component, metric, (value,))

    def observe_many(
        self,
        component: ComponentId,
        metric: Metric,
        values: Iterable[float],
    ) -> None:
        """Feed a batch of consecutive 1 Hz samples for one metric.

        Bit-identical to calling :meth:`observe` per sample, but the
        whole chunk goes through one vectorized
        :meth:`~repro.core.prediction.MarkovPredictor.update_many` call —
        O(1) numpy calls per chunk instead of O(samples) Python calls.
        This is the path the engine uses to catch a slave up with a store
        and the one streaming collectors should prefer.

        NaN entries mark missing ticks (unfillable telemetry gaps): they
        produce NaN prediction errors, update no model state, and sever
        the Markov transition chain across the gap (see
        :meth:`~repro.core.prediction.MarkovPredictor.update_many_gapped`).
        An all-finite chunk takes the strict vectorized path unchanged.
        """
        key = (component, metric)
        model = self._models.get(key)
        if model is None:
            model = MarkovPredictor(
                bins=self.config.markov_bins,
                halflife=self.config.markov_halflife,
            )
            self._models[key] = model
            self._streams[key] = _ErrorStream()
        if isinstance(values, np.ndarray):
            chunk = values
        else:
            chunk = np.asarray(
                values if isinstance(values, (list, tuple)) else list(values),
                dtype=float,
            )
        errors = model.update_many_gapped(chunk)
        self._streams[key].extend(errors)
        self._consumed[key] = self._consumed.get(key, 0) + len(chunk)

    def observe_tick(
        self, component: ComponentId, samples: Mapping[Metric, float]
    ) -> None:
        """Feed one tick's samples for every metric of a component."""
        for metric, value in samples.items():
            self.observe_many(component, metric, (value,))

    def model_for(
        self, component: ComponentId, metric: Metric
    ) -> Optional[MarkovPredictor]:
        """The online model of one metric, if any samples were observed."""
        return self._models.get((component, metric))

    @property
    def _errors(self) -> Dict[_Key, np.ndarray]:
        """Unsigned prediction-error streams (diagnostic/back-compat view).

        The slave stores *signed* errors (``actual - predicted``; the
        selection stage needs the sign); this mirrors the historical
        unsigned view.
        """
        return {
            key: np.abs(stream.view())
            for key, stream in self._streams.items()
        }

    # ------------------------------------------------------------------
    # Store synchronization
    # ------------------------------------------------------------------
    def bind_store(self, store: MetricStore) -> None:
        """Associate the slave's streams with one metric store.

        The slave's cursors count samples of *one* 1 Hz stream. Re-binding
        to a different (or garbage-collected) store resets all state —
        stale models must never leak into another run's diagnosis. A
        slave that was fed purely via :meth:`observe` binds without a
        reset: by contract the observed stream is the one the store
        records.
        """
        if self._store_ref is not None:
            if self._store_ref() is store:
                return
            self.reset()
        self._store_ref = weakref.ref(store)

    def reset(self) -> None:
        """Drop all models, error streams, cursors and window caches."""
        self._models.clear()
        self._streams.clear()
        self._consumed.clear()
        self._cusum_cache.clear()
        self._selection_cache.clear()
        self._store_ref = None

    def sync_with_store(self, store: MetricStore, upto: int) -> None:
        """Stream every store sample before ``upto`` into the models.

        Incremental: only samples past each series' cursor are consumed,
        so the first call costs O(history) and subsequent calls cost
        O(new samples) — the amortization that keeps repeated diagnoses
        fast on long histories.
        """
        self.bind_store(store)
        needed = min(upto, store.end) - store.start
        if needed <= 0:
            return
        for component in store.components:
            self._sync_component(store, component, needed)

    def _sync_component(
        self, store: MetricStore, component: ComponentId, needed: int
    ) -> None:
        for metric in store.metrics_for(component):
            self._sync_series(store, component, metric, needed)

    def _sync_series(
        self,
        store: MetricStore,
        component: ComponentId,
        metric: Metric,
        needed: int,
    ) -> int:
        """Stream store slots ``[cursor, needed)`` of one series into the
        models; returns how many slots were consumed.

        The stream index must always equal the absolute store slot —
        that is what lets :meth:`analyze` slice error windows by slot
        even after the ring wrapped. Slots the ring evicted before this
        slave consumed them are therefore fed as NaN: the fluctuation
        model treats them like any other gap (severing the Markov
        chain), and the cursor keeps counting in store slots.
        """
        key = (component, metric)
        have = self._consumed.get(key, 0)
        if have >= needed:
            return 0
        series = store.series(component, metric)
        base = series.start - store.start
        stop = min(needed, base + len(series))
        if have >= stop:
            return 0
        synced = 0
        pad = min(base, stop) - have
        if pad > 0:
            self.observe_many(component, metric, np.full(pad, np.nan))
            have += pad
            synced += pad
        if have < stop:
            self.observe_many(
                component, metric, series.values[have - base : stop - base]
            )
            synced += stop - have
        return synced

    # ------------------------------------------------------------------
    # On-demand abnormal change point selection
    # ------------------------------------------------------------------
    def analyze(
        self, store: MetricStore, component: ComponentId, violation_time: int
    ) -> ComponentReport:
        """Examine one component's look-back window before a violation.

        Args:
            store: Metric samples (only data up to ``violation_time`` plus
                the configured grace is used — the diagnosis is online).
            component: The component to examine.
            violation_time: ``t_v``, the SLO violation tick.

        Returns:
            The component report with any selected abnormal changes. The
            report is marked ``skipped`` when no metric had enough
            recorded history to analyse, or when every metric with
            history fell below the data-quality coverage floor; the
            report's ``quality`` carries the per-component
            :class:`~repro.monitoring.quality.DataQualityReport`.
        """
        config = self.config
        window_start = violation_time - config.look_back_window
        window_end = violation_time + config.analysis_grace + 1
        self.bind_store(store)
        policy = getattr(store, "policy", None) or DEFAULT_POLICY
        revision = getattr(store, "revision", 0)
        tracer = self.tracer
        with tracer.span(STAGE_COMPONENT, component=component) as comp_span:
            # Catch the online models up with the store first — identical
            # to replaying the history through fresh models, but paid only
            # once per sample across all diagnoses. Model state is
            # per-(component, metric), so syncing every metric before any
            # selection is equivalent to the interleaved order.
            windows = []
            metrics_total = 0
            metrics_inconclusive = 0
            expected_total = observed_total = 0
            filled_total = missing_total = 0
            with comp_span.child(STAGE_STORE_SYNC) as sync_span:
                for metric in store.metrics_for(component):
                    full = store.series(component, metric).window(
                        store.start, window_end
                    )
                    if len(full) < 2 * config.min_segment:
                        continue
                    metrics_total += 1
                    base = full.start - store.start
                    synced = self._sync_series(
                        store, component, metric, base + len(full)
                    )
                    if synced:
                        sync_span.count("samples_synced", synced)
                    finite = np.isfinite(full.values)
                    raw_lo = max(window_start, full.start)
                    expected = max(0, min(window_end, store.end) - raw_lo)
                    span_lo = raw_lo - full.start
                    # Slots the ingest policy synthesized are finite in
                    # the array but are *not* observations: they must not
                    # count toward the coverage floor, or heavy loss
                    # hidden by an eager fill policy would escape gating.
                    synth = 0
                    if getattr(store, "policy", None) is not None:
                        slots = store.series_quality(
                            component, metric
                        ).gap_slots
                        if slots:
                            # Slot keys are absolute (from store.start);
                            # shift into the series' local index space,
                            # which starts later once the ring wrapped.
                            synth = sum(
                                1
                                for s, kind in slots.items()
                                if span_lo <= s - base < len(full)
                                and kind != "missing"
                            )
                    observed = int(finite[span_lo:].sum()) - synth
                    expected_total += expected
                    observed_total += observed
                    filled_total += synth
                    if (
                        synth == 0
                        and finite.all()
                        and len(full) - span_lo >= expected
                    ):
                        # Clean series: the strict, bit-identical path.
                        windows.append((metric, full))
                        continue
                    analysis, n_filled, analyzable = self._degraded_series(
                        full, finite, span_lo, expected, observed, policy
                    )
                    filled_total += n_filled
                    missing_total += max(
                        0, expected - observed - n_filled - synth
                    )
                    if analyzable:
                        windows.append((metric, analysis))
                    else:
                        metrics_inconclusive += 1
            changes = []
            for metric, full in windows:
                with comp_span.child(STAGE_METRIC, metric=metric) as metric_span:
                    offset = full.start - store.start
                    errors = self._streams[(component, metric)].view(
                        offset + len(full)
                    )[offset:]
                    raw = full.window(window_start, window_end)
                    history = full.window(full.start, raw.start)
                    split = raw.start - full.start
                    changes.extend(
                        self._select_cached(
                            component, metric, full, raw, history, errors,
                            split, revision, span=metric_span,
                        )
                    )
            comp_span.count("metrics_analyzed", len(windows))
            comp_span.count("abnormal_changes", len(changes))
        quality = DataQualityReport.build(
            component=component,
            samples_expected=expected_total,
            samples_observed=observed_total,
            samples_filled=filled_total,
            samples_missing=missing_total,
            samples_dropped=(
                store.quality_for(component).dropped
                if getattr(store, "policy", None) is not None
                else 0
            ),
            metrics_total=metrics_total,
            metrics_analyzed=len(windows),
            metrics_inconclusive=metrics_inconclusive,
        )
        skip_reason = None
        if not windows:
            if metrics_total == 0:
                skip_reason = "insufficient recorded history"
            else:
                skip_reason = (
                    f"telemetry coverage below the "
                    f"{policy.min_coverage:.0%} policy floor on all "
                    f"{metrics_total} metric(s)"
                )
        return ComponentReport(
            component=component,
            abnormal_changes=changes,
            skipped=not windows,
            skip_reason=skip_reason,
            quality=quality,
            trace=comp_span if tracer.enabled else None,
        )

    def _degraded_series(
        self,
        full: TimeSeries,
        finite: np.ndarray,
        span_lo: int,
        expected: int,
        observed: int,
        policy,
    ) -> Tuple[TimeSeries, int, bool]:
        """Repair, coverage-gate and clip a gap-afflicted series.

        Returns ``(series, filled_in_window, analyzable)``. The series is
        the bounded-fill repair of ``full``, clipped past any unfillable
        gap that lies before the look-back window (``span_lo``); it is
        only ``analyzable`` when the window's *observed* coverage meets
        the policy floor and no unfillable gap remains inside the window
        — a metric failing either test is inconclusive and must not vote,
        because selection on mostly-synthesized data risks a confident
        mis-ranking.
        """
        coverage = observed / expected if expected else 0.0
        repaired = full
        if policy.fill != "none" and not finite.all():
            repaired = full.filled(max_gap=policy.max_gap, method=policy.fill)
        n_filled = 0
        if repaired is not full:
            now_finite = np.isfinite(repaired.values)
            n_filled = int((now_finite & ~finite)[span_lo:].sum())
        else:
            now_finite = finite
        if coverage < policy.min_coverage:
            return repaired, n_filled, False
        bad = np.flatnonzero(~now_finite)
        if len(bad) == 0:
            return repaired, n_filled, True
        last_bad = int(bad[-1])
        if last_bad >= span_lo:
            # An unfillable gap inside the look-back window itself.
            return repaired, n_filled, False
        # The window is whole but the history has an unfillable hole:
        # clip the series to the contiguous finite suffix so CUSUM and
        # the history references see finite data only.
        clipped = repaired.window(full.start + last_bad + 1, repaired.end)
        if len(clipped) < 2 * self.config.min_segment:
            return repaired, n_filled, False
        return clipped, n_filled, True

    def _select_cached(
        self,
        component: ComponentId,
        metric: Metric,
        full: TimeSeries,
        raw: TimeSeries,
        history: TimeSeries,
        errors: np.ndarray,
        split: int,
        revision: int = 0,
        span=None,
    ) -> List:
        """Window-keyed memoization around the selection pipeline.

        Keys are ``(component, metric, window bounds, store revision)``;
        the store is append-only so equal bounds imply equal samples,
        equal error slices (online errors are causal) and therefore equal
        output — except when a late arrival backfilled a past slot in
        place, which bumps the store's ``revision`` and thereby invalidates
        every window cached before the repair. Two levels are kept: the
        CUSUM/bootstrap intermediates (the dominant cost) and the final
        selected changes, so the validation loop and repeated diagnoses
        of one violation skip the work entirely.
        """
        from repro.obs.trace import NULL_SPAN

        if span is None:
            span = NULL_SPAN
        cache_key = (component, metric, raw.start, raw.end, revision)
        cached = self._selection_cache.get(cache_key)
        if cached is not None:
            self._selection_cache.move_to_end(cache_key)
            span.count("selection_cache_hits", 1)
            return list(cached)

        detected = None
        if len(raw) >= 2 * self.config.min_segment:
            detected = self._cusum_cache.get(cache_key)
            if detected is None:
                detected = detect_window_change_points(
                    raw, metric, self.config, seed=(self.seed, component),
                    span=span,
                )
                self._cache_put(self._cusum_cache, cache_key, detected)
            else:
                self._cusum_cache.move_to_end(cache_key)
                span.count("cusum_cache_hits", 1)

        changes = select_abnormal_changes(
            raw,
            history,
            metric,
            self.config,
            seed=(self.seed, component),
            errors=errors[split:],
            history_errors=errors[:split],
            detected=detected,
            full_series=full,
            span=span,
        )
        self._cache_put(self._selection_cache, cache_key, changes)
        return list(changes)

    @staticmethod
    def _cache_put(cache: "OrderedDict", key, value) -> None:
        cache[key] = value
        if len(cache) > _CACHE_LIMIT:
            cache.popitem(last=False)


class FChainMaster:
    """Master-side integrated fault diagnosis and validation.

    By default the master owns one persistent incremental
    :class:`FChainSlave` whose warm state is reused across diagnoses of
    the same store, and fans per-component analyses out through a
    :class:`~repro.core.engine.SlavePool` when ``jobs >= 2``. Passing
    ``incremental=False`` restores the original replay engine — a fresh
    slave per ``diagnose`` call — which is retained as the equivalence
    baseline.
    """

    def __init__(
        self,
        config: Optional[FChainConfig] = None,
        dependency_graph: Optional[nx.DiGraph] = None,
        seed: object = 0,
        *,
        jobs: Optional[int] = None,
        slave_timeout: Optional[float] = None,
        incremental: bool = True,
        topology: Optional[OnlineTopology] = None,
    ) -> None:
        self.config = (config or FChainConfig()).validate()
        self.dependency_graph = dependency_graph
        self.topology = topology
        self.seed = seed
        self.jobs = jobs
        self.slave_timeout = slave_timeout
        self.incremental = incremental
        self.tracer = make_tracer(self.config.telemetry)
        self._slave: Optional[FChainSlave] = (
            FChainSlave(self.config, seed=seed) if incremental else None
        )
        self._pool: Optional[SlavePool] = None

    @property
    def slave(self) -> Optional[FChainSlave]:
        """The persistent incremental slave (None in replay mode)."""
        return self._slave

    def close(self) -> None:
        """Release pooled resources (cached worker processes)."""
        if self._pool is not None:
            self._pool.close()

    def _diagnosis_graph(self) -> Optional[nx.DiGraph]:
        """The dependency graph this diagnosis prunes against.

        A static (offline discovered) graph wins when both are given;
        otherwise the online topology's current weighted snapshot is
        taken — per diagnosis, because edge confidences keep moving.
        """
        if self.dependency_graph is not None:
            return self.dependency_graph
        if self.topology is not None:
            return self.topology.graph()
        return None

    def _scope(
        self, graph: Optional[nx.DiGraph], store: MetricStore, origin
    ) -> Optional[List[ComponentId]]:
        """The top-K neighborhood to analyse, or None for full fan-out."""
        config = self.config
        if (
            config.topology_mode != "neighborhood"
            or config.topology_top_k <= 0
            or origin is None
            or graph is None
        ):
            return None
        ranked = rank_candidates(graph, origin, store.components)
        scope = [
            c
            for c in ranked[: config.topology_top_k]
            if c in set(store.components)
        ]
        if not scope or len(scope) >= len(store.components):
            return None
        return scope

    @staticmethod
    def _must_widen(
        result: PinpointResult,
        graph: nx.DiGraph,
        analyzed: Iterable[ComponentId],
    ) -> bool:
        """Whether a scoped diagnosis could have missed the culprit.

        Escalate when the scoped analysis found nothing to blame (the
        anomaly's source may sit outside the neighborhood), when it
        inferred an external factor from a subset (that attribution
        requires *every* component abnormal, which a subset cannot
        establish), or when an abnormal component sits at the frontier —
        with an unanalysed graph neighbor its anomaly could have arrived
        from.
        """
        if result.external_factor:
            return True
        if not result.faulty:
            return True
        abnormal = [
            r.component for r in result.reports.values() if r.is_abnormal
        ]
        return not neighborhood_complete(graph, abnormal, analyzed)

    def diagnose(
        self,
        store: MetricStore,
        violation_time: int,
        *,
        origin: Optional[ComponentId] = None,
    ) -> PinpointResult:
        """Pinpoint faulty components after an SLO violation at ``t_v``.

        Triggers the slave analysis for every monitored component, builds
        the propagation chain and runs integrated pinpointing against the
        dependency graph (offline discovered, or the online topology's
        current weighted snapshot). Components no slave could analyse are
        surfaced in ``PinpointResult.skipped``.

        Args:
            origin: The component whose SLO signal violated (keyword
                only). In ``topology_mode="neighborhood"`` with a
                positive ``topology_top_k``, slaves are dispatched only
                for the top-K components by graph distance from the
                origin; the result is escalated to a full analysis
                whenever the scoped outcome cannot rule out a culprit
                outside the neighborhood (``PinpointResult.escalated``).
                Ignored in ``"full"`` mode — diagnoses are then
                bit-identical to prior releases.
        """
        if violation_time <= store.start:
            raise DiagnosisError("violation time precedes recorded history")
        slave = self._slave
        if slave is None:
            # Replay mode: a fresh slave (and pool) per diagnosis is the
            # whole point of the equivalence baseline.
            slave = FChainSlave(self.config, seed=self.seed)
            pool = SlavePool(slave, jobs=self.jobs, timeout=self.slave_timeout)
        else:
            if self._pool is None:
                # Cached across diagnoses so the process executor reuses
                # its warm worker processes instead of re-forking a pool
                # per violation.
                self._pool = SlavePool(
                    slave, jobs=self.jobs, timeout=self.slave_timeout
                )
            pool = self._pool
        graph = self._diagnosis_graph()
        scope = self._scope(graph, store, origin)
        trace = self.tracer.span(
            STAGE_DIAGNOSIS,
            executor=pool.executor,
            jobs=self.jobs or 1,
            violation_time=violation_time,
        )
        with trace:
            reports, _ = pool.analyze_all(
                store, violation_time, scope, span=trace
            )
            with trace.child(STAGE_PINPOINT) as pin_span:
                result = pinpoint_faulty_components(
                    reports, self.config, graph
                )
                escalated = False
                if scope is not None:
                    result.analyzed = frozenset(scope)
                    if self._must_widen(result, graph, scope):
                        # The scoped verdict cannot rule out a culprit
                        # beyond the frontier: widen to the full
                        # component set rather than silently miss it.
                        rest = [
                            c
                            for c in store.components
                            if c not in result.analyzed
                        ]
                        more, _ = pool.analyze_all(
                            store, violation_time, rest, span=trace
                        )
                        merged = {r.component: r for r in reports}
                        merged.update({r.component: r for r in more})
                        reports = [
                            merged[c]
                            for c in store.components
                            if c in merged
                        ]
                        result = pinpoint_faulty_components(
                            reports, self.config, graph
                        )
                        result.analyzed = frozenset(store.components)
                        escalated = True
                result.escalated = escalated
                pin_span.count("components_reported", len(reports))
                pin_span.count(
                    "abnormal_components",
                    sum(1 for r in reports if r.is_abnormal),
                )
                pin_span.count("chain_length", len(result.chain.links))
                pin_span.count("faulty_pinpointed", len(result.faulty))
                if scope is not None:
                    pin_span.count("components_scoped", len(scope))
                    pin_span.count("escalated", int(escalated))
        if self.tracer.enabled:
            self.tracer.observe(trace)
            result.trace = trace
        return result

    def validate(
        self, app, result: PinpointResult
    ) -> Tuple[PinpointResult, Dict[ComponentId, ValidationOutcome]]:
        """Run online pinpointing validation and filter false alarms."""
        outcomes = validate_pinpointing(app, result, self.config)
        return apply_validation(result, outcomes), outcomes


class FChain:
    """One-call facade over the FChain system.

    Example::

        fchain = FChain(FChainConfig(), dependency_graph=graph)
        diagnosis = fchain.localize(
            app.store, violation_time=app.slo.first_violation
        )
        print(diagnosis.faulty)

    Args:
        config: FChain configuration (validated on construction).
        dependency_graph: Offline-discovered dependency graph, or None.
        seed: Deterministic seed label for stochastic steps.
        jobs: Slave fan-out width (``>= 2`` analyses components in
            parallel; default serial).
        slave_timeout: Optional per-slave analysis timeout in seconds
            (parallel mode only); timed-out components are ``skipped``.
        incremental: Keep slave state warm across diagnoses (default).
            ``False`` restores the original replay-per-diagnosis engine.
        topology: Online learned :class:`~repro.core.topology.OnlineTopology`
            whose weighted snapshot replaces ``dependency_graph`` when the
            latter is None, and which powers neighborhood-scoped dispatch
            in ``topology_mode="neighborhood"``.
    """

    def __init__(
        self,
        config: Optional[FChainConfig] = None,
        dependency_graph: Optional[nx.DiGraph] = None,
        seed: object = 0,
        *,
        jobs: Optional[int] = None,
        slave_timeout: Optional[float] = None,
        incremental: bool = True,
        topology: Optional[OnlineTopology] = None,
    ) -> None:
        self.config = (config or FChainConfig()).validate()
        self.master = FChainMaster(
            self.config,
            dependency_graph,
            seed=seed,
            jobs=jobs,
            slave_timeout=slave_timeout,
            incremental=incremental,
            topology=topology,
        )

    @property
    def dependency_graph(self) -> Optional[nx.DiGraph]:
        return self.master.dependency_graph

    @property
    def topology(self) -> Optional[OnlineTopology]:
        return self.master.topology

    def close(self) -> None:
        """Release pooled resources (cached worker processes)."""
        self.master.close()

    def __enter__(self) -> "FChain":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Streaming feed-through
    # ------------------------------------------------------------------
    def observe(self, component: ComponentId, metric: Metric, value: float) -> None:
        """Feed one 1 Hz sample into the persistent slave's models."""
        self._require_slave().observe(component, metric, value)

    def observe_many(
        self, component: ComponentId, metric: Metric, values: Iterable[float]
    ) -> None:
        """Feed a batch of consecutive samples into the slave's models."""
        self._require_slave().observe_many(component, metric, values)

    def _require_slave(self) -> FChainSlave:
        slave = self.master.slave
        if slave is None:
            raise DiagnosisError(
                "streaming observation requires the incremental engine "
                "(construct FChain with incremental=True)"
            )
        return slave

    # ------------------------------------------------------------------
    # Localization API
    # ------------------------------------------------------------------
    def localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        validate_with=None,
        origin: Optional[ComponentId] = None,
    ) -> Diagnosis:
        """Diagnose the faulty components for a detected SLO violation.

        Args:
            store: Recorded metric samples of the run.
            violation_time: ``t_v`` — when the SLO violation was detected
                (keyword-only).
            validate_with: Optional live application; when given, online
                pinpointing validation runs and the returned diagnosis
                carries the validated result plus per-component outcomes.
            origin: Optional SLO-violating component; enables
                neighborhood-scoped slave dispatch in
                ``topology_mode="neighborhood"`` (see
                :meth:`FChainMaster.diagnose`).

        Returns:
            A :class:`~repro.core.diagnosis.Diagnosis`.
        """
        started = time.perf_counter()
        result = self.master.diagnose(store, violation_time, origin=origin)
        outcomes: Optional[Dict[ComponentId, ValidationOutcome]] = None
        unvalidated: Optional[PinpointResult] = None
        if validate_with is not None:
            unvalidated = result
            trace = result.trace
            if trace is not None:
                with trace.child(STAGE_VALIDATION) as validation_span:
                    result, outcomes = self.master.validate(
                        validate_with, result
                    )
                    validation_span.count("validated_components", len(outcomes))
                    validation_span.count(
                        "false_alarms_removed",
                        sum(1 for o in outcomes.values() if not o.confirmed),
                    )
                # The diagnosis root was already aggregated; fold the
                # post-hoc validation span in on its own.
                self.master.tracer.observe(validation_span)
            else:
                result, outcomes = self.master.validate(validate_with, result)
        return Diagnosis(
            result=result,
            violation_time=violation_time,
            outcomes=outcomes,
            unvalidated=unvalidated,
            latency_seconds=time.perf_counter() - started,
            trace=result.trace,
        )
