"""Black-box inter-component dependency discovery from packet traces.

Implements the Sherlock-style approach the paper leverages (ref. [11]):

1. **Flow extraction** — per directed edge, packets are grouped into flows
   separated by idle gaps. Request/reply traffic yields many short flows;
   a continuous data stream yields one endless flow — which is precisely
   why the paper observes that this class of techniques *fails on stream
   processing systems* ("the stream application processes continuous data
   packets, which do not contain gaps between network packets").
2. **Edge acceptance** — an edge with enough distinct flows is a service
   communication edge ``A -> B`` (A depends on B as its backend).
3. **Chain correlation** — for accepted edges, the co-occurrence delay
   between flow starts on ``* -> A`` and ``A -> B`` is estimated, both as
   a sanity signal and to prune edges whose traffic is uncorrelated noise.

The discovery is run *offline* on a profiling trace and the resulting
graph is stored for diagnosis time, exactly as the paper does (Sec. II-C,
footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.cloud.network import PacketTrace


@dataclass(frozen=True)
class Flow:
    """One extracted flow on a directed edge."""

    src: str
    dst: str
    start: float
    end: float
    packets: int


def extract_flows(
    events: Sequence[Tuple[float, int]],
    src: str,
    dst: str,
    gap_threshold: float = 0.1,
) -> List[Flow]:
    """Group one edge's packets into flows.

    Packets sharing a transport flow identity (ephemeral port) belong to
    one flow, further split at idle gaps (a pooled connection reused for
    separate requests). A persistent streaming connection carries a single
    flow identity with no idle gaps, so the whole edge collapses into one
    flow — the degenerate case the paper observes on System S.

    Args:
        events: ``(time, flow_id)`` pairs sorted by time.
        src: Edge source (recorded into the flows).
        dst: Edge destination.
        gap_threshold: Idle seconds that split a reused flow identity
            (100 ms default — far larger than intra-request packet
            spacing, far smaller than inter-request gaps).

    Returns:
        Flows sorted by start time.
    """
    if len(events) == 0:
        return []
    by_flow: Dict[int, List[float]] = {}
    for time, flow_id in events:
        by_flow.setdefault(flow_id, []).append(time)

    flows: List[Flow] = []
    for times in by_flow.values():
        times.sort()
        start = times[0]
        previous = times[0]
        count = 1
        for t in times[1:]:
            if t - previous > gap_threshold:
                flows.append(
                    Flow(src, dst, float(start), float(previous), count)
                )
                start = t
                count = 0
            count += 1
            previous = t
        flows.append(Flow(src, dst, float(start), float(previous), count))
    flows.sort(key=lambda f: f.start)
    return flows


def _co_occurrence(
    upstream_starts: np.ndarray, downstream_starts: np.ndarray, delay: float
) -> float:
    """Fraction of downstream flows starting within ``delay`` of an
    upstream flow start."""
    if len(downstream_starts) == 0 or len(upstream_starts) == 0:
        return 0.0
    idx = np.searchsorted(upstream_starts, downstream_starts, side="right") - 1
    valid = idx >= 0
    gaps = downstream_starts - upstream_starts[np.maximum(idx, 0)]
    hits = int(np.count_nonzero(valid & (gaps <= delay)))
    return hits / len(downstream_starts)


@dataclass
class DiscoveryResult:
    """Outcome of black-box dependency discovery.

    Attributes:
        graph: Directed dependency graph in request-flow direction
            (``A -> B``: A sends requests to / depends on B). External
            clients are excluded.
        flow_counts: Flows extracted per observed edge (diagnostics).
        discovered: False when no dependencies could be extracted at all —
            the stream-processing failure mode.
    """

    graph: nx.DiGraph
    flow_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def discovered(self) -> bool:
        return self.graph.number_of_edges() > 0


def discover_dependencies(
    trace: PacketTrace,
    *,
    gap_threshold: float = 0.1,
    min_flows: int = 20,
    co_occurrence_delay: float = 0.05,
    min_co_occurrence: float = 0.3,
    external_nodes: Tuple[str, ...] = ("client",),
) -> DiscoveryResult:
    """Discover the inter-component dependency graph from a packet trace.

    Args:
        trace: Profiling-run packet trace.
        gap_threshold: Flow-splitting idle gap (seconds).
        min_flows: Minimum distinct flows for an edge to count as a
            request/reply communication edge. A continuous stream yields a
            single flow per edge and is rejected — reproducing the paper's
            observed failure on System S.
        co_occurrence_delay: Window for upstream/downstream flow-start
            correlation.
        min_co_occurrence: Required correlation for edges that have
            upstream traffic (edges from origin services are kept as is).
        external_nodes: Node names treated as external clients; their
            edges inform correlation but are not part of the graph.

    Returns:
        The discovery result.
    """
    flows_by_edge: Dict[Tuple[str, str], List[Flow]] = {}
    for src, dst in trace.edges():
        events = trace.edge_events(src, dst)
        flows_by_edge[(src, dst)] = extract_flows(
            events, src, dst, gap_threshold
        )

    starts_into: Dict[str, List[float]] = {}
    for (src, dst), flows in flows_by_edge.items():
        starts_into.setdefault(dst, []).extend(f.start for f in flows)

    graph = nx.DiGraph()
    flow_counts: Dict[Tuple[str, str], int] = {}
    for (src, dst), flows in flows_by_edge.items():
        flow_counts[(src, dst)] = len(flows)
        if src in external_nodes or dst in external_nodes:
            continue
        if len(flows) < min_flows:
            continue  # gap-free or rare traffic: not a discoverable edge
        upstream = np.asarray(sorted(starts_into.get(src, [])))
        downstream = np.asarray(sorted(f.start for f in flows))
        if len(upstream):
            score = _co_occurrence(upstream, downstream, co_occurrence_delay)
            if score < min_co_occurrence:
                continue
        graph.add_edge(src, dst)
    return DiscoveryResult(graph=graph, flow_counts=flow_counts)


def save_graph(graph: nx.DiGraph, path) -> None:
    """Persist a discovered dependency graph to a JSON file.

    The paper performs discovery offline and stores the result in a file
    for later reference (Sec. II-C footnote 3); this is that file format.
    Edges carrying a ``weight`` attribute (an online-learned confidence,
    see :mod:`repro.core.topology`) are written as ``[src, dst, weight]``
    triples; unweighted edges stay ``[src, dst]`` pairs, so files written
    by older versions round-trip unchanged.
    """
    import json
    import pathlib

    edges = []
    for src, dst in sorted(graph.edges):
        weight = graph.edges[src, dst].get("weight")
        if weight is None:
            edges.append([src, dst])
        else:
            edges.append([src, dst, float(weight)])
    payload = {
        "nodes": sorted(graph.nodes),
        "edges": edges,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_graph(path) -> nx.DiGraph:
    """Load a dependency graph stored by :func:`save_graph`.

    Accepts both the legacy ``[src, dst]`` edge entries and the weighted
    ``[src, dst, weight]`` extension.
    """
    import json
    import pathlib

    payload = json.loads(pathlib.Path(path).read_text())
    graph = nx.DiGraph()
    graph.add_nodes_from(payload["nodes"])
    for entry in payload["edges"]:
        if len(entry) >= 3:
            graph.add_edge(entry[0], entry[1], weight=float(entry[2]))
        else:
            graph.add_edge(entry[0], entry[1])
    return graph


def propagation_path_exists(
    graph: nx.DiGraph, source: str, target: str
) -> bool:
    """Whether an anomaly could propagate from ``source`` to ``target``.

    Propagation travels along request flow (a faulty backend starves or
    floods its downstream data consumers) or against it (back-pressure
    stalls upstream callers), but not in a zig-zag mixture: formally, a
    directed path must exist in the graph or in its reverse. In the
    paper's Fig. 5, app-server-1 ⇝ app-server-2 has neither, so that
    propagation is spurious; db ⇝ web has a reverse path (back-pressure)
    and is accepted.
    """
    if source == target:
        return True
    if source not in graph or target not in graph:
        return False
    return nx.has_path(graph, source, target) or nx.has_path(
        graph, target, source
    )


def _edge_cost(u, v, data) -> float:
    """Dijkstra edge cost: ``-log(weight)`` so path cost sums compose
    multiplicatively into a path confidence. Unweighted edges count as
    fully confident (cost 0); a zero weight is clamped to stay finite."""
    import math

    weight = data.get("weight", 1.0)
    return -math.log(min(max(float(weight), 1e-12), 1.0))


def _best_path_confidence(graph: nx.DiGraph, source: str, target: str) -> float:
    import math

    try:
        cost = nx.shortest_path_length(
            graph, source, target, weight=_edge_cost
        )
    except nx.NetworkXNoPath:
        return 0.0
    return math.exp(-cost)


def propagation_path_confidence(
    graph: nx.DiGraph, source: str, target: str
) -> float:
    """Confidence that an anomaly could propagate ``source`` ⇝ ``target``.

    The weighted refinement of :func:`propagation_path_exists`: each
    edge carries a learned confidence in ``[0, 1]`` (its ``weight``
    attribute, default 1.0 for offline-discovered edges), a path's
    confidence is the product of its edge confidences, and the result is
    the best such product over all consistently directed paths — forward
    (request flow) or reverse (back-pressure). Returns 0.0 when no path
    exists in either direction, and 1.0 when ``source == target``. On an
    unweighted graph this degenerates exactly to
    ``propagation_path_exists``: 1.0 where a path exists, 0.0 where not.
    """
    if source == target:
        return 1.0
    if source not in graph or target not in graph:
        return 0.0
    forward = _best_path_confidence(graph, source, target)
    backward = _best_path_confidence(graph, target, source)
    return max(forward, backward)
