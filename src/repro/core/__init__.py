"""The FChain core: the paper's contribution.

Pipeline (paper Sec. II):

1. :mod:`repro.core.prediction` — online Markov-chain models learn each
   metric's normal fluctuation pattern (PRESS-style).
2. :mod:`repro.core.cusum` / :mod:`repro.core.smoothing` /
   :mod:`repro.core.outliers` — CUSUM + bootstrap change point detection on
   smoothed series, magnitude-outlier filtering (the PAL steps).
3. :mod:`repro.core.burst` — FFT burst extraction yields a per-change-point
   *expected prediction error*; :mod:`repro.core.selection` keeps only
   change points whose actual prediction error exceeds it, and rolls back
   tangents to find the true onset.
4. :mod:`repro.core.propagation` / :mod:`repro.core.pinpoint` — onset-sorted
   propagation chains, concurrency classification, dependency-based
   filtering of spurious propagations, external-factor detection.
5. :mod:`repro.core.validation` — online pinpointing validation by scaling
   the implicated resource and watching the SLO.
6. :mod:`repro.core.fchain` — the FChainSlave/FChainMaster facade.
"""

from repro.core.config import FChainConfig
from repro.core.diagnosis import Diagnosis
from repro.core.engine import SlavePool
from repro.core.fchain import FChain, FChainMaster, FChainSlave
from repro.core.pinpoint import PinpointResult

__all__ = [
    "Diagnosis",
    "FChain",
    "FChainConfig",
    "FChainMaster",
    "FChainSlave",
    "PinpointResult",
    "SlavePool",
]
