"""Parallel slave fan-out for the incremental diagnosis engine.

The paper's slaves live on separate nodes and analyse their components
concurrently; the master merely collects their reports. In this
reproduction every slave analysis is a method call on shared in-process
state, so :class:`SlavePool` restores the paper's concurrency: it fans
per-component ``analyze()`` calls out across a
:mod:`concurrent.futures` thread pool while keeping the master's view
deterministic — reports always come back in component order, no matter
which worker finished first.

Thread safety relies on two properties of :class:`~repro.core.fchain.FChainSlave`:

* the shared online-model state is warmed *serially* (one
  ``sync_with_store`` pass) before the fan-out, so workers only read it;
* per-component analysis touches only that component's
  ``(component, metric)`` cache keys, so concurrent workers never write
  the same entry.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import ComponentId
from repro.core.propagation import ComponentReport
from repro.monitoring.store import MetricStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.fchain import FChainSlave


class SlavePool:
    """Fan per-component slave analyses out across a thread pool.

    Args:
        slave: The (stateful, incremental) slave whose ``analyze`` is
            fanned out. Its warm model state is shared by all workers.
        jobs: Worker threads. ``None``, 0 or 1 analyse serially on the
            calling thread (the default — fully deterministic and free of
            pool overhead); ``>= 2`` enables the concurrent fan-out.
        timeout: Optional per-slave timeout in seconds. A slave that has
            not produced its report within the timeout (counted from when
            the master starts waiting on it; earlier waits overlap later
            slaves' compute) is abandoned and its component reported as
            ``skipped`` — diagnosis latency stays bounded even if one
            component's analysis wedges.
    """

    def __init__(
        self,
        slave: "FChainSlave",
        *,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ConfigurationError("jobs must be >= 0 (0/1 mean serial)")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive seconds")
        slave.config.validate()
        self.slave = slave
        self.jobs = jobs
        self.timeout = timeout

    # ------------------------------------------------------------------
    def analyze_all(
        self,
        store: MetricStore,
        violation_time: int,
        components: Optional[Sequence[ComponentId]] = None,
    ) -> Tuple[List[ComponentReport], FrozenSet[ComponentId]]:
        """Analyse every component's look-back window before ``t_v``.

        Returns:
            ``(reports, timed_out)`` — one report per component in sorted
            component order (timed-out components get an empty, skipped
            report), plus the set of components that hit the timeout.
        """
        ordered = (
            sorted(components) if components is not None else store.components
        )
        if self.jobs is None or self.jobs <= 1 or len(ordered) <= 1:
            return self._analyze_serial(store, violation_time, ordered)
        return self._analyze_parallel(store, violation_time, ordered)

    def _analyze_serial(
        self,
        store: MetricStore,
        violation_time: int,
        ordered: Sequence[ComponentId],
    ) -> Tuple[List[ComponentReport], FrozenSet[ComponentId]]:
        reports = [
            self.slave.analyze(store, component, violation_time)
            for component in ordered
        ]
        return reports, frozenset()

    def _analyze_parallel(
        self,
        store: MetricStore,
        violation_time: int,
        ordered: Sequence[ComponentId],
    ) -> Tuple[List[ComponentReport], FrozenSet[ComponentId]]:
        # Warm the shared online models serially so the concurrent
        # analyses only read slave state (see module docstring).
        horizon = violation_time + self.slave.config.analysis_grace + 1
        self.slave.sync_with_store(store, horizon)

        reports: List[ComponentReport] = []
        timed_out = set()
        executor = ThreadPoolExecutor(
            max_workers=min(self.jobs, len(ordered)),
            thread_name_prefix="fchain-slave",
        )
        try:
            futures = [
                executor.submit(
                    self.slave.analyze, store, component, violation_time
                )
                for component in ordered
            ]
            for component, future in zip(ordered, futures):
                try:
                    reports.append(future.result(timeout=self.timeout))
                except FutureTimeoutError:
                    future.cancel()
                    timed_out.add(component)
                    reports.append(
                        ComponentReport(component=component, skipped=True)
                    )
        finally:
            # Never block the master on an abandoned worker: queued
            # futures are cancelled, running ones finish in the
            # background without being waited for.
            executor.shutdown(wait=not timed_out, cancel_futures=True)
        return reports, frozenset(timed_out)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Translate a user-facing ``--jobs`` value to a worker count.

    ``None``/0/1 mean serial; negative values are rejected by
    :class:`SlavePool`. Exposed for CLI help text consistency.
    """
    return 1 if jobs is None or jobs <= 1 else int(jobs)


__all__ = ["SlavePool", "resolve_jobs"]
