"""Parallel slave fan-out for the incremental diagnosis engine.

The paper's slaves live on separate nodes and analyse their components
concurrently; the master merely collects their reports. In this
reproduction every slave analysis is a method call on shared in-process
state, so :class:`SlavePool` restores the paper's concurrency: it fans
per-component ``analyze()`` calls out across a
:mod:`concurrent.futures` pool while keeping the master's view
deterministic — reports always come back in component order, no matter
which worker finished first.

Two executors are available (``FChainConfig.executor`` or the pool's
``executor`` argument):

* ``"thread"`` (default) shares the warm slave state across a thread
  pool. Thread safety relies on two properties of
  :class:`~repro.core.fchain.FChainSlave`: the shared online-model state
  is warmed *serially* (one ``sync_with_store`` pass) before the
  fan-out, so workers only read it; and per-component analysis touches
  only that component's ``(component, metric)`` cache keys, so
  concurrent workers never write the same entry.
* ``"process"`` escapes the GIL for the Python-heavy parts of selection:
  the store is exported once into a ``multiprocessing.shared_memory``
  segment (:mod:`repro.monitoring.shared`) and worker processes attach
  zero-copy views of it. Each worker replays the history it needs into a
  fresh slave; :meth:`~repro.core.prediction.MarkovPredictor.update_many`
  chunk invariance makes that replay bit-identical to the master's warm
  slave, so both executors produce identical reports (asserted by
  ``tests/core/test_process_executor.py``).
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import ComponentId
from repro.core.propagation import ComponentReport
from repro.monitoring.shared import SharedStoreExport, SharedStoreHandle, attach_store
from repro.monitoring.store import MetricStore
from repro.obs.trace import NULL_SPAN, STAGE_STORE_SYNC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.fchain import FChainSlave


#: Per-worker-process cache: shared segment name -> (attached store, slave).
#: One diagnosis uses one segment, so the cache is cleared whenever a new
#: segment shows up — worker memory stays bounded by one store view.
_WORKER_STATE: Dict[str, tuple] = {}


def fork_available() -> bool:
    """Whether the ``fork`` multiprocessing start method exists here.

    The process executor requires fork: workers must inherit the
    imported modules and attach the shared-memory store in a few
    milliseconds, which ``spawn`` cannot do. POSIX platforms have it;
    Windows (and some sandboxed runtimes) do not.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def _process_analyze(
    handle: SharedStoreHandle,
    config,
    seed: object,
    component: ComponentId,
    violation_time: int,
) -> ComponentReport:
    """Analyse one component inside a pool worker.

    Module-level so it pickles by reference under any start method. The
    attached store and a fresh slave are cached per shared segment: every
    component the worker handles for one diagnosis reuses one attachment
    and one progressively warmed slave. The fresh slave replays exactly
    the samples ``analyze`` needs, which ``update_many`` chunk invariance
    makes bit-identical to the thread executor's long-lived warm slave.
    """
    state = _WORKER_STATE.get(handle.shm_name)
    if state is None:
        from repro.core.fchain import FChainSlave  # local: import cycle

        _WORKER_STATE.clear()
        state = (attach_store(handle), FChainSlave(config, seed=seed))
        _WORKER_STATE[handle.shm_name] = state
    store, slave = state
    return slave.analyze(store, component, violation_time)


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Finalizer target: reap a pool whose owner was garbage-collected."""
    pool.shutdown(wait=False, cancel_futures=True)


class SlavePool:
    """Fan per-component slave analyses out across a worker pool.

    Args:
        slave: The (stateful, incremental) slave whose ``analyze`` is
            fanned out. In thread mode its warm model state is shared by
            all workers; in process mode its config/seed parameterize the
            per-worker slaves.
        jobs: Worker count. ``None``, 0 or 1 analyse serially on the
            calling thread (the default — fully deterministic and free of
            pool overhead); ``>= 2`` enables the concurrent fan-out.
        timeout: Optional per-slave timeout in seconds. A slave that has
            not produced its report within the timeout (counted from when
            the master starts waiting on it; earlier waits overlap later
            slaves' compute) is abandoned; after the configured retries
            are exhausted its component is reported as ``skipped`` with a
            timeout ``skip_reason`` — diagnosis latency stays bounded
            even if one component's analysis wedges.
        retries: How many extra waves a timed-out analysis is re-submitted
            before giving up (``None`` takes the slave config's
            ``slave_retries``, default 0 — the historical skip-immediately
            behaviour). Retries target transient wedges: a descheduled
            worker thread, a cold or poisoned process pool.
        retry_backoff: Seconds slept before the first retry wave, doubling
            each wave (``None`` takes the config's ``slave_retry_backoff``).
        executor: ``"thread"`` or ``"process"`` (see module docstring);
            ``None`` takes the slave config's ``executor`` field. Both
            modes produce identical reports, ordering and ``skipped``
            semantics. The process pool is kept alive across
            ``analyze_all`` calls; call :meth:`close` (or let the pool be
            garbage-collected) to reap the workers.
    """

    def __init__(
        self,
        slave: "FChainSlave",
        *,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        executor: Optional[str] = None,
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ConfigurationError("jobs must be >= 0 (0/1 mean serial)")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive seconds")
        if retries is not None and retries < 0:
            raise ConfigurationError("retries must be >= 0 attempts")
        if retry_backoff is not None and retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be >= 0 seconds")
        slave.config.validate()
        if executor is None:
            executor = slave.config.executor
        if executor not in ("thread", "process"):
            raise ConfigurationError(
                f"executor={executor!r} is not supported: choose 'thread' "
                "or 'process'"
            )
        if executor == "process" and not fork_available():
            warnings.warn(
                "executor='process' needs the 'fork' multiprocessing "
                "start method, which this platform does not provide "
                f"(available: {multiprocessing.get_all_start_methods()}); "
                "falling back to the thread executor",
                RuntimeWarning,
                stacklevel=2,
            )
            executor = "thread"
        self.slave = slave
        self.jobs = jobs
        self.timeout = timeout
        self.retries = (
            slave.config.slave_retries if retries is None else retries
        )
        self.retry_backoff = (
            slave.config.slave_retry_backoff
            if retry_backoff is None
            else retry_backoff
        )
        self.executor = executor
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    def analyze_all(
        self,
        store: MetricStore,
        violation_time: int,
        components: Optional[Sequence[ComponentId]] = None,
        *,
        span=NULL_SPAN,
    ) -> Tuple[List[ComponentReport], FrozenSet[ComponentId]]:
        """Analyse every component's look-back window before ``t_v``.

        Args:
            span: Optional parent telemetry span (the diagnosis root).
                Master-side data preparation (warm sync / shared-memory
                export) is timed under it and every worker's finished
                component span tree is adopted into it — both executors
                merge back into one diagnosis trace.

        Returns:
            ``(reports, timed_out)`` — one report per component in sorted
            component order (timed-out components get an empty, skipped
            report), plus the set of components that hit the timeout.
        """
        ordered = (
            sorted(components) if components is not None else store.components
        )
        if self.jobs is None or self.jobs <= 1 or len(ordered) <= 1:
            reports, timed_out = self._analyze_serial(
                store, violation_time, ordered
            )
        elif self.executor == "process":
            reports, timed_out = self._analyze_process(
                store, violation_time, ordered, span=span
            )
        else:
            reports, timed_out = self._analyze_parallel(
                store, violation_time, ordered, span=span
            )
        for report in reports:
            if report.trace is not None:
                span.adopt(report.trace)
        return reports, timed_out

    def _analyze_serial(
        self,
        store: MetricStore,
        violation_time: int,
        ordered: Sequence[ComponentId],
    ) -> Tuple[List[ComponentReport], FrozenSet[ComponentId]]:
        reports = [
            self.slave.analyze(store, component, violation_time)
            for component in ordered
        ]
        return reports, frozenset()

    def _analyze_parallel(
        self,
        store: MetricStore,
        violation_time: int,
        ordered: Sequence[ComponentId],
        *,
        span=NULL_SPAN,
    ) -> Tuple[List[ComponentReport], FrozenSet[ComponentId]]:
        # Warm the shared online models serially so the concurrent
        # analyses only read slave state (see module docstring).
        horizon = violation_time + self.slave.config.analysis_grace + 1
        with span.child(STAGE_STORE_SYNC, scope="warm") as sync_span:
            self.slave.sync_with_store(store, horizon)
            sync_span.count("components_warmed", len(store.components))

        results: Dict[ComponentId, ComponentReport] = {}
        pending: Sequence[ComponentId] = ordered
        attempts = 0
        while True:
            attempts += 1
            wave_timed_out: List[ComponentId] = []
            executor = ThreadPoolExecutor(
                max_workers=min(self.jobs, len(pending)),
                thread_name_prefix="fchain-slave",
            )
            try:
                futures = [
                    executor.submit(
                        self.slave.analyze, store, component, violation_time
                    )
                    for component in pending
                ]
                for component, future in zip(pending, futures):
                    try:
                        results[component] = future.result(
                            timeout=self.timeout
                        )
                    except FutureTimeoutError:
                        future.cancel()
                        wave_timed_out.append(component)
            finally:
                # Never block the master on an abandoned worker: queued
                # futures are cancelled, running ones finish in the
                # background without being waited for. (An abandoned
                # analyze only reads the serially pre-warmed model state,
                # so a retry racing it is safe.)
                executor.shutdown(
                    wait=not wave_timed_out, cancel_futures=True
                )
            if not wave_timed_out or attempts > self.retries:
                break
            time.sleep(self.retry_backoff * 2 ** (attempts - 1))
            pending = wave_timed_out
        timed_out = frozenset(wave_timed_out)
        self._skip_timed_out(results, timed_out, attempts)
        return [results[component] for component in ordered], timed_out

    def _analyze_process(
        self,
        store: MetricStore,
        violation_time: int,
        ordered: Sequence[ComponentId],
        *,
        span=NULL_SPAN,
    ) -> Tuple[List[ComponentReport], FrozenSet[ComponentId]]:
        with span.child(STAGE_STORE_SYNC, scope="export") as export_span:
            export = SharedStoreExport(store)
            export_span.count("components_exported", len(store.components))
        results: Dict[ComponentId, ComponentReport] = {}
        pending: Sequence[ComponentId] = ordered
        attempts = 0
        try:
            while True:
                attempts += 1
                wave_timed_out: List[ComponentId] = []
                executor = self._process_pool(len(pending))
                try:
                    futures = [
                        executor.submit(
                            _process_analyze,
                            export.handle,
                            self.slave.config,
                            self.slave.seed,
                            component,
                            violation_time,
                        )
                        for component in pending
                    ]
                    for component, future in zip(pending, futures):
                        try:
                            results[component] = future.result(
                                timeout=self.timeout
                            )
                        except FutureTimeoutError:
                            future.cancel()
                            wave_timed_out.append(component)
                finally:
                    if wave_timed_out:
                        # A wedged worker must never poison a later
                        # diagnosis (or retry wave): drop the whole pool
                        # without waiting on it — the next wave forks a
                        # fresh one.
                        self._discard_process_pool(wait=False)
                if not wave_timed_out or attempts > self.retries:
                    break
                time.sleep(self.retry_backoff * 2 ** (attempts - 1))
                pending = wave_timed_out
        finally:
            # Unlinking only removes the segment's name; workers that
            # already attached (including abandoned ones) keep reading
            # valid memory until their own mappings go away.
            export.close()
        timed_out = frozenset(wave_timed_out)
        self._skip_timed_out(results, timed_out, attempts)
        return [results[component] for component in ordered], timed_out

    def _skip_timed_out(
        self,
        results: Dict[ComponentId, ComponentReport],
        timed_out: FrozenSet[ComponentId],
        attempts: int,
    ) -> None:
        """Fill skipped placeholder reports for exhausted components."""
        for component in timed_out:
            results[component] = ComponentReport(
                component=component,
                skipped=True,
                skip_reason=(
                    f"analysis timed out after {attempts} attempt(s) "
                    f"({self.timeout:g}s timeout each)"
                ),
            )

    # ------------------------------------------------------------------
    # Process-pool lifecycle
    # ------------------------------------------------------------------
    def _process_pool(self, wanted: int) -> ProcessPoolExecutor:
        """The cached worker-process pool, (re)created on demand."""
        workers = min(self.jobs, wanted)
        if self._pool is not None and self._pool_workers < workers:
            self._discard_process_pool(wait=True)
        if self._pool is None:
            if not fork_available():  # pragma: no cover - non-POSIX
                raise ConfigurationError(
                    "the process executor requires the 'fork' start "
                    "method; SlavePool should have fallen back to "
                    "executor='thread' at construction"
                )
            # Fork keeps worker start-up at a few ms and inherits the
            # imported modules.
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            )
            self._pool_workers = workers
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def _discard_process_pool(self, wait: bool) -> None:
        if self._pool is None:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._pool.shutdown(wait=wait, cancel_futures=True)
        self._pool = None
        self._pool_workers = 0

    def close(self) -> None:
        """Reap any cached worker processes (idempotent)."""
        self._discard_process_pool(wait=True)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Translate a user-facing ``--jobs`` value to a worker count.

    ``None``/0/1 mean serial; negative values are rejected by
    :class:`SlavePool`. Exposed for CLI help text consistency.
    """
    return 1 if jobs is None or jobs <= 1 else int(jobs)


__all__ = ["SlavePool", "resolve_jobs"]
