"""FChain configuration.

All tunables from the paper with their published defaults (Sec. III-A):
look-back window ``W = 100 s`` (500 s for slowly manifesting faults),
concurrency threshold 2 s, burst window ``Q = 20 s``, top-90 % frequencies,
90th-percentile burst magnitude, tangent-rollback similarity 0.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class FChainConfig:
    """Tunable parameters of the FChain pipeline.

    Attributes:
        look_back_window: ``W`` — seconds of history before the SLO
            violation each slave examines (paper default 100; 500 for the
            Hadoop DiskHog).
        concurrency_threshold: Seconds within which two components'
            abnormal onsets count as one concurrent fault (paper: 2).
        burst_window: ``Q`` — half-width in seconds of the series window
            around a change point used for FFT burst extraction (paper: 20).
        high_frequency_fraction: Fraction of the frequency spectrum treated
            as "high" when synthesizing the burst signal (paper: top 90 %).
        burst_percentile: Percentile of the burst-signal magnitude used as
            the expected prediction error (paper: 90th).
        tangent_tolerance: Maximum tangent difference below which rollback
            continues to the preceding change point (paper: 0.1), relative
            to the local value scale.
        smoothing_window: Moving-average width applied before change point
            detection (the PAL smoothing step).
        cusum_bootstraps: Permutations per CUSUM bootstrap significance
            test.
        cusum_confidence: Required bootstrap confidence for a change point.
        min_segment: Minimum segment length for recursive CUSUM splitting.
        outlier_zscore: Magnitude z-score above which a change point is an
            outlier candidate.
        prediction_error_margin: The actual prediction error must exceed
            ``margin *`` the burst-derived expected error for a change
            point to be selected as abnormal (guards against borderline
            passes on noisy metrics).
        history_error_percentile: Percentile of the online model's own
            prediction errors over the training history used as an
            additional expected-error reference: an error pattern the
            model already produced routinely under normal operation (e.g.
            at recurring flash bursts) is not abnormal.
        censor_slow_onsets: Clamp the onset to the window start when the
            series is already trending there (the manifestation began
            before the look-back window). This refinement aligns
            concurrent slow faults; disabling it reproduces the vanilla
            pipeline of the paper, whose Table I shows the resulting
            look-back-window sensitivity for the Hadoop DiskHog.
        analysis_grace: Seconds of post-violation data the slaves may use.
            The master contacts the slaves after detection, so by analysis
            time a few seconds beyond ``t_v`` have been recorded; this
            keeps change points landing exactly at the window edge
            detectable.
        markov_bins: Number of value bins in the Markov prediction model.
        markov_halflife: Updates after which old transition counts decay to
            half weight (online learning forgetting rate).
        slave_retries: How many times a :class:`~repro.core.engine.SlavePool`
            re-submits a slave analysis that hit its timeout before the
            component is surfaced as ``skipped`` (default 0 — a timeout
            skips immediately, the historical behaviour). Retries guard
            against transient wedges (a descheduled worker, a cold
            process pool), not systematic overload.
        slave_retry_backoff: Seconds slept before the first retry wave;
            doubles per wave (exponential backoff).
        executor: How a :class:`~repro.core.engine.SlavePool` fans
            per-component analyses out when ``jobs >= 2``: ``"thread"``
            (default — shares the warm slave state, cheap to start, but
            the numpy-light parts of selection contend on the GIL) or
            ``"process"`` (worker processes read the metric history
            through a ``multiprocessing.shared_memory`` view, escaping
            the GIL without copying the store; results are identical).
        telemetry: Pipeline observability level (``repro.obs``):
            ``"off"`` (default — instrumentation collapses onto a no-op
            singleton, near-zero overhead), ``"timings"`` (nested stage
            spans with wall times only) or ``"full"`` (spans plus
            per-stage counters and component/metric tags). When enabled,
            every ``Diagnosis`` carries a ``trace`` and finished traces
            aggregate into the default metrics registry for Prometheus
            export.
        service_cooldown: Online service loop (``repro.service``): minimum
            ticks between two diagnosis triggers. Within the window a
            sustained (or re-flapping) violation is deduplicated into the
            incident already dispatched, so one incident produces one
            diagnosis rather than one per tick.
        service_queue_depth: Online service loop: how many triggered
            incidents may wait behind an in-flight diagnosis. Ingest
            never blocks on diagnosis — when the queue is full, further
            triggers are shed with a counted drop
            (``fchain_dispatch_dropped_total``).
        external_trend_fraction: Fraction of components that must share a
            common monotone trend (with every component abnormal, and the
            majority-trend onsets tightly clustered) for the anomaly to be
            attributed to an external factor.
        validation_horizon: Seconds of forked simulation used to observe a
            scaling action during online validation (paper: ~30 s).
        validation_improvement: Relative SLO improvement required for a
            pinpointed component to survive validation.
        topology_mode: How diagnosis picks which components the slaves
            analyse: ``"full"`` (default — every monitored component, the
            paper's behaviour and bit-identical to all prior releases) or
            ``"neighborhood"`` (rank components by dependency-graph
            distance from the SLO-violating origin and analyse only the
            top-K; escalates to a full analysis whenever the scoped
            result could have missed the culprit, so nothing is silently
            dropped).
        topology_top_k: Size of the analysed neighborhood in
            ``"neighborhood"`` mode, counting the origin itself. ``0``
            (default) disables scoping even in neighborhood mode —
            equivalent to analysing everything.
        topology_min_path_confidence: Weighted-pruning threshold in
            ``[0, 1]``: a suspicious component's anomaly counts as
            explained by propagation only when the best dependency path
            to a pinpointed component has confidence (product of learned
            edge weights) at least this value. ``0.0`` (default)
            reproduces the unweighted path-existence test exactly.
    """

    look_back_window: int = 100
    concurrency_threshold: float = 2.0
    burst_window: int = 20
    high_frequency_fraction: float = 0.9
    burst_percentile: float = 90.0
    tangent_tolerance: float = 0.1
    smoothing_window: int = 5
    cusum_bootstraps: int = 120
    cusum_confidence: float = 0.95
    min_segment: int = 5
    outlier_zscore: float = 2.0
    prediction_error_margin: float = 1.2
    history_error_percentile: float = 99.7
    analysis_grace: int = 8
    censor_slow_onsets: bool = True
    markov_bins: int = 40
    markov_halflife: int = 2000
    slave_retries: int = 0
    slave_retry_backoff: float = 0.1
    executor: str = "thread"
    telemetry: str = "off"
    service_cooldown: int = 60
    service_queue_depth: int = 4
    external_trend_fraction: float = 0.75
    validation_horizon: int = 30
    validation_improvement: float = 0.3
    topology_mode: str = "full"
    topology_top_k: int = 0
    topology_min_path_confidence: float = 0.0

    def __post_init__(self) -> None:
        if self.look_back_window <= 0:
            raise ConfigurationError("look_back_window must be positive")
        if self.concurrency_threshold < 0:
            raise ConfigurationError("concurrency_threshold must be >= 0")
        if self.burst_window <= 1:
            raise ConfigurationError("burst_window must exceed 1")
        if not 0 < self.high_frequency_fraction <= 1:
            raise ConfigurationError("high_frequency_fraction must be in (0, 1]")
        if not 0 < self.burst_percentile <= 100:
            raise ConfigurationError("burst_percentile must be in (0, 100]")
        if self.smoothing_window < 1:
            raise ConfigurationError("smoothing_window must be >= 1")
        if self.markov_bins < 2:
            raise ConfigurationError("markov_bins must be >= 2")
        if not 0 < self.cusum_confidence < 1:
            raise ConfigurationError("cusum_confidence must be in (0, 1)")
        if self.executor not in ("thread", "process"):
            raise ConfigurationError(
                f"executor={self.executor!r} is not supported: choose "
                "'thread' (shared warm slave state) or 'process' "
                "(shared-memory store view, escapes the GIL)"
            )
        if self.topology_mode not in ("full", "neighborhood"):
            raise ConfigurationError(
                f"topology_mode={self.topology_mode!r} is not supported: "
                "choose 'full' (analyse every component) or "
                "'neighborhood' (scope analysis to the top-K components "
                "by dependency-graph distance from the violation origin)"
            )
        if self.topology_top_k < 0:
            raise ConfigurationError(
                f"topology_top_k={self.topology_top_k} must be >= 0 "
                "(0 disables neighborhood scoping)"
            )
        if not 0.0 <= self.topology_min_path_confidence <= 1.0:
            raise ConfigurationError(
                f"topology_min_path_confidence="
                f"{self.topology_min_path_confidence} must be in [0, 1]: "
                "it is compared against products of edge confidences"
            )
        if self.telemetry not in ("off", "timings", "full"):
            raise ConfigurationError(
                f"telemetry={self.telemetry!r} is not supported: choose "
                "'off' (no tracing), 'timings' (stage spans with wall "
                "times) or 'full' (spans plus counters and tags)"
            )

    def validate(self) -> "FChainConfig":
        """Reject cross-field settings that make diagnosis nonsensical.

        :meth:`__post_init__` guards individual fields; this adds the
        cross-field constraints the diagnosis engines depend on and is
        called from every engine constructor (``FChainSlave``,
        ``FChainMaster``, ``FChain``, ``SlavePool``). Returns ``self`` so
        constructors can write ``self.config = (config or FChainConfig()).validate()``.

        Raises:
            ConfigurationError: With an actionable message naming the
                offending fields.
        """
        if self.min_segment < 2:
            raise ConfigurationError(
                f"min_segment={self.min_segment} is too small: recursive "
                "CUSUM segmentation needs segments of at least 2 samples"
            )
        if self.look_back_window <= 2 * self.min_segment:
            raise ConfigurationError(
                f"look_back_window={self.look_back_window} must exceed "
                f"2 * min_segment={2 * self.min_segment}: shorter windows "
                "can never contain a detectable change point (raise "
                "look_back_window or lower min_segment)"
            )
        if self.burst_window <= 0:
            raise ConfigurationError(
                f"burst_window={self.burst_window} must be positive: FFT "
                "burst extraction needs a non-empty window around each "
                "change point"
            )
        if self.concurrency_threshold < 0:
            raise ConfigurationError(
                f"concurrency_threshold={self.concurrency_threshold} must "
                "be >= 0: it is a time distance between abnormal onsets"
            )
        if self.analysis_grace < 0:
            raise ConfigurationError(
                f"analysis_grace={self.analysis_grace} must be >= 0: the "
                "slaves cannot analyse data recorded before the violation "
                "window"
            )
        if self.cusum_bootstraps < 1:
            raise ConfigurationError(
                f"cusum_bootstraps={self.cusum_bootstraps} must be >= 1: "
                "the bootstrap significance test needs at least one "
                "permutation"
            )
        if self.markov_halflife < 1:
            raise ConfigurationError(
                f"markov_halflife={self.markov_halflife} must be >= 1: it "
                "is a decay period measured in model updates"
            )
        if self.slave_retries < 0:
            raise ConfigurationError(
                f"slave_retries={self.slave_retries} must be >= 0: it "
                "counts extra analysis attempts after a slave timeout"
            )
        if self.slave_retry_backoff < 0:
            raise ConfigurationError(
                f"slave_retry_backoff={self.slave_retry_backoff} must be "
                ">= 0 seconds: it is the sleep before the first retry wave"
            )
        if self.service_cooldown < 0:
            raise ConfigurationError(
                f"service_cooldown={self.service_cooldown} must be >= 0 "
                "ticks: it is the dedup window between diagnosis triggers"
            )
        if self.service_queue_depth < 1:
            raise ConfigurationError(
                f"service_queue_depth={self.service_queue_depth} must be "
                ">= 1: the dispatch queue needs room for at least one "
                "waiting incident (excess triggers are shed, not queued)"
            )
        if self.validation_horizon <= 0:
            raise ConfigurationError(
                f"validation_horizon={self.validation_horizon} must be "
                "positive: online validation needs forward simulation time"
            )
        return self

    def with_window(self, look_back_window: int) -> "FChainConfig":
        """Copy of this config with a different look-back window."""
        from dataclasses import replace

        return replace(self, look_back_window=look_back_window)
