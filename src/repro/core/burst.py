"""FFT burst extraction and the dynamic prediction-error threshold.

Paper Sec. II-B: a fixed prediction-error threshold cannot serve both
smooth and bursty metrics. FChain therefore derives a per-change-point
*expected prediction error* from the burstiness of the surrounding series:

1. take the window ``X = x_{t-Q} .. x_{t+Q}`` around the change point;
2. FFT; treat the top ``k`` (default 90 %) of the frequency spectrum as
   high frequencies;
3. inverse-FFT only those components to synthesize the *burst signal*;
4. use a high percentile (default 90th) of the burst magnitude as the
   expected prediction error.

A bursty neighbourhood has a large burst signal, so a correspondingly
large prediction error is "expected" there and does not indicate a fault.

The selection pipeline computes thresholds for *all* surviving change
points of a metric in one batched call (:func:`expected_prediction_errors`):
windows are grouped by their exact clipped length and each group runs one
stacked ``rfft``/``irfft`` instead of one FFT pair per change point. The
per-point path delegates to the batched one, so both are identical by
construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.timeseries import TimeSeries


def burst_signal(
    values: np.ndarray, high_frequency_fraction: float = 0.9
) -> np.ndarray:
    """Synthesize the high-frequency burst component of a window.

    Args:
        values: Window samples (length >= 4 for a meaningful spectrum;
            must be finite — a single NaN would otherwise poison the
            whole spectrum and silently disable the threshold).
        high_frequency_fraction: Fraction of the (non-DC) spectrum, taken
            from the top, treated as high frequency.

    Returns:
        The burst signal, same length as ``values``.

    Raises:
        ValueError: If any sample is NaN or infinite.
    """
    values = np.asarray(values, dtype=float)
    if not np.isfinite(values).all():
        raise ValueError(
            "burst_signal requires finite samples: a NaN/inf in the window "
            "would zero out the dynamic threshold instead of raising"
        )
    n = len(values)
    if n < 4:
        return np.zeros(n)
    spectrum = np.fft.rfft(values - values.mean())
    mask = _high_frequency_mask(len(spectrum), high_frequency_fraction)
    return np.fft.irfft(np.where(mask, spectrum, 0.0), n=n)


def _high_frequency_mask(
    spectrum_bins: int, high_frequency_fraction: float
) -> np.ndarray:
    """Boolean mask selecting the top fraction of non-DC frequencies."""
    n_freqs = spectrum_bins - 1  # excluding DC
    keep = int(round(high_frequency_fraction * n_freqs))
    cutoff = spectrum_bins - keep
    mask = np.zeros(spectrum_bins, dtype=bool)
    mask[max(1, cutoff):] = True
    return mask


def expected_prediction_errors(
    series: TimeSeries,
    times: Sequence[int],
    *,
    burst_window: int = 20,
    high_frequency_fraction: float = 0.9,
    percentile: float = 90.0,
    floor_fraction: float = 0.02,
) -> np.ndarray:
    """Expected prediction error at each of several change points.

    The batched equivalent of :func:`expected_prediction_error`: the
    ``±burst_window`` windows are grouped by their exact clipped length
    (no padding — padding would change each window's spectrum) and every
    group is processed with one stacked ``rfft``/``irfft`` call plus
    axis-wise percentile/mean reductions. Each entry is bit-identical to
    the per-point computation.

    Args:
        series: The raw metric series.
        times: Change-point timestamps.
        burst_window: ``Q`` from the paper (seconds).
        high_frequency_fraction: Top fraction of frequencies in the burst.
        percentile: Burst-magnitude percentile used as the threshold.
        floor_fraction: Lower bound expressed as a fraction of the local
            mean level, so noiseless metrics do not get a zero threshold.

    Returns:
        One expected prediction error (>= 0) per entry of ``times``;
        timestamps whose window clips empty get 0.0.
    """
    results = np.zeros(len(times))
    for indices, windows in series.stacked_around(times, burst_window):
        length = windows.shape[1]
        if not np.isfinite(windows).all():
            raise ValueError(
                "expected_prediction_errors requires finite samples: a "
                "NaN/inf in a burst window would zero out the dynamic "
                "threshold instead of raising"
            )
        if length < 4:
            thresholds = np.zeros(len(indices))
        else:
            centered = windows - windows.mean(axis=1, keepdims=True)
            spectrum = np.fft.rfft(centered, axis=1)
            mask = _high_frequency_mask(
                spectrum.shape[1], high_frequency_fraction
            )
            bursts = np.fft.irfft(
                np.where(mask[np.newaxis, :], spectrum, 0.0), n=length, axis=1
            )
            thresholds = np.percentile(np.abs(bursts), percentile, axis=1)
        floors = floor_fraction * np.mean(np.abs(windows), axis=1)
        results[indices] = np.maximum(thresholds, floors)
    return results


def expected_prediction_error(
    series: TimeSeries,
    time: int,
    *,
    burst_window: int = 20,
    high_frequency_fraction: float = 0.9,
    percentile: float = 90.0,
    floor_fraction: float = 0.02,
) -> float:
    """Expected prediction error at a change point (Fig. 4).

    Args:
        series: The raw metric series.
        time: Change-point timestamp; the window ``±burst_window`` around
            it is analysed (clipped at the series bounds).
        burst_window: ``Q`` from the paper (seconds).
        high_frequency_fraction: Top fraction of frequencies in the burst.
        percentile: Burst-magnitude percentile used as the threshold.
        floor_fraction: Lower bound expressed as a fraction of the local
            mean level, so noiseless metrics do not get a zero threshold.

    Returns:
        The expected prediction error (>= 0).
    """
    return float(
        expected_prediction_errors(
            series,
            (time,),
            burst_window=burst_window,
            high_frequency_fraction=high_frequency_fraction,
            percentile=percentile,
            floor_fraction=floor_fraction,
        )[0]
    )


def expected_error_profile(
    series: TimeSeries,
    *,
    burst_window: int = 20,
    high_frequency_fraction: float = 0.9,
    percentile: float = 90.0,
) -> np.ndarray:
    """Expected prediction error at every sample (used to draw Fig. 4)."""
    return expected_prediction_errors(
        series,
        series.times,
        burst_window=burst_window,
        high_frequency_fraction=high_frequency_fraction,
        percentile=percentile,
    )
