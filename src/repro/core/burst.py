"""FFT burst extraction and the dynamic prediction-error threshold.

Paper Sec. II-B: a fixed prediction-error threshold cannot serve both
smooth and bursty metrics. FChain therefore derives a per-change-point
*expected prediction error* from the burstiness of the surrounding series:

1. take the window ``X = x_{t-Q} .. x_{t+Q}`` around the change point;
2. FFT; treat the top ``k`` (default 90 %) of the frequency spectrum as
   high frequencies;
3. inverse-FFT only those components to synthesize the *burst signal*;
4. use a high percentile (default 90th) of the burst magnitude as the
   expected prediction error.

A bursty neighbourhood has a large burst signal, so a correspondingly
large prediction error is "expected" there and does not indicate a fault.
"""

from __future__ import annotations

import numpy as np

from repro.common.timeseries import TimeSeries


def burst_signal(
    values: np.ndarray, high_frequency_fraction: float = 0.9
) -> np.ndarray:
    """Synthesize the high-frequency burst component of a window.

    Args:
        values: Window samples (length >= 4 for a meaningful spectrum).
        high_frequency_fraction: Fraction of the (non-DC) spectrum, taken
            from the top, treated as high frequency.

    Returns:
        The burst signal, same length as ``values``.
    """
    values = np.asarray(values, dtype=float)
    n = len(values)
    if n < 4:
        return np.zeros(n)
    spectrum = np.fft.rfft(values - values.mean())
    n_freqs = len(spectrum) - 1  # excluding DC
    keep = int(round(high_frequency_fraction * n_freqs))
    cutoff = len(spectrum) - keep
    mask = np.zeros(len(spectrum), dtype=bool)
    mask[max(1, cutoff):] = True
    return np.fft.irfft(np.where(mask, spectrum, 0.0), n=n)


def expected_prediction_error(
    series: TimeSeries,
    time: int,
    *,
    burst_window: int = 20,
    high_frequency_fraction: float = 0.9,
    percentile: float = 90.0,
    floor_fraction: float = 0.02,
) -> float:
    """Expected prediction error at a change point (Fig. 4).

    Args:
        series: The raw metric series.
        time: Change-point timestamp; the window ``±burst_window`` around
            it is analysed (clipped at the series bounds).
        burst_window: ``Q`` from the paper (seconds).
        high_frequency_fraction: Top fraction of frequencies in the burst.
        percentile: Burst-magnitude percentile used as the threshold.
        floor_fraction: Lower bound expressed as a fraction of the local
            mean level, so noiseless metrics do not get a zero threshold.

    Returns:
        The expected prediction error (>= 0).
    """
    window = series.around(time, burst_window)
    burst = burst_signal(window.values, high_frequency_fraction)
    if len(burst) == 0:
        return 0.0
    threshold = float(np.percentile(np.abs(burst), percentile))
    level_floor = floor_fraction * float(np.mean(np.abs(window.values)))
    return max(threshold, level_floor)


def expected_error_profile(
    series: TimeSeries,
    *,
    burst_window: int = 20,
    high_frequency_fraction: float = 0.9,
    percentile: float = 90.0,
) -> np.ndarray:
    """Expected prediction error at every sample (used to draw Fig. 4)."""
    return np.array(
        [
            expected_prediction_error(
                series,
                t,
                burst_window=burst_window,
                high_frequency_fraction=high_frequency_fraction,
                percentile=percentile,
            )
            for t in series.times
        ]
    )
