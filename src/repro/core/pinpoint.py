"""Integrated faulty-component pinpointing (paper Sec. II-C).

Three steps:

1. derive the abnormal change propagation chain by sorting onset times;
2. pinpoint the chain source; later components whose onsets fall within
   the concurrency threshold of a pinpointed component are concurrent
   faults;
3. for the remaining suspicious components, use the inter-component
   dependency graph to decide whether their anomaly is explained by
   propagation from a pinpointed component — if no (consistently
   directed) dependency path exists, the propagation is spurious and the
   component carries an independent fault.

Additionally, when *every* component is abnormal with a common monotone
trend, the anomaly is attributed to an external factor (workload surge,
shared-service problem) and nothing inside the application is blamed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

import networkx as nx

from repro.common.types import ComponentId, Metric
from repro.core.config import FChainConfig
from repro.core.dependency import (
    propagation_path_confidence,
    propagation_path_exists,
)
from repro.core.propagation import ComponentReport, PropagationChain, build_chain


@dataclass
class PinpointResult:
    """Outcome of integrated fault diagnosis.

    Attributes:
        faulty: Pinpointed faulty components (empty when nothing is
            abnormal or an external factor is inferred).
        external_factor: True when the anomaly was attributed to an
            external cause (workload change / shared service).
        chain: The abnormal change propagation chain that was analysed.
        reports: Per-component slave reports (all components, including
            normal ones).
        skipped: Components the slaves could not examine — typically
            because no metric had enough recorded history, or a slave
            timed out. They are neither faulty nor known-normal.
        trace: The diagnosis-wide telemetry span tree (worker spans
            merged back in), or None when telemetry is off. Excluded
            from equality.
        analyzed: Components the slaves actually examined for this
            result, or None when diagnosis ran unscoped (the default
            full fan-out). Set by the master in topology-guided
            neighborhood mode; excluded from equality.
        escalated: True when a neighborhood-scoped diagnosis had to
            widen to the full component set because the scoped result
            could not rule out a culprit outside the neighborhood.
            Excluded from equality.
    """

    faulty: FrozenSet[ComponentId]
    external_factor: bool
    chain: PropagationChain
    reports: Dict[ComponentId, ComponentReport] = field(default_factory=dict)
    skipped: FrozenSet[ComponentId] = frozenset()
    trace: Optional[object] = field(default=None, compare=False, repr=False)
    analyzed: Optional[FrozenSet[ComponentId]] = field(
        default=None, compare=False
    )
    escalated: bool = field(default=False, compare=False)

    def implicated_metrics(self, component: ComponentId) -> List[Metric]:
        """Abnormal metrics of a pinpointed component (for validation)."""
        report = self.reports.get(component)
        return report.implicated_metrics if report else []

    @property
    def skipped_reasons(self) -> Dict[ComponentId, str]:
        """Why each skipped component could not be examined."""
        reasons: Dict[ComponentId, str] = {}
        for component in self.skipped:
            report = self.reports.get(component)
            reason = getattr(report, "skip_reason", None) if report else None
            reasons[component] = reason or "insufficient recorded history"
        return reasons

    @property
    def quality(self) -> Dict[ComponentId, object]:
        """Per-component data-quality reports, where the slaves built one."""
        return {
            component: report.quality
            for component, report in self.reports.items()
            if getattr(report, "quality", None) is not None
        }

    def summary(self) -> str:
        """Human-readable diagnosis summary (for logs and operators)."""
        if self.external_factor:
            return (
                "external factor: all components shifted together "
                "(workload change or shared-service problem); no "
                "application component pinpointed"
            )
        if not self.chain.links:
            text = "no abnormal changes found in the look-back window"
            if self.skipped:
                reasons = self.skipped_reasons
                detail = ", ".join(
                    f"{component} ({reasons[component]})"
                    for component in sorted(self.skipped)
                )
                text += f"; skipped: {detail}"
                text += (
                    "\nverdict is inconclusive: the skipped components "
                    "could not be ruled out"
                )
            return text
        lines = ["abnormal change propagation chain:"]
        for component, onset in self.chain.links:
            report = self.reports.get(component)
            metrics = (
                ", ".join(str(m) for m in report.implicated_metrics)
                if report
                else ""
            )
            marker = "  <-- FAULTY" if component in self.faulty else ""
            lines.append(
                f"  {component} @ t={onset}s ({metrics}){marker}"
            )
        lines.append(f"pinpointed: {sorted(self.faulty)}")
        if self.skipped:
            reasons = self.skipped_reasons
            detail = ", ".join(
                f"{component} ({reasons[component]})"
                for component in sorted(self.skipped)
            )
            lines.append(f"skipped: {detail}")
        return "\n".join(lines)


def _external_factor(
    reports: Sequence[ComponentReport],
    trend_fraction: float,
    max_onset_spread: float,
) -> bool:
    """All components abnormal, one shared trend, near-simultaneous onset?

    An external cause (workload surge, shared NFS/network problem) hits
    every component through the same channel at the same time, so besides
    the paper's conditions — every component abnormal with a common
    upward or downward trend — the onsets must be tightly clustered. A
    fault *cascade* can eventually touch every component too, but its
    onsets are ordered by propagation and spread over many seconds.
    """
    if not reports:
        return False
    abnormal = [r for r in reports if r.is_abnormal]
    if len(abnormal) < len(reports):
        return False
    trends = [r.trend for r in abnormal]
    share_up = sum(1 for t in trends if t > 0) / len(trends)
    if max(share_up, 1.0 - share_up) < trend_fraction:
        return False
    # The onsets of *every* abnormal component must cluster: an external
    # shift hits everything at once, whereas a fault cascade's culprit
    # manifests well before its victims — that early onset is exactly the
    # evidence that the anomaly originates inside the application.
    onsets = [r.onset_time for r in abnormal]
    return max(onsets) - min(onsets) <= max_onset_spread


def pinpoint_faulty_components(
    reports: Sequence[ComponentReport],
    config: FChainConfig,
    dependency_graph: Optional[nx.DiGraph] = None,
) -> PinpointResult:
    """Run the integrated pinpointing algorithm.

    Args:
        reports: One report per monitored component (normal components
            included, with empty abnormal-change lists).
        config: FChain configuration (concurrency threshold, external
            trend fraction).
        dependency_graph: Black-box discovered dependency graph in
            request-flow direction, or None/empty when discovery found
            nothing (FChain then falls back to pure propagation order).

    Returns:
        The pinpointing result.
    """
    by_name = {r.component: r for r in reports}
    chain = build_chain(reports)
    skipped = frozenset(r.component for r in reports if r.skipped)

    if not chain.links:
        return PinpointResult(
            faulty=frozenset(),
            external_factor=False,
            chain=chain,
            reports=by_name,
            skipped=skipped,
        )

    external_spread = max(5.0, 2.0 * config.concurrency_threshold)
    if _external_factor(
        reports, config.external_trend_fraction, external_spread
    ):
        return PinpointResult(
            faulty=frozenset(),
            external_factor=True,
            chain=chain,
            reports=by_name,
            skipped=skipped,
        )

    have_dependencies = (
        dependency_graph is not None and dependency_graph.number_of_edges() > 0
    )

    source, source_onset = chain.links[0]
    faulty = {source}
    onsets = {component: onset for component, onset in chain.links}

    for component, onset in chain.links[1:]:
        distance = min(abs(onset - onsets[f]) for f in faulty)
        if distance <= config.concurrency_threshold:
            # Too close to be explained by propagation: a concurrent fault.
            faulty.add(component)
            continue
        if have_dependencies:
            min_confidence = config.topology_min_path_confidence
            if min_confidence > 0.0:
                # Weighted pruning: a propagation explanation must ride a
                # dependency path the online topology still believes in —
                # decayed edges stop explaining anomalies away.
                explained = any(
                    propagation_path_confidence(
                        dependency_graph, f, component
                    )
                    >= min_confidence
                    for f in faulty
                )
            else:
                explained = any(
                    propagation_path_exists(dependency_graph, f, component)
                    for f in faulty
                )
            if not explained:
                # No dependency path from any pinpointed component: the
                # inferred propagation is spurious, so this component's
                # anomaly must be an independent fault (Fig. 5).
                faulty.add(component)

    return PinpointResult(
        faulty=frozenset(faulty),
        external_factor=False,
        chain=chain,
        reports=by_name,
        skipped=skipped,
    )
