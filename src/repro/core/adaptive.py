"""Adaptive extensions the paper lists as ongoing/future work.

Two mechanisms from the paper's discussion sections:

* **Adaptive look-back window** (Sec. III-F): "We are currently
  investigating an adaptive look-back window configuration scheme by
  examining the metric changing speed." A fixed ``W = 100`` misses the
  onset of slowly manifesting faults (the DiskHog row of Table I).
  :func:`adaptive_look_back_window` grows the window while the data at
  the window head is still trending — i.e. while the manifestation is
  still censored by the boundary.

* **Adaptive smoothing** (Sec. III-C): "smoothing in this case causes the
  time of the abnormal change point in the affected normal component to
  become earlier than those of true culprit components. We need to
  perform adaptive smoothing to address this problem."
  :func:`adaptive_smoothing_window` picks the smoothing width from the
  local noise-to-signal ratio, so quiet metrics keep sharp (accurately
  timed) transitions while noisy ones still get de-noised.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.common.types import ComponentId, Metric
from repro.core.config import FChainConfig
from repro.monitoring.store import MetricStore


def _head_trending(values: np.ndarray, head: int = 12) -> bool:
    """Statistically significant linear trend over the window head?"""
    if len(values) < head + 2:
        return False
    x = np.arange(head, dtype=float)
    y = values[:head]
    slope, intercept = np.polyfit(x, y, 1)
    residuals = y - (slope * x + intercept)
    denom = float(np.sqrt(np.sum((x - x.mean()) ** 2)))
    stderr = float(np.std(residuals, ddof=2)) / max(denom, 1e-12)
    scale = float(np.std(y)) + 1e-12
    return abs(slope) >= 3.0 * stderr and abs(slope) * head >= 0.5 * scale


def adaptive_look_back_window(
    store: MetricStore,
    violation_time: int,
    *,
    base_window: int = 100,
    max_window: int = 600,
    step: int = 100,
    components: Optional[Iterable[ComponentId]] = None,
) -> int:
    """Choose ``W`` by examining the metric changing speed (paper Sec. III-F).

    Starting from the default window, the head (oldest samples) of every
    monitored metric's window is tested for a significant trend: a head
    that is still climbing/falling means the fault manifestation started
    *before* the window — so the window is grown until the heads are
    quiet or ``max_window`` is reached. Fast faults keep the small,
    cheap window; the Hadoop DiskHog automatically gets the large one.

    Args:
        store: Recorded metrics.
        violation_time: ``t_v``.
        base_window: Starting (and minimum) window size in seconds.
        max_window: Upper bound on the window size.
        step: Growth increment per round.
        components: Restrict the scan (defaults to every component).

    Returns:
        The selected look-back window in seconds.
    """
    names = list(components) if components is not None else store.components
    window = base_window
    while window < max_window:
        head_is_trending = False
        for component in names:
            for metric in store.metrics_for(component):
                series = store.series(component, metric).window(
                    violation_time - window, violation_time + 1
                )
                if len(series) < window:
                    return window  # history exhausted: stop growing
                if _head_trending(series.values):
                    head_is_trending = True
                    break
            if head_is_trending:
                break
        if not head_is_trending:
            return window
        window = min(max_window, window + step)
    return window


def adaptive_smoothing_window(
    series: TimeSeries,
    *,
    min_window: int = 1,
    max_window: int = 9,
) -> int:
    """Pick a smoothing width from the local noise-to-signal ratio.

    The noise level is estimated from first differences (high-frequency
    content), the signal scale from the series spread. Quiet metrics
    (memory) get little or no smoothing — keeping level-shift timing
    sharp, the fix for the paper's concurrent-CpuHog mis-ordering — while
    noisy metrics (disk) get the full window.

    Returns:
        An odd window width in ``[min_window, max_window]``.
    """
    values = series.values
    if len(values) < 4:
        return min_window
    noise = float(np.median(np.abs(np.diff(values)))) + 1e-12
    spread = float(np.percentile(values, 90) - np.percentile(values, 10))
    ratio = noise / (spread + 1e-12)
    # ratio ~0 (smooth series) -> min window; ratio >= 0.5 -> max window.
    fraction = min(1.0, ratio / 0.5)
    window = int(round(min_window + fraction * (max_window - min_window)))
    if window % 2 == 0:
        window += 1
    return max(min_window, min(max_window, window))


def adaptive_config(
    store: MetricStore,
    violation_time: int,
    base: Optional[FChainConfig] = None,
    **kwargs,
) -> FChainConfig:
    """An :class:`FChainConfig` with the adaptively chosen look-back window."""
    base = base or FChainConfig()
    window = adaptive_look_back_window(
        store,
        violation_time,
        base_window=base.look_back_window,
        **kwargs,
    )
    return base.with_window(window)
