"""Online Markov-chain metric prediction (the PRESS model, paper ref. [12]).

The FChain slave continuously learns each metric's *value-transition*
pattern: the value range is discretized into bins and a discrete-time
Markov chain counts bin-to-bin transitions, with exponential forgetting so
the model tracks the evolving workload. The prediction for the next sample
is the expected value of the next-bin distribution given the current bin.

The model's role in FChain is the *predictability metric*: transitions the
model has seen before (normal workload fluctuation) predict well; fault
manifestations move the metric in ways the model never learned, producing
large prediction errors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.timeseries import TimeSeries


class MarkovPredictor:
    """Online one-step-ahead predictor for a single metric series.

    Args:
        bins: Number of value bins.
        halflife: Number of updates after which old transition counts
            carry half weight (implemented by periodic count halving).
        warmup: Samples used to estimate the initial value range before
            the bin grid is frozen.
        headroom: Fractional padding added around the warmup range so
            moderately larger values still fall inside the grid; values
            beyond it clamp to the edge bins (an "unseen regime" signal).
    """

    def __init__(
        self,
        bins: int = 40,
        halflife: int = 2000,
        warmup: int = 60,
        headroom: float = 0.75,
    ) -> None:
        if bins < 2:
            raise ValueError("bins must be >= 2")
        self.bins = bins
        self.halflife = max(1, halflife)
        self.warmup = max(2, warmup)
        self.headroom = headroom
        self._warmup_values: list = []
        self._lo: Optional[float] = None
        self._hi: Optional[float] = None
        self._counts = np.zeros((bins, bins), dtype=float)
        self._centers: Optional[np.ndarray] = None
        self._previous_bin: Optional[int] = None
        self._updates = 0

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether the warmup finished and predictions are meaningful."""
        return self._centers is not None

    def _freeze_grid(self) -> None:
        values = np.asarray(self._warmup_values, dtype=float)
        lo, hi = float(values.min()), float(values.max())
        pad = self.headroom * max(hi - lo, abs(hi), 1e-6)
        self._lo, self._hi = lo - pad, hi + pad
        edges = np.linspace(self._lo, self._hi, self.bins + 1)
        self._centers = 0.5 * (edges[:-1] + edges[1:])
        self._warmup_values = []

    def _bin_of(self, value: float) -> int:
        span = self._hi - self._lo
        idx = int((value - self._lo) / span * self.bins)
        return min(self.bins - 1, max(0, idx))

    # ------------------------------------------------------------------
    def predict(self) -> Optional[float]:
        """Expected next value given the current state, or None pre-warmup.

        An unvisited transition row falls back to the *marginal*
        expectation over all observed values: the model has never seen
        this state, so its best estimate is the historical norm. This is
        what makes a sustained excursion into an unseen regime — the
        signature of a fault manifestation — keep producing large
        prediction errors tick after tick, whereas a brief benign spike
        returns to well-learned states immediately.
        """
        if not self.ready or self._previous_bin is None:
            return None
        row = self._counts[self._previous_bin]
        total = row.sum()
        if total <= 0:
            return self._marginal_expectation()
        return float(row @ self._centers / total)

    def _marginal_expectation(self) -> float:
        """Expected value under the marginal distribution of seen bins."""
        mass = self._counts.sum(axis=0)
        total = mass.sum()
        if total <= 0:
            return float(self._centers[self._previous_bin])
        return float(mass @ self._centers / total)

    def step(self, value: float) -> Optional[float]:
        """Feed one sample; returns the *signed* prediction error for it.

        The error is ``value - predicted`` using the prediction made
        *before* the model saw ``value`` (honest one-step-ahead error) —
        the same convention as ``prediction_errors(..., signed=True)``,
        which lets a continuously fed model replace the batch replay in
        the diagnosis hot path. During warmup the error is None.
        """
        value = float(value)
        if not self.ready:
            self._warmup_values.append(value)
            if len(self._warmup_values) >= self.warmup:
                self._freeze_grid()
            return None
        predicted = self.predict()
        current_bin = self._bin_of(value)
        if self._previous_bin is not None:
            self._counts[self._previous_bin, current_bin] += 1.0
            self._updates += 1
            if self._updates % self.halflife == 0:
                self._counts *= 0.5
        self._previous_bin = current_bin
        if predicted is None:
            return None
        return value - predicted

    def update(self, value: float) -> Optional[float]:
        """Feed one sample; returns the unsigned prediction error for it.

        The error is ``|predicted - value|``; see :meth:`step` for the
        signed variant the diagnosis pipeline consumes.
        """
        error = self.step(value)
        return None if error is None else abs(error)

    # ------------------------------------------------------------------
    def transition_matrix(self) -> np.ndarray:
        """Row-normalized transition probabilities (rows with no mass are
        uniform)."""
        if not self.ready:
            raise RuntimeError("model not warmed up")
        totals = self._counts.sum(axis=1, keepdims=True)
        matrix = np.where(
            totals > 0, self._counts / np.maximum(totals, 1e-12), 1.0 / self.bins
        )
        return matrix


def prediction_errors(
    series: TimeSeries,
    *,
    bins: int = 40,
    halflife: int = 2000,
    warmup: int = 60,
    signed: bool = False,
) -> np.ndarray:
    """Run a fresh model over a whole series; return per-sample errors.

    Entries where the model had no prediction yet (warmup) are NaN. This
    is the batch path the diagnosis uses: the model is trained online over
    the history, so the error at time ``t`` reflects exactly the data seen
    before ``t``.

    Args:
        signed: Return ``actual - predicted`` instead of the magnitude.
            The sign separates over-shoots (benign spikes are almost
            always upward) from under-shoots, letting callers compare a
            change point against same-direction history only.
    """
    model = MarkovPredictor(bins=bins, halflife=halflife, warmup=warmup)
    errors = np.full(len(series), np.nan)
    for i, value in enumerate(series.values):
        delta = model.step(value)
        if delta is not None:
            errors[i] = delta if signed else abs(delta)
    return errors
