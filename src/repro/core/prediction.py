"""Online Markov-chain metric prediction (the PRESS model, paper ref. [12]).

The FChain slave continuously learns each metric's *value-transition*
pattern: the value range is discretized into bins and a discrete-time
Markov chain counts bin-to-bin transitions, with exponential forgetting so
the model tracks the evolving workload. The prediction for the next sample
is the expected value of the next-bin distribution given the current bin.

The model's role in FChain is the *predictability metric*: transitions the
model has seen before (normal workload fluctuation) predict well; fault
manifestations move the metric in ways the model never learned, producing
large prediction errors.

Two update paths are offered and kept **bit-identical**:

* :meth:`MarkovPredictor.step` / :meth:`MarkovPredictor.update` — one
  sample at a time (the reference implementation);
* :meth:`MarkovPredictor.update_many` — a whole chunk at once. Bin
  assignment is vectorized on the frozen grid, transition counts are
  accumulated with ``np.add.at`` on the lagged bin pairs, and the
  predictions are reconstructed from per-row running aggregates whose
  ``np.cumsum`` accumulation performs exactly the same sequence of float
  additions as the scalar path — so a chunked feed and a per-sample feed
  produce the same error stream bit for bit (property-tested by
  ``tests/properties/test_update_many_properties.py``).

The exactness hinges on two facts: sequential aggregate updates are a
left fold, which is precisely what ``np.cumsum`` computes; and halving at
the decay points multiplies by a power of two, which distributes exactly
over sums in IEEE arithmetic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.timeseries import TimeSeries

#: Smallest grid span that can be divided safely. Below the smallest
#: normal float, ``(value - lo) / span * bins`` overflows to inf for
#: values only modestly outside the grid, and ``int(inf)`` raises —
#: such spans are treated like the zero-span degenerate grid instead.
_MIN_SPAN = float(np.finfo(float).tiny)


class MarkovPredictor:
    """Online one-step-ahead predictor for a single metric series.

    Args:
        bins: Number of value bins.
        halflife: Number of updates after which old transition counts
            carry half weight (implemented by periodic count halving).
        warmup: Samples used to estimate the initial value range before
            the bin grid is frozen.
        headroom: Fractional padding added around the warmup range so
            moderately larger values still fall inside the grid; values
            beyond it clamp to the edge bins (an "unseen regime" signal).
    """

    def __init__(
        self,
        bins: int = 40,
        halflife: int = 2000,
        warmup: int = 60,
        headroom: float = 0.75,
    ) -> None:
        if bins < 2:
            raise ValueError("bins must be >= 2")
        self.bins = bins
        self.halflife = max(1, halflife)
        self.warmup = max(2, warmup)
        self.headroom = headroom
        self._warmup_values: list = []
        self._lo: Optional[float] = None
        self._hi: Optional[float] = None
        self._counts = np.zeros((bins, bins), dtype=float)
        self._centers: Optional[np.ndarray] = None
        self._previous_bin: Optional[int] = None
        self._updates = 0
        # Running aggregates the predictions are served from; maintained
        # in lockstep with ``_counts`` (see module docstring):
        #   _row_dots[b]  == counts[b] @ centers
        #   _row_sums[b]  == counts[b].sum()
        #   _marginal_dot == counts.sum(axis=0) @ centers
        #   _marginal_total == counts.sum()
        self._row_dots = np.zeros(bins, dtype=float)
        self._row_sums = np.zeros(bins, dtype=float)
        self._marginal_dot = 0.0
        self._marginal_total = 0.0

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether the warmup finished and predictions are meaningful."""
        return self._centers is not None

    def _freeze_grid(self) -> None:
        values = np.asarray(self._warmup_values, dtype=float)
        lo, hi = float(values.min()), float(values.max())
        pad = self.headroom * max(hi - lo, abs(hi), 1e-6)
        self._lo, self._hi = lo - pad, hi + pad
        edges = np.linspace(self._lo, self._hi, self.bins + 1)
        self._centers = 0.5 * (edges[:-1] + edges[1:])
        self._warmup_values = []

    def _bin_of(self, value: float) -> int:
        span = self._hi - self._lo
        if span < _MIN_SPAN:
            # Degenerate grid: a constant warmup series with zero
            # headroom freezes lo == hi (span 0), and a *subnormal*
            # warmup spread can freeze a positive span too small to
            # divide safely. Every value then maps to an edge bin
            # instead of dividing by the (near-)zero span.
            return 0 if value <= self._lo else self.bins - 1
        raw = (value - self._lo) / span * self.bins
        if not np.isfinite(raw):
            # The divide overflowed (a value astronomically outside a
            # tiny grid): clamp to the edge bin the sign points at,
            # matching the degenerate-grid rule.
            return 0 if value <= self._lo else self.bins - 1
        idx = int(raw)
        return min(self.bins - 1, max(0, idx))

    def _bins_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_bin_of` over a chunk (identical clamping)."""
        span = self._hi - self._lo
        if span < _MIN_SPAN:
            return np.where(values <= self._lo, 0, self.bins - 1)
        with np.errstate(over="ignore", invalid="ignore"):
            raw = (values - self._lo) / span * self.bins
        bad = ~np.isfinite(raw)
        if bad.any():
            # Same edge-bin rule as the scalar overflow path.
            raw = np.where(
                bad,
                np.where(values <= self._lo, 0.0, float(self.bins - 1)),
                raw,
            )
        # Clipping the float before truncation matches the scalar
        # ``min(bins - 1, max(0, int(raw)))`` for every finite value:
        # int() truncates toward zero, and truncation commutes with the
        # clamp on [0, bins - 1].
        return np.clip(raw, 0, self.bins - 1).astype(np.int64)

    def _halve(self) -> None:
        """Exponential forgetting: halve counts and all aggregates.

        Multiplying by 0.5 is exact in IEEE arithmetic and distributes
        over sums, so the aggregates stay equal to their definitions.
        """
        self._counts *= 0.5
        self._row_dots *= 0.5
        self._row_sums *= 0.5
        self._marginal_dot = self._marginal_dot * 0.5
        self._marginal_total = self._marginal_total * 0.5

    # ------------------------------------------------------------------
    def predict(self) -> Optional[float]:
        """Expected next value given the current state, or None pre-warmup.

        An unvisited transition row falls back to the *marginal*
        expectation over all observed values: the model has never seen
        this state, so its best estimate is the historical norm. This is
        what makes a sustained excursion into an unseen regime — the
        signature of a fault manifestation — keep producing large
        prediction errors tick after tick, whereas a brief benign spike
        returns to well-learned states immediately.
        """
        if not self.ready or self._previous_bin is None:
            return None
        total = self._row_sums[self._previous_bin]
        if total > 0:
            return float(self._row_dots[self._previous_bin] / total)
        return self._marginal_expectation()

    def _marginal_expectation(self) -> float:
        """Expected value under the marginal distribution of seen bins."""
        if self._marginal_total <= 0:
            return float(self._centers[self._previous_bin])
        return float(self._marginal_dot / self._marginal_total)

    def step(self, value: float) -> Optional[float]:
        """Feed one sample; returns the *signed* prediction error for it.

        The error is ``value - predicted`` using the prediction made
        *before* the model saw ``value`` (honest one-step-ahead error) —
        the same convention as ``prediction_errors(..., signed=True)``,
        which lets a continuously fed model replace the batch replay in
        the diagnosis hot path. During warmup the error is None.
        """
        value = float(value)
        if not self.ready:
            self._warmup_values.append(value)
            if len(self._warmup_values) >= self.warmup:
                self._freeze_grid()
            return None
        predicted = self.predict()
        current_bin = self._bin_of(value)
        if self._previous_bin is not None:
            self._counts[self._previous_bin, current_bin] += 1.0
            center = self._centers[current_bin]
            self._row_dots[self._previous_bin] += center
            self._row_sums[self._previous_bin] += 1.0
            self._marginal_dot = self._marginal_dot + center
            self._marginal_total = self._marginal_total + 1.0
            self._updates += 1
            if self._updates % self.halflife == 0:
                self._halve()
        self._previous_bin = current_bin
        if predicted is None:
            return None
        return value - predicted

    def update(self, value: float) -> Optional[float]:
        """Feed one sample; returns the unsigned prediction error for it.

        The error is ``|predicted - value|``; see :meth:`step` for the
        signed variant the diagnosis pipeline consumes.
        """
        error = self.step(value)
        return None if error is None else abs(error)

    # ------------------------------------------------------------------
    # Batched updates (the fleet-scale ingest path)
    # ------------------------------------------------------------------
    def update_many(self, values) -> np.ndarray:
        """Feed a chunk of consecutive samples; return signed errors.

        Bit-identical to ``[self.step(v) for v in values]`` with None
        mapped to NaN, but the chunk is processed with O(metric) numpy
        calls instead of O(samples) Python calls: warmup and grid-freeze
        are handled mid-chunk, bins are assigned vectorized, transition
        counts accumulate via ``np.add.at`` per decay epoch, and the
        halflife halvings land at exactly the same update indices as the
        scalar path.

        Args:
            values: 1-D array-like of consecutive samples. Post-warmup
                samples must be finite; NaN gap markers belong in
                :meth:`update_many_gapped`, which routes the finite runs
                here.

        Returns:
            ``actual - predicted`` per sample; NaN where the model had
            no prediction yet (warmup and the first post-warmup sample).
        """
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            raise ValueError("update_many expects a 1-D array of samples")
        n = len(arr)
        errors = np.full(n, np.nan)
        if n == 0:
            return errors
        if n <= 2:
            # Chunks this small gain nothing from the batch machinery.
            for i in range(n):
                delta = self.step(arr[i])
                if delta is not None:
                    errors[i] = delta
            return errors
        start = 0
        if not self.ready:
            take = min(n, self.warmup - len(self._warmup_values))
            self._warmup_values.extend(arr[:take].tolist())
            if len(self._warmup_values) >= self.warmup:
                self._freeze_grid()
            start = take
            if start >= n or not self.ready:
                return errors
        chunk = arr[start:]
        if not np.isfinite(chunk).all():
            raise ValueError("update_many requires finite samples")
        bins_arr = self._bins_of(chunk)
        if self._previous_bin is None:
            # The first post-warmup sample has no prediction and causes
            # no transition; it only seeds the chain state.
            if len(chunk) == 1:
                self._previous_bin = int(bins_arr[0])
                return errors
            rows = bins_arr[:-1]
            cols = bins_arr[1:]
            predicted_for = chunk[1:]
            out = errors[start + 1 :]
        else:
            rows = np.concatenate(([self._previous_bin], bins_arr[:-1]))
            cols = bins_arr
            predicted_for = chunk
            out = errors[start:]
        preds = np.empty(len(cols))
        total = len(cols)
        position = 0
        while position < total:
            # Increments until (and including) the next halving point —
            # within an epoch no decay happens, so predictions can be
            # reconstructed from epoch-start aggregates plus cumsums.
            until_halving = self.halflife - (self._updates % self.halflife)
            end = min(total, position + until_halving)
            self._batch_epoch(
                rows[position:end], cols[position:end], preds[position:end]
            )
            self._updates += end - position
            if self._updates % self.halflife == 0:
                self._halve()
            position = end
        np.subtract(predicted_for, preds, out=out)
        self._previous_bin = int(bins_arr[-1])
        return errors

    def update_many_gapped(self, values) -> np.ndarray:
        """Feed a chunk that may contain NaN gap markers; return errors.

        Degraded telemetry leaves unfillable holes as NaN slots. This
        wrapper keeps the Markov state sound across them: finite runs go
        through :meth:`update_many` unchanged (an all-finite chunk takes
        exactly that path — bit-identical to the clean pipeline), while
        each gap yields NaN errors, performs *no* model update, and
        breaks the transition chain — the pre-gap and post-gap samples
        were not consecutive, so counting a transition between them
        would teach the model a jump that never happened.

        After a gap the next finite sample only re-seeds the chain state
        (no prediction, no transition), exactly like the first
        post-warmup sample.
        """
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            raise ValueError("update_many_gapped expects a 1-D array")
        finite = np.isfinite(arr)
        if finite.all():
            return self.update_many(arr)
        errors = np.full(len(arr), np.nan)
        idx = np.flatnonzero(finite)
        if len(idx) == 0:
            return errors
        run_breaks = np.flatnonzero(np.diff(idx) > 1) + 1
        for run in np.split(idx, run_breaks):
            lo, hi = int(run[0]), int(run[-1]) + 1
            if lo > 0:
                # The samples of this run follow a gap: sever the chain
                # so no cross-gap transition is learned.
                self._previous_bin = None
            errors[lo:hi] = self.update_many(arr[lo:hi])
        if not finite[-1]:
            # A trailing gap severs the chain for the *next* chunk too.
            self._previous_bin = None
        return errors

    def _batch_epoch(
        self, rows: np.ndarray, cols: np.ndarray, out: np.ndarray
    ) -> None:
        """Process one decay-free run of transitions.

        Writes the per-step predictions (made *before* each step's own
        transition lands, as the scalar path does) into ``out`` and
        advances counts and aggregates. All accumulation is sequential
        (``np.cumsum`` seeded with the running aggregate), so the floats
        match a per-sample feed exactly.
        """
        centers = self._centers
        cadd = centers[cols]
        k = len(rows)
        order = np.argsort(rows, kind="stable")
        rows_sorted = rows[order]
        group_bounds = np.flatnonzero(rows_sorted[1:] != rows_sorted[:-1]) + 1
        starts = np.concatenate(([0], group_bounds))
        ends = np.concatenate((group_bounds, [k]))
        row_dot = np.empty(k)
        row_sum = np.empty(k)
        seq = np.empty(k + 1)
        for g0, g1 in zip(starts, ends):
            row = int(rows_sorted[g0])
            idx = order[g0:g1]
            width = g1 - g0
            seq[0] = self._row_dots[row]
            seq[1 : width + 1] = cadd[idx]
            dots = np.cumsum(seq[: width + 1])
            row_dot[idx] = dots[:-1]
            self._row_dots[row] = dots[-1]
            seq[0] = self._row_sums[row]
            seq[1 : width + 1] = 1.0
            sums = np.cumsum(seq[: width + 1])
            row_sum[idx] = sums[:-1]
            self._row_sums[row] = sums[-1]
        visited = row_sum > 0
        np.divide(row_dot, row_sum, out=out, where=visited)
        # The marginal aggregates advance on every transition; computing
        # them as seeded cumsums keeps the float sequence identical to
        # the scalar path even when no prediction needs the fallback.
        seq[0] = self._marginal_dot
        seq[1:] = cadd
        marginal_dots = np.cumsum(seq)
        seq[0] = self._marginal_total
        seq[1:] = 1.0
        marginal_totals = np.cumsum(seq)
        if not visited.all():
            fallback = np.flatnonzero(~visited)
            mdot = marginal_dots[fallback]
            mtot = marginal_totals[fallback]
            marginal = centers[rows[fallback]].astype(float, copy=True)
            np.divide(mdot, mtot, out=marginal, where=mtot > 0)
            out[fallback] = marginal
        self._marginal_dot = float(marginal_dots[-1])
        self._marginal_total = float(marginal_totals[-1])
        np.add.at(self._counts, (rows, cols), 1.0)

    # ------------------------------------------------------------------
    def transition_matrix(self) -> np.ndarray:
        """Row-normalized transition probabilities (rows with no mass are
        uniform)."""
        if not self.ready:
            raise RuntimeError("model not warmed up")
        totals = self._counts.sum(axis=1, keepdims=True)
        matrix = np.where(
            totals > 0, self._counts / np.maximum(totals, 1e-12), 1.0 / self.bins
        )
        return matrix


def prediction_errors(
    series: TimeSeries,
    *,
    bins: int = 40,
    halflife: int = 2000,
    warmup: int = 60,
    signed: bool = False,
) -> np.ndarray:
    """Run a fresh model over a whole series; return per-sample errors.

    Entries where the model had no prediction yet (warmup) are NaN. This
    is the batch path the diagnosis uses: the model is trained online over
    the history, so the error at time ``t`` reflects exactly the data seen
    before ``t``. The whole series goes through
    :meth:`MarkovPredictor.update_many` in one vectorized chunk.

    Args:
        signed: Return ``actual - predicted`` instead of the magnitude.
            The sign separates over-shoots (benign spikes are almost
            always upward) from under-shoots, letting callers compare a
            change point against same-direction history only.
    """
    model = MarkovPredictor(bins=bins, halflife=halflife, warmup=warmup)
    errors = model.update_many(series.values)
    return errors if signed else np.abs(errors)
