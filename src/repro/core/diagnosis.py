"""The unified diagnosis result returned by the :class:`FChain` facade.

Historically ``FChain.localize`` returned a bare
:class:`~repro.core.pinpoint.PinpointResult` while
``localize_and_validate`` returned a ``(result, outcomes)`` tuple, so
callers had to know which entry point produced their object.
:class:`Diagnosis` is the single result type of the redesigned API: it
carries the (possibly validated) pinpointing outcome, the validation
evidence when validation ran, the components that could not be analysed,
and the wall-clock diagnosis latency — while proxying the fields callers
of the old API read (``faulty``, ``chain``, ``external_factor``,
``summary()``), so existing code keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.common.types import ComponentId, Metric
from repro.core.pinpoint import PinpointResult
from repro.core.propagation import ComponentReport, PropagationChain
from repro.core.validation import ValidationOutcome


@dataclass
class Diagnosis:
    """Outcome of one ``FChain.localize`` call.

    Attributes:
        result: The effective pinpointing result — post-validation when
            ``validate_with`` was supplied, raw otherwise.
        violation_time: The SLO violation tick ``t_v`` that was diagnosed.
        outcomes: Per-component validation outcomes, or None when no
            validation ran.
        unvalidated: The pre-validation pinpointing result when
            validation ran (None otherwise); lets callers see what
            validation filtered out.
        latency_seconds: Wall-clock time the diagnosis (and validation,
            when requested) took.
        trace: The diagnosis telemetry span tree
            (:class:`~repro.obs.trace.Span`) when ``config.telemetry``
            is ``"timings"`` or ``"full"``; None when telemetry is off.
            Stage names are the stable vocabulary of
            ``repro.obs.trace.PIPELINE_STAGES``.
    """

    result: PinpointResult
    violation_time: int
    outcomes: Optional[Dict[ComponentId, ValidationOutcome]] = None
    unvalidated: Optional[PinpointResult] = None
    latency_seconds: float = 0.0
    trace: Optional[object] = None

    # ------------------------------------------------------------------
    # Proxies for the fields the pre-redesign API exposed
    # ------------------------------------------------------------------
    @property
    def faulty(self) -> FrozenSet[ComponentId]:
        """Pinpointed faulty components (validated when validation ran)."""
        return self.result.faulty

    @property
    def external_factor(self) -> bool:
        return self.result.external_factor

    @property
    def chain(self) -> PropagationChain:
        return self.result.chain

    @property
    def reports(self) -> Dict[ComponentId, ComponentReport]:
        return self.result.reports

    @property
    def skipped(self) -> FrozenSet[ComponentId]:
        """Components the slaves could not analyse (insufficient data)."""
        return self.result.skipped

    @property
    def validated(self) -> bool:
        """Whether online pinpointing validation ran."""
        return self.outcomes is not None

    @property
    def analyzed(self) -> Optional[FrozenSet[ComponentId]]:
        """Components the slaves examined when diagnosis ran scoped.

        ``None`` for an unscoped (full fan-out) diagnosis — the default
        ``topology_mode="full"`` — and the analysed neighborhood in
        topology-guided ``"neighborhood"`` mode.
        """
        return self.result.analyzed

    @property
    def escalated(self) -> bool:
        """Whether a neighborhood-scoped diagnosis widened to all
        components because the scoped result could not rule out a
        culprit outside the neighborhood."""
        return self.result.escalated

    # ------------------------------------------------------------------
    # Data-quality surface (degraded-telemetry resilience layer)
    # ------------------------------------------------------------------
    @property
    def quality(self) -> Dict[ComponentId, object]:
        """Per-component :class:`~repro.monitoring.quality.DataQualityReport`s."""
        return self.result.quality

    @property
    def skipped_reasons(self) -> Dict[ComponentId, str]:
        """Why each skipped component could not be examined."""
        return self.result.skipped_reasons

    @property
    def confidence(self) -> str:
        """How much the verdict can be trusted given the telemetry quality.

        ``"full"`` — every analysed component saw clean data and nothing
        was skipped. ``"degraded"`` — a verdict was reached, but some
        component's analysis ran on repaired/partial data or was skipped,
        so the ranking rests on weaker evidence. ``"inconclusive"`` — no
        verdict *and* at least one component could not be examined: the
        absence of a finding must not be read as "no fault", because the
        unexamined components could not be ruled out.
        """
        from repro.monitoring.quality import (
            CONFIDENCE_DEGRADED,
            CONFIDENCE_FULL,
            CONFIDENCE_INCONCLUSIVE,
        )

        degraded = bool(self.result.skipped) or any(
            report.confidence != CONFIDENCE_FULL
            for report in self.result.quality.values()
        )
        if self.faulty or self.external_factor:
            return CONFIDENCE_DEGRADED if degraded else CONFIDENCE_FULL
        if degraded:
            return CONFIDENCE_INCONCLUSIVE
        return CONFIDENCE_FULL

    @property
    def is_inconclusive(self) -> bool:
        """True when the diagnosis must not be trusted either way."""
        from repro.monitoring.quality import CONFIDENCE_INCONCLUSIVE

        return self.confidence == CONFIDENCE_INCONCLUSIVE

    def implicated_metrics(self, component: ComponentId) -> List[Metric]:
        return self.result.implicated_metrics(component)

    def summary(self) -> str:
        """Human-readable diagnosis summary (for logs and operators)."""
        text = self.result.summary()
        if self.outcomes:
            rejected = sorted(
                c for c, o in self.outcomes.items() if not o.confirmed
            )
            if rejected:
                text += f"\nvalidation removed false alarms: {rejected}"
            else:
                text += "\nvalidation confirmed every pinpointed component"
        return text
