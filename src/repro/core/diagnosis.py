"""The unified diagnosis result returned by the :class:`FChain` facade.

Historically ``FChain.localize`` returned a bare
:class:`~repro.core.pinpoint.PinpointResult` while
``localize_and_validate`` returned a ``(result, outcomes)`` tuple, so
callers had to know which entry point produced their object.
:class:`Diagnosis` is the single result type of the redesigned API: it
carries the (possibly validated) pinpointing outcome, the validation
evidence when validation ran, the components that could not be analysed,
and the wall-clock diagnosis latency — while proxying the fields callers
of the old API read (``faulty``, ``chain``, ``external_factor``,
``summary()``), so existing code keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.common.types import ComponentId, Metric
from repro.core.pinpoint import PinpointResult
from repro.core.propagation import ComponentReport, PropagationChain
from repro.core.validation import ValidationOutcome


@dataclass
class Diagnosis:
    """Outcome of one ``FChain.localize`` call.

    Attributes:
        result: The effective pinpointing result — post-validation when
            ``validate_with`` was supplied, raw otherwise.
        violation_time: The SLO violation tick ``t_v`` that was diagnosed.
        outcomes: Per-component validation outcomes, or None when no
            validation ran.
        unvalidated: The pre-validation pinpointing result when
            validation ran (None otherwise); lets callers see what
            validation filtered out.
        latency_seconds: Wall-clock time the diagnosis (and validation,
            when requested) took.
        trace: The diagnosis telemetry span tree
            (:class:`~repro.obs.trace.Span`) when ``config.telemetry``
            is ``"timings"`` or ``"full"``; None when telemetry is off.
            Stage names are the stable vocabulary of
            ``repro.obs.trace.PIPELINE_STAGES``.
    """

    result: PinpointResult
    violation_time: int
    outcomes: Optional[Dict[ComponentId, ValidationOutcome]] = None
    unvalidated: Optional[PinpointResult] = None
    latency_seconds: float = 0.0
    trace: Optional[object] = None

    # ------------------------------------------------------------------
    # Proxies for the fields the pre-redesign API exposed
    # ------------------------------------------------------------------
    @property
    def faulty(self) -> FrozenSet[ComponentId]:
        """Pinpointed faulty components (validated when validation ran)."""
        return self.result.faulty

    @property
    def external_factor(self) -> bool:
        return self.result.external_factor

    @property
    def chain(self) -> PropagationChain:
        return self.result.chain

    @property
    def reports(self) -> Dict[ComponentId, ComponentReport]:
        return self.result.reports

    @property
    def skipped(self) -> FrozenSet[ComponentId]:
        """Components the slaves could not analyse (insufficient data)."""
        return self.result.skipped

    @property
    def validated(self) -> bool:
        """Whether online pinpointing validation ran."""
        return self.outcomes is not None

    def implicated_metrics(self, component: ComponentId) -> List[Metric]:
        return self.result.implicated_metrics(component)

    def summary(self) -> str:
        """Human-readable diagnosis summary (for logs and operators)."""
        text = self.result.summary()
        if self.outcomes:
            rejected = sorted(
                c for c, o in self.outcomes.items() if not o.confirmed
            )
            if rejected:
                text += f"\nvalidation removed false alarms: {rejected}"
            else:
                text += "\nvalidation confirmed every pinpointed component"
        return text
