"""Abnormal change propagation analysis.

The FChain master assembles the slaves' per-component reports into a
propagation chain: components sorted by the onset time of their abnormal
changes. If C1's onset precedes C2's, the abnormal change is said to
propagate C1 -> C2 (paper Sec. II-C, Fig. 2's PE3 -> PE6 -> PE2 example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.types import ComponentId, Metric
from repro.core.selection import AbnormalChange


@dataclass
class ComponentReport:
    """One slave's findings for one component.

    Attributes:
        component: The component examined.
        abnormal_changes: Selected abnormal changes across all metrics
            (empty when the component looks normal).
        skipped: True when the slave could not analyse the component at
            all — no metric had enough recorded history, no metric met
            the data-quality coverage floor, or the analysis timed out
            in a :class:`~repro.core.engine.SlavePool`. Such a component
            is *unknown*, not normal, and is surfaced through
            ``PinpointResult.skipped`` instead of being silently dropped.
        skip_reason: Human-readable reason when ``skipped`` is True
            (insufficient history / coverage below the policy floor /
            timeout after N attempts). Excluded from equality — the
            verdict is defined by the data, not its narration.
        quality: The per-component
            :class:`~repro.monitoring.quality.DataQualityReport` of the
            analysis window (None for hand-built or pre-layer reports).
            Excluded from equality like ``trace``: two analyses agreeing
            on the abnormal changes are the same finding.
        trace: The telemetry span tree of this component's analysis, or
            None when telemetry is off. Excluded from equality — two
            analyses of the same data are the same report regardless of
            how long each stage took.
    """

    component: ComponentId
    abnormal_changes: List[AbnormalChange] = field(default_factory=list)
    skipped: bool = False
    skip_reason: Optional[str] = field(default=None, compare=False)
    quality: Optional[object] = field(default=None, compare=False, repr=False)
    trace: Optional[object] = field(default=None, compare=False, repr=False)

    @property
    def is_abnormal(self) -> bool:
        return bool(self.abnormal_changes)

    @property
    def onset_time(self) -> Optional[int]:
        """Earliest abnormal onset across metrics (paper Sec. II-B)."""
        if not self.abnormal_changes:
            return None
        return min(change.onset_time for change in self.abnormal_changes)

    @property
    def trend(self) -> Optional[int]:
        """Direction (+1/-1) of the earliest abnormal change."""
        if not self.abnormal_changes:
            return None
        earliest = min(self.abnormal_changes, key=lambda c: c.onset_time)
        return earliest.direction

    @property
    def implicated_metrics(self) -> List[Metric]:
        """Metrics with abnormal changes, earliest onset first."""
        ordered = sorted(self.abnormal_changes, key=lambda c: c.onset_time)
        seen: List[Metric] = []
        for change in ordered:
            if change.metric not in seen:
                seen.append(change.metric)
        return seen


@dataclass(frozen=True)
class PropagationChain:
    """Components ordered by abnormal onset time.

    Attributes:
        links: ``(component, onset_time)`` pairs, earliest first.
    """

    links: Tuple[Tuple[ComponentId, int], ...]

    @property
    def components(self) -> List[ComponentId]:
        return [component for component, _ in self.links]

    def onset_of(self, component: ComponentId) -> int:
        for name, onset in self.links:
            if name == component:
                return onset
        raise KeyError(component)

    def edges(self) -> List[Tuple[ComponentId, ComponentId]]:
        """Inferred propagation edges between consecutive chain links."""
        names = self.components
        return list(zip(names, names[1:]))


def build_chain(
    reports: Sequence[ComponentReport],
) -> PropagationChain:
    """Sort abnormal components into a propagation chain by onset time.

    Components with identical onsets are ordered by name for determinism.
    """
    abnormal = [r for r in reports if r.is_abnormal]
    ordered = sorted(abnormal, key=lambda r: (r.onset_time, r.component))
    return PropagationChain(
        links=tuple((r.component, r.onset_time) for r in ordered)
    )
