"""Abnormal change point selection and onset-time identification.

This module implements the heart of the FChain slave (paper Sec. II-B):

1. smooth the look-back window and detect change points (CUSUM+bootstrap);
2. keep magnitude outliers (the PAL step);
3. keep only outliers whose *actual* prediction error (from the online
   Markov model) exceeds the *expected* prediction error derived from the
   local burstiness (FFT burst extraction);
4. roll the selected abnormal change point back along preceding change
   points with similar tangents to find the precise onset of the fault
   manifestation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.common.types import Metric
from repro.core.burst import expected_prediction_errors
from repro.core.config import FChainConfig
from repro.core.cusum import ChangePoint, detect_change_points
from repro.core.outliers import outlier_change_points
from repro.core.prediction import prediction_errors
from repro.core.smoothing import smooth_series
from repro.obs.trace import (
    NULL_SPAN,
    STAGE_BURST,
    STAGE_CUSUM,
    STAGE_OUTLIERS,
    STAGE_ROLLBACK,
    STAGE_SMOOTHING,
)


@dataclass(frozen=True)
class AbnormalChange:
    """One abnormal change selected on a single metric.

    Attributes:
        metric: The metric it was found on.
        change_point: The selected change point.
        onset_time: Manifestation start after tangent rollback.
        prediction_error: Actual online-model prediction error at the point.
        expected_error: Burst-derived expected prediction error.
        direction: +1 upward shift, -1 downward.
    """

    metric: Metric
    change_point: ChangePoint
    onset_time: int
    prediction_error: float
    expected_error: float
    direction: int


def reference_change_magnitudes(
    history: TimeSeries, window: int = 10
) -> np.ndarray:
    """Normal change-magnitude scale from a history window.

    Approximates "magnitudes of change points seen during normal
    operation" with the distribution of adjacent-window mean shifts —
    cheap, and it tracks exactly the quantity the outlier filter compares
    against.
    """
    values = history.values
    if len(values) < 2 * window:
        return np.asarray([])
    csum = np.concatenate([[0.0], np.cumsum(values)])
    means = (csum[window:] - csum[:-window]) / window
    return np.abs(means[window:] - means[:-window])


def actual_prediction_error(
    errors: np.ndarray,
    series: TimeSeries,
    time: int,
    *,
    direction: int = 0,
    forward: int = 4,
) -> float:
    """Online-model prediction error attributed to a change point.

    The error is the maximum over the short forward window
    ``[cp, cp + forward]``: smoothing places the detected change point a
    tick or two *before* the raw jump, so the window looks ahead to where
    the model's one-step error actually spikes. Transient benign spikes
    also produce such errors; they are removed by the persistence check
    (:func:`shift_persists`) and the burstiness threshold instead.

    Args:
        errors: *Signed* per-sample errors (``actual - predicted``)
            aligned with ``series``.
        series: The analysed window.
        time: Change-point timestamp.
        direction: When non-zero, only errors matching the change
            direction count (an upward shift produces positive errors);
            falls back to the unsigned maximum if none match.
        forward: Forward window length.
    """
    idx = time - series.start
    lo = max(0, idx)
    hi = min(len(errors), idx + forward + 1)
    window = errors[lo:hi]
    finite = window[np.isfinite(window)]
    if len(finite) == 0:
        return 0.0
    if direction:
        matching = finite[np.sign(finite) == np.sign(direction)]
        if len(matching):
            return float(np.abs(matching).max())
    return float(np.abs(finite).max())


def history_error_reference(
    history_errors: np.ndarray, direction: int, percentile: float
) -> float:
    """Routine error level of the model under normal operation.

    Only same-direction errors are considered: benign spikes and flash
    bursts over-shoot the prediction (positive errors), so they say
    nothing about how abnormal an *under*-shoot (a collapse in the
    metric) is, and vice versa.
    """
    finite = history_errors[np.isfinite(history_errors)]
    if direction:
        finite = finite[np.sign(finite) == np.sign(direction)]
    if len(finite) < 20:
        return 0.0
    return float(np.percentile(np.abs(finite), percentile))


def shift_persists(
    values: np.ndarray,
    index: int,
    magnitude: float,
    *,
    horizon: int = 15,
    min_fraction: float = 0.5,
) -> bool:
    """Whether a change point's level shift persists past transients.

    A *change point* is a lasting regime change; a flash burst or benign
    spike decays within seconds. The level ``horizon`` ticks after the
    point is compared with the level just before it: the shift must retain
    at least ``min_fraction`` of the detected magnitude. Points too close
    to the data edge (not enough forward evidence) are accepted — faults
    are detected moments after they manifest, so the freshest change
    points necessarily have little trailing data.

    Args:
        values: The analysed window's values.
        index: Change-point index within ``values``.
        magnitude: Detected mean-shift magnitude.
        horizon: Ticks ahead at which persistence is assessed.
        min_fraction: Required surviving fraction of the magnitude.
    """
    n = len(values)
    available = n - 1 - index
    if available < 6:
        return True
    h = min(horizon, available)
    early_lo = max(0, index - 7)
    early = values[early_lo : max(early_lo + 1, index - 1)]
    late = values[index + max(1, h - 4) : index + h + 1]
    if len(early) == 0 or len(late) == 0:
        return True
    shift = abs(float(np.mean(late)) - float(np.mean(early)))
    return shift >= min_fraction * magnitude


def change_departs_from_routine(
    history: TimeSeries,
    values: np.ndarray,
    index: int,
    direction: int,
    magnitude: float,
    *,
    horizon: int = 10,
    min_fraction: float = 0.35,
) -> bool:
    """Whether the post-change level actually leaves the routine level.

    A benign transient (a short monitoring spike, a flash burst) ends
    with a CUSUM change point too: the *decay* back to normal is a mean
    shift, it persists, and against the elevated spike segment it even
    looks large. What distinguishes it from a fault manifestation is
    where the series lands — after a real abnormal change the metric
    operates at a new level on the change's side of its routine history;
    after a transient's decay it is back exactly where it always was.

    The landing level (mean over the far end of the ``horizon`` ticks
    after the point, past the transient itself) must therefore depart
    from the routine level (the history median) in the change direction
    by at least ``min_fraction`` of the detected magnitude. Points too
    close to the window edge to measure a landing level, and series
    without usable history, are accepted — the check only ever vetoes
    changes with forward evidence of reversion.

    Args:
        history: Raw history preceding the analysed window (the routine
            operating level comes from here).
        values: The analysed window's raw values.
        index: Change-point index within ``values``.
        direction: +1 upward shift, -1 downward.
        magnitude: Detected mean-shift magnitude.
        horizon: Ticks after the point over which the landing level is
            measured.
        min_fraction: Required departure as a fraction of ``magnitude``.
    """
    if len(history) < 20 or direction == 0:
        return True
    post = values[index + max(1, horizon - 4) : index + horizon + 1]
    if len(post) < 3:
        return True
    routine = float(np.median(history.values))
    departure = (float(np.mean(post)) - routine) * direction
    return departure >= min_fraction * magnitude


def censored_onset(
    raw: TimeSeries,
    onset: int,
    direction: int,
    magnitude: float,
    *,
    head: int = 12,
    slope_fraction: float = 0.25,
) -> int:
    """Clamp the onset to the window start when manifestation is censored.

    When a slowly manifesting fault started *before* the look-back window
    (the Table-I DiskHog situation: W too small to cover the onset), the
    series is already trending in the abnormal direction at the window
    boundary. The true onset is then unknown — "window start" is the
    earliest statement the slave can make, and using it keeps concurrent
    slow faults on different components aligned instead of scattering
    their onsets across rollback stopping points.

    Args:
        raw: The raw (unsmoothed) look-back window; the trend test needs
            independent residuals, which smoothing would destroy.
        onset: Onset after tangent rollback.
        direction: Direction of the abnormal change.
        magnitude: Magnitude of the abnormal change.
        head: Ticks at the window start over which the initial trend is
            measured.
        slope_fraction: The initial trend, extrapolated over ``head``
            ticks, must account for at least this fraction of the change
            magnitude to count as "already manifesting".

    Returns:
        ``raw.start`` when censored, otherwise ``onset``.
    """
    if onset <= raw.start or len(raw) < head + 2:
        return onset
    x = np.arange(head, dtype=float)
    y = raw.values[:head]
    slope, intercept = np.polyfit(x, y, 1)
    if np.sign(slope) != np.sign(direction):
        return onset
    if abs(slope) * head < slope_fraction * magnitude:
        return onset
    # The head trend must be statistically significant, not sampling
    # noise: require the slope to exceed three standard errors.
    residuals = y - (slope * x + intercept)
    denom = float(np.sqrt(np.sum((x - x.mean()) ** 2)))
    stderr = float(np.std(residuals, ddof=2)) / max(denom, 1e-12)
    if abs(slope) < 3.0 * stderr:
        return onset
    # The manifestation must actually have *progressed* between the
    # window start and the onset candidate: a head that merely wiggles
    # with the workload while the level near the onset is unchanged is
    # not a censored manifestation.
    span = onset - raw.start
    if span >= 2 * head:
        early = float(np.mean(y))
        late_lo = max(0, span - head)
        late = float(np.mean(raw.values[late_lo:span]))
        if np.sign(late - early) != np.sign(direction):
            return onset
        if abs(late - early) < slope_fraction * magnitude:
            return onset
    return raw.start


def rollback_onset(
    smoothed: TimeSeries,
    change_points: Sequence[ChangePoint],
    selected: ChangePoint,
    *,
    tolerance: float = 0.1,
    span: int = 3,
    max_step_gap: int = 12,
) -> int:
    """Tangent-based rollback to the manifestation start (paper Sec. II-B).

    Starting from the selected abnormal change point, compare the tangent
    (local slope) at the current change point with that at its preceding
    change point; while they are close, roll back. Tangent closeness is
    relative: ``|a - b| <= tolerance * max(|a|, |b|)`` (with a small
    absolute floor), which makes the 0.1 constant scale-free across
    metrics measured in different units.

    Returns:
        The onset timestamp.
    """
    ordered = sorted(change_points, key=lambda p: p.time)
    scale_floor = 1e-3 * (smoothed.std() + 1e-12)
    position = next(
        (i for i, p in enumerate(ordered) if p.time == selected.time), None
    )
    if position is None:
        return selected.time
    current = ordered[position]
    while position > 0:
        previous = ordered[position - 1]
        # A fault manifestation that started earlier shows as a run of
        # nearby change points continuing the same trend. Stop when the
        # preceding point reverses direction or lies too far back — those
        # belong to ordinary pre-fault fluctuation, and rolling across
        # them would inflate how early the manifestation looks.
        if previous.direction != current.direction:
            break
        if current.time - previous.time > max_step_gap:
            break
        slope_current = smoothed.slope_at(current.time, span)
        slope_previous = smoothed.slope_at(previous.time, span)
        gap = abs(slope_current - slope_previous)
        bound = tolerance * max(abs(slope_current), abs(slope_previous))
        if gap > max(bound, scale_floor):
            break
        position -= 1
        current = previous
    return current.time


def detect_window_change_points(
    raw: TimeSeries,
    metric: Metric,
    config: FChainConfig,
    *,
    seed: object = 0,
    span=NULL_SPAN,
) -> Tuple[TimeSeries, List[ChangePoint]]:
    """Smooth one look-back window and run CUSUM + bootstrap on it.

    This is the expensive, purely window-determined prefix of
    :func:`select_abnormal_changes` (the 100+ bootstrap permutations per
    candidate split dominate selection cost). It is split out so the
    incremental engine can cache its output keyed by
    ``(component, metric, window)``: the metric store is append-only, so
    the same window bounds always hold the same samples and the cached
    result stays exact.

    Returns:
        ``(smoothed, points)`` — the smoothed window and its change
        points, exactly as the inline path computes them.
    """
    with span.child(STAGE_SMOOTHING):
        smoothed = smooth_series(raw, config.smoothing_window)
    with span.child(STAGE_CUSUM) as cusum_span:
        points = detect_change_points(
            smoothed,
            bootstraps=config.cusum_bootstraps,
            confidence=config.cusum_confidence,
            min_segment=config.min_segment,
            seed=(seed, str(metric)),
        )
        cusum_span.count("change_points_found", len(points))
    return smoothed, points


def select_abnormal_changes(
    raw: TimeSeries,
    history: TimeSeries,
    metric: Metric,
    config: FChainConfig,
    *,
    seed: object = 0,
    errors: Optional[np.ndarray] = None,
    history_errors: Optional[np.ndarray] = None,
    detected: Optional[Tuple[TimeSeries, List[ChangePoint]]] = None,
    full_series: Optional[TimeSeries] = None,
    span=NULL_SPAN,
) -> List[AbnormalChange]:
    """Run the full slave-side selection pipeline on one metric window.

    Args:
        raw: The look-back window ``[t_v - W, t_v]`` of the raw series.
        history: A longer raw history ending at the window start, used for
            the normal change-magnitude reference and (if ``errors`` is
            not supplied) to train the online prediction model.
        metric: Which metric this is (carried into the result).
        config: FChain configuration.
        seed: Label for the deterministic CUSUM bootstrap stream.
        errors: Optional precomputed *signed* per-sample prediction
            errors (``actual - predicted``) aligned with ``raw`` (the
            slave trains its model online over the full history and
            passes the window slice); if omitted the model is trained
            here over ``history`` + ``raw``.
        history_errors: Signed prediction errors over the training
            history (the samples preceding ``raw``), used to derive the
            model's routine same-direction error level under normal
            operation.
        detected: Optional precomputed ``(smoothed, points)`` pair from
            :func:`detect_window_change_points` (the incremental engine
            caches these per window); if omitted it is computed here.
        full_series: Optional series spanning ``history`` + ``raw``
            contiguously. Callers that already hold such a series (the
            slave's windowed store views) pass it to avoid an O(history)
            concatenation per metric.
        span: Optional parent telemetry span; stage child spans (PAL
            outlier filter, burst thresholds, onset rollback) attach to
            it. Defaults to the shared no-op span.

    Returns:
        Abnormal changes, possibly empty.
    """
    if len(raw) < 2 * config.min_segment:
        return []
    if detected is None:
        detected = detect_window_change_points(
            raw, metric, config, seed=seed, span=span
        )
    smoothed, points = detected
    if not points:
        return []
    with span.child(STAGE_OUTLIERS) as outlier_span:
        reference = reference_change_magnitudes(history)
        outliers = outlier_change_points(
            points, reference, smoothed, zscore=config.outlier_zscore
        )
        outlier_span.count("change_points_filtered", len(points) - len(outliers))
        outlier_span.count("outliers_survived", len(outliers))
    if not outliers:
        return []

    if errors is None:
        combined = TimeSeries(
            np.concatenate([history.values, raw.values]), start=history.start
        )
        all_errors = prediction_errors(
            combined,
            bins=config.markov_bins,
            halflife=config.markov_halflife,
            signed=True,
        )
        errors = all_errors[len(history):]
        if history_errors is None:
            history_errors = all_errors[: len(history)]
    if full_series is not None:
        full = full_series
    else:
        full = TimeSeries(
            np.concatenate([history.values, raw.values]), start=history.start
        ) if len(history) else raw

    # One stacked rfft/irfft over all surviving change points of this
    # metric instead of one FFT pair per point (bit-identical; see
    # repro.core.burst.expected_prediction_errors).
    with span.child(STAGE_BURST) as burst_span:
        burst_thresholds = expected_prediction_errors(
            full,
            [point.time for point in outliers],
            burst_window=config.burst_window,
            high_frequency_fraction=config.high_frequency_fraction,
            percentile=config.burst_percentile,
        )
        burst_span.count("burst_thresholds_computed", len(burst_thresholds))

    abnormal: List[AbnormalChange] = []
    with span.child(STAGE_ROLLBACK) as rollback_span:
        for point, burst_threshold in zip(outliers, burst_thresholds):
            history_reference = 0.0
            if history_errors is not None:
                history_reference = history_error_reference(
                    history_errors,
                    point.direction,
                    config.history_error_percentile,
                )
            actual = actual_prediction_error(
                errors, raw, point.time, direction=point.direction
            )
            expected = float(burst_threshold)
            # The expected error is the larger of the burstiness-derived
            # threshold and the model's own routine error level under normal
            # operation: an error the model already produced regularly (e.g.
            # at recurring flash bursts) does not indicate a fault.
            expected = max(expected, history_reference)
            if actual <= config.prediction_error_margin * expected:
                continue
            if not shift_persists(raw.values, point.time - raw.start, point.magnitude):
                continue
            if not change_departs_from_routine(
                history,
                raw.values,
                point.time - raw.start,
                point.direction,
                point.magnitude,
            ):
                continue
            onset = rollback_onset(
                smoothed, points, point, tolerance=config.tangent_tolerance
            )
            if config.censor_slow_onsets:
                onset = censored_onset(
                    raw, onset, point.direction, point.magnitude
                )
            abnormal.append(
                AbnormalChange(
                    metric=metric,
                    change_point=point,
                    onset_time=onset,
                    prediction_error=actual,
                    expected_error=expected,
                    direction=point.direction,
                )
            )
        rollback_span.count("abnormal_selected", len(abnormal))
    return abnormal
