"""Change-magnitude outlier detection (the PAL filtering step).

Raw CUSUM finds many change points under dynamic workloads. PAL's first
filter keeps only the points whose change magnitude stands out: a change
point is an *outlier candidate* when its magnitude z-score (against all
change points observed for that metric over an extended history window)
exceeds a threshold, and the shift is non-trivial relative to the series'
own scale.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.core.cusum import ChangePoint


def outlier_change_points(
    points: Sequence[ChangePoint],
    reference_magnitudes: Sequence[float],
    series: TimeSeries,
    *,
    zscore: float = 2.0,
    min_relative_shift: float = 0.15,
) -> List[ChangePoint]:
    """Select magnitude-outlier change points.

    Args:
        points: Candidate change points (from the look-back window).
        reference_magnitudes: Change magnitudes observed over a longer
            history of the same metric; provides the normal-change scale.
            The candidates' own magnitudes are included automatically.
        series: The series the candidates came from (for the scale check).
        zscore: Required z-score against the reference distribution.
        min_relative_shift: Required magnitude as a fraction of the
            series' mean absolute level, so tiny-but-rare wiggles on an
            almost-constant metric do not qualify.

    Returns:
        The outlier candidates, sorted by time.
    """
    if not points:
        return []
    reference = np.asarray(
        list(reference_magnitudes) + [p.magnitude for p in points], dtype=float
    )
    mean = float(reference.mean())
    std = float(reference.std())
    level = float(np.mean(np.abs(series.values))) if len(series) else 0.0
    floor = min_relative_shift * max(level, 1e-9)

    selected: List[ChangePoint] = []
    for point in points:
        if point.magnitude < floor:
            continue
        if std > 0:
            score = (point.magnitude - mean) / std
            if score < zscore:
                continue
        # With zero variance every candidate matches the reference level;
        # the relative-shift floor above is then the only discriminator.
        selected.append(point)
    return sorted(selected, key=lambda p: p.time)
