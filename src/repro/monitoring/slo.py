"""Service-level-objective detection.

FChain is triggered by an SLO violation; it does *not* do anomaly detection
itself (paper Sec. II-A, footnote 1). The detectors here mirror the three
SLO definitions used in the evaluation:

* RUBiS — average request response time above 100 ms;
* Hadoop — no job progress for more than 30 seconds;
* System S — average per-tuple processing time above 20 ms.

Detectors are built for *continuous* operation (the online service loop
feeds them one sample per tick, indefinitely):

* samples are keyed by their actual tick — a telemetry gap no longer
  misaligns the series, and :meth:`SLODetector.performance_series`
  reconstructs the missing ticks as NaN slots (the same convention as
  :meth:`repro.common.timeseries.TimeSeries.gaps`);
* a sustained-breach rule never counts samples across a gap — latency
  that was high before and after an outage is two separate streaks;
* history is bounded by an optional ``retention`` window, so a detector
  fed for days does not grow without bound, and :meth:`SLODetector.reset`
  returns a detector to its pristine state for reuse across incidents.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.timeseries import TimeSeries

#: Lazy-compaction slack: retention trimming only rewrites the backing
#: lists once at least this many expired entries accumulated, keeping the
#: per-observe cost amortized O(1) instead of O(history).
_TRIM_SLACK = 64


@dataclass
class SLOStatus:
    """Outcome of feeding one tick into a detector.

    Attributes:
        violated: Whether the SLO is currently violated.
        first_violation: Tick of the first violation seen, if any.
    """

    violated: bool
    first_violation: Optional[int]


class SLODetector:
    """Base class: feed one performance sample per tick, track violations.

    Args:
        retention: Optional bound, in ticks, on the retained performance
            history and violation-tick log. Samples older than
            ``newest tick - retention`` are discarded (``first_violation``
            is remembered regardless). ``None`` (the default) retains
            everything — the historical batch behaviour. Long-running
            feeders (the online service loop) should set a window
            comfortably larger than their evaluation horizon.

    Out-of-order feeding: a sample for the tick already at the head
    replaces the head value (last-wins duplicate resolution, mirroring
    the metric store's tolerant path); a sample older than the head is
    dropped and counted in ``stale_dropped`` — detectors evaluate a
    *current* condition and cannot re-litigate the past.
    """

    def __init__(self, retention: Optional[int] = None) -> None:
        if retention is not None and retention < 1:
            raise ValueError("retention must be at least one tick")
        self.retention = retention
        self.samples: List[float] = []
        self.ticks: List[int] = []
        self.first_violation: Optional[int] = None
        self.violation_ticks: List[int] = []
        self.duplicates = 0
        self.stale_dropped = 0

    def observe(self, t: int, value: float) -> SLOStatus:
        """Record the performance sample for tick ``t`` and evaluate the SLO."""
        t = int(t)
        if self.ticks:
            head = self.ticks[-1]
            if t < head:
                self.stale_dropped += 1
                return SLOStatus(
                    violated=bool(
                        self.violation_ticks
                        and self.violation_ticks[-1] == head
                    ),
                    first_violation=self.first_violation,
                )
            if t == head:
                # Duplicate delivery for the head tick: last wins, and the
                # verdict for the tick is re-evaluated against the new
                # value (a previously recorded violation for it is undone
                # unless it still holds).
                self.duplicates += 1
                self.samples[-1] = float(value)
                if self.violation_ticks and self.violation_ticks[-1] == t:
                    self.violation_ticks.pop()
                return self._finish(t)
        self.samples.append(float(value))
        self.ticks.append(t)
        self._trim(t)
        return self._finish(t)

    def _finish(self, t: int) -> SLOStatus:
        violated = self._evaluate(t)
        if violated:
            if not self.violation_ticks or self.violation_ticks[-1] != t:
                self.violation_ticks.append(t)
            if self.first_violation is None:
                self.first_violation = t
        return SLOStatus(violated=violated, first_violation=self.first_violation)

    def _trim(self, t: int) -> None:
        """Drop entries older than the retention window (amortized O(1))."""
        if self.retention is None:
            return
        horizon = t - self.retention
        cut = bisect_right(self.ticks, horizon)
        if cut >= _TRIM_SLACK or cut == len(self.ticks):
            del self.ticks[:cut]
            del self.samples[:cut]
        vcut = bisect_right(self.violation_ticks, horizon)
        if vcut >= _TRIM_SLACK or vcut == len(self.violation_ticks):
            del self.violation_ticks[:vcut]

    def reset(self) -> None:
        """Forget all samples and violations (reuse across incidents)."""
        self.samples.clear()
        self.ticks.clear()
        self.violation_ticks.clear()
        self.first_violation = None
        self.duplicates = 0
        self.stale_dropped = 0

    def first_violation_after(self, t_from: int) -> Optional[int]:
        """First retained violating tick at or after ``t_from`` (else None)."""
        index = bisect_left(self.violation_ticks, t_from)
        if index < len(self.violation_ticks):
            return self.violation_ticks[index]
        return None

    def performance_series(self) -> TimeSeries:
        """The performance signal as a gap-aware time series.

        Ticks that were never observed appear as NaN slots, so the
        series' time axis stays aligned with the metric store's (and
        :meth:`~repro.common.timeseries.TimeSeries.gaps` reports exactly
        the unobserved stretches). On contiguous feeding this is
        bit-identical to the historical dense series.
        """
        if not self.ticks:
            return TimeSeries(np.empty(0, dtype=float), start=0)
        start = self.ticks[0]
        span = self.ticks[-1] - start + 1
        if span == len(self.ticks):
            values = np.asarray(self.samples, dtype=float)
        else:
            values = np.full(span, math.nan)
            values[np.asarray(self.ticks) - start] = self.samples
        return TimeSeries(values, start=start)

    def _evaluate(self, t: int) -> bool:
        raise NotImplementedError


class LatencySLO(SLODetector):
    """Latency must not stay above a threshold for a sustained period.

    A violation is marked when the latency signal has exceeded the
    threshold for ``sustain`` consecutive seconds — the standard
    anti-flapping rule of production SLO monitors. The sustain period is
    also what gives fault propagation time to reach neighbouring
    components *before* diagnosis is triggered, as in the paper's testbed,
    where the client-side detector reacted on sustained degradation.

    The run is strictly consecutive in *tick time*: a telemetry gap
    breaks the streak, so two separate breaches bracketing an outage are
    never fused into one sustained violation.

    Args:
        threshold: Latency threshold in seconds (0.1 for RUBiS, 0.02 for
            System S).
        sustain: Consecutive seconds above threshold required to declare a
            violation.
        retention: Optional history bound in ticks (see
            :class:`SLODetector`); must exceed ``sustain``.
    """

    def __init__(
        self,
        threshold: float,
        sustain: int = 10,
        retention: Optional[int] = None,
    ) -> None:
        super().__init__(retention=retention)
        if threshold <= 0 or sustain <= 0:
            raise ValueError("threshold and sustain must be positive")
        if retention is not None and retention <= sustain:
            raise ValueError("retention must exceed the sustain period")
        self.threshold = threshold
        self.sustain = sustain

    def _evaluate(self, t: int) -> bool:
        if len(self.samples) < self.sustain:
            return False
        if self.ticks[-1] - self.ticks[-self.sustain] != self.sustain - 1:
            return False  # a gap interrupts the run
        recent = self.samples[-self.sustain :]
        return all(v > self.threshold for v in recent)


class ProgressSLO(SLODetector):
    """A monotone progress score must keep increasing.

    Marks a violation when progress has not increased by at least
    ``min_delta`` over the last ``stall_seconds`` ticks (Hadoop: 30 s).
    The comparison is tick-based: with gappy telemetry the reference is
    the newest sample at least ``stall_seconds`` old, so a gap widens the
    comparison window (conservative) instead of silently shrinking it.

    Args:
        stall_seconds: Stall horizon in ticks (paper: 30 s).
        min_delta: Minimum progress gain over the horizon.
        completion: Progress value at which the job counts as finished —
            stalls at or beyond it are not failures. Defaults to the
            fraction scale (1.0); Hadoop traces reporting percent should
            pass ``completion=100.0``.
        retention: Optional history bound in ticks (see
            :class:`SLODetector`); must exceed ``stall_seconds``.
    """

    def __init__(
        self,
        stall_seconds: int = 30,
        min_delta: float = 1e-6,
        completion: float = 1.0,
        retention: Optional[int] = None,
    ) -> None:
        super().__init__(retention=retention)
        if stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")
        if completion <= 0:
            raise ValueError("completion must be positive")
        if retention is not None and retention <= stall_seconds:
            raise ValueError("retention must exceed the stall horizon")
        self.stall_seconds = stall_seconds
        self.min_delta = min_delta
        self.completion = completion

    def _evaluate(self, t: int) -> bool:
        reference = bisect_right(self.ticks, t - self.stall_seconds) - 1
        if reference < 0:
            return False
        finished = self.samples[-1] >= self.completion - 1e-9 * max(
            1.0, abs(self.completion)
        )
        if finished:
            return False  # job finished; stalls afterwards are not failures
        gained = self.samples[-1] - self.samples[reference]
        return gained < self.min_delta
