"""Service-level-objective detection.

FChain is triggered by an SLO violation; it does *not* do anomaly detection
itself (paper Sec. II-A, footnote 1). The detectors here mirror the three
SLO definitions used in the evaluation:

* RUBiS — average request response time above 100 ms;
* Hadoop — no job progress for more than 30 seconds;
* System S — average per-tuple processing time above 20 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.timeseries import TimeSeries


@dataclass
class SLOStatus:
    """Outcome of feeding one tick into a detector.

    Attributes:
        violated: Whether the SLO is currently violated.
        first_violation: Tick of the first violation seen, if any.
    """

    violated: bool
    first_violation: Optional[int]


class SLODetector:
    """Base class: feed one performance sample per tick, track violations."""

    def __init__(self) -> None:
        self.samples: List[float] = []
        self.first_violation: Optional[int] = None
        self.violation_ticks: List[int] = []
        self._start = 0

    def observe(self, t: int, value: float) -> SLOStatus:
        """Record the performance sample for tick ``t`` and evaluate the SLO."""
        if not self.samples:
            self._start = t
        self.samples.append(float(value))
        violated = self._evaluate(t)
        if violated:
            self.violation_ticks.append(t)
            if self.first_violation is None:
                self.first_violation = t
        return SLOStatus(violated=violated, first_violation=self.first_violation)

    def first_violation_after(self, t_from: int) -> Optional[int]:
        """First violating tick at or after ``t_from`` (None if none)."""
        for tick in self.violation_ticks:
            if tick >= t_from:
                return tick
        return None

    def performance_series(self) -> TimeSeries:
        """The raw performance signal as a time series."""
        return TimeSeries(np.asarray(self.samples, dtype=float), start=self._start)

    def _evaluate(self, t: int) -> bool:
        raise NotImplementedError


class LatencySLO(SLODetector):
    """Latency must not stay above a threshold for a sustained period.

    A violation is marked when the latency signal has exceeded the
    threshold for ``sustain`` consecutive seconds — the standard
    anti-flapping rule of production SLO monitors. The sustain period is
    also what gives fault propagation time to reach neighbouring
    components *before* diagnosis is triggered, as in the paper's testbed,
    where the client-side detector reacted on sustained degradation.

    Args:
        threshold: Latency threshold in seconds (0.1 for RUBiS, 0.02 for
            System S).
        sustain: Consecutive seconds above threshold required to declare a
            violation.
    """

    def __init__(self, threshold: float, sustain: int = 10) -> None:
        super().__init__()
        if threshold <= 0 or sustain <= 0:
            raise ValueError("threshold and sustain must be positive")
        self.threshold = threshold
        self.sustain = sustain

    def _evaluate(self, t: int) -> bool:
        if len(self.samples) < self.sustain:
            return False
        recent = self.samples[-self.sustain :]
        return all(v > self.threshold for v in recent)


class ProgressSLO(SLODetector):
    """A monotone progress score must keep increasing.

    Marks a violation when progress has not increased by at least
    ``min_delta`` over the last ``stall_seconds`` ticks (Hadoop: 30 s).
    """

    def __init__(self, stall_seconds: int = 30, min_delta: float = 1e-6) -> None:
        super().__init__()
        if stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")
        self.stall_seconds = stall_seconds
        self.min_delta = min_delta

    def _evaluate(self, t: int) -> bool:
        if len(self.samples) <= self.stall_seconds:
            return False
        gained = self.samples[-1] - self.samples[-1 - self.stall_seconds]
        if self.samples[-1] >= 1.0 - 1e-9:
            return False  # job finished; stalls afterwards are not failures
        return gained < self.min_delta
