"""Metric storage and SLO detection.

The FChain slaves continuously sample six system metrics per guest VM at
1 Hz; the application side exposes an SLO signal (response time, job
progress, or per-tuple processing time). This package holds the metric
store both sides share and the SLO detectors that trigger diagnosis.

The supported write surface is :meth:`MetricStore.ingest` fed with
:class:`IngestBatch` / :class:`IngestRun`; strictness is a policy preset
(:data:`STRICT_POLICY`), not a separate API. Import those names from
here — ``repro.monitoring.store`` internals are not a stable surface.
"""

from repro.monitoring.quality import (
    DEFAULT_POLICY,
    DataQualityPolicy,
    DataQualityReport,
    STRICT_POLICY,
    SeriesQuality,
)
from repro.monitoring.slo import (
    LatencySLO,
    ProgressSLO,
    SLODetector,
    SLOStatus,
)
from repro.monitoring.spill import SegmentSpill
from repro.monitoring.store import IngestBatch, IngestRun, MetricStore

__all__ = [
    "DEFAULT_POLICY",
    "DataQualityPolicy",
    "DataQualityReport",
    "IngestBatch",
    "IngestRun",
    "LatencySLO",
    "MetricStore",
    "ProgressSLO",
    "STRICT_POLICY",
    "SegmentSpill",
    "SeriesQuality",
    "SLODetector",
    "SLOStatus",
]
