"""Metric storage and SLO detection.

The FChain slaves continuously sample six system metrics per guest VM at
1 Hz; the application side exposes an SLO signal (response time, job
progress, or per-tuple processing time). This package holds the metric
store both sides share and the SLO detectors that trigger diagnosis.
"""

from repro.monitoring.quality import (
    DataQualityPolicy,
    DataQualityReport,
    SeriesQuality,
)
from repro.monitoring.slo import (
    LatencySLO,
    ProgressSLO,
    SLODetector,
    SLOStatus,
)
from repro.monitoring.store import MetricStore

__all__ = [
    "DataQualityPolicy",
    "DataQualityReport",
    "LatencySLO",
    "MetricStore",
    "ProgressSLO",
    "SeriesQuality",
    "SLODetector",
    "SLOStatus",
]
