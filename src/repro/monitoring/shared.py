"""Zero-copy sharing of a :class:`MetricStore` across processes.

The process-based :class:`~repro.core.engine.SlavePool` executor must hand
every worker the full metric history without pickling it per task (a
fleet-scale store is hundreds of megabytes). This module flattens each
series' *retained* ring window into one ``multiprocessing.shared_memory``
segment:

* the master calls :class:`SharedStoreExport` once per diagnosis, paying
  one vectorized copy of each retained ring view into the segment —
  because the rings are mirrored, every view is already one contiguous
  slice regardless of where the ring head is;
* workers call :func:`attach_store` with the (tiny, picklable)
  :class:`SharedStoreHandle` and get back a read-only ``MetricStore``
  whose series are numpy views *into the shared segment* — attaching
  copies nothing, no matter how long the history is.

The attached store supports every read path (``series``, ``window``,
``metrics_for``, ``components``, ``series_quality``) byte-for-byte
identically to the original, including rings that have wrapped: each
layout entry carries the series' retained-start timestamp, so an
attached series reports the same clipped ``start`` as the live ring.
Writing to an attached store raises.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

from repro.common.types import ComponentId, Metric
from repro.monitoring.quality import DataQualityPolicy, SeriesQuality
from repro.monitoring.store import (
    DEFAULT_RETENTION,
    KIND_MISSING,
    KIND_OBSERVED,
    MetricStore,
    _KIND_NAMES,
    _Ring,
)

#: Reverse of the gap-bitmap name table: kind name -> bitmap code.
_KIND_CODES = {name: code for code, name in _KIND_NAMES.items()}

#: One series of the flattened layout: (component, metric value, element
#: offset into the segment, element count, first retained slot).
_SeriesSpec = Tuple[ComponentId, str, int, int, int]

#: One series' ingest-quality snapshot: (component, metric value, stats).
#: The snapshot's ``gap_slots`` is pre-materialized from the gap bitmap,
#: so workers reproduce the master's quality accounting bit for bit.
_QualitySpec = Tuple[ComponentId, str, SeriesQuality]


@dataclass(frozen=True)
class SharedStoreHandle:
    """Picklable description of an exported store segment.

    Besides the per-series layout, the handle carries the store's
    data-quality context (policy, per-series ingest counters, revision)
    so a worker's attached view reproduces the master's
    ``DataQualityReport``s bit for bit.
    """

    shm_name: str
    start: int
    length: int
    layout: Tuple[_SeriesSpec, ...]
    policy: Optional[DataQualityPolicy] = None
    quality: Tuple[_QualitySpec, ...] = ()
    revision: int = 0

    @property
    def total_elements(self) -> int:
        return sum(count for _, _, _, count, _ in self.layout)


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one owned segment (idempotent via finalize)."""
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - double unlink
        pass


class SharedStoreExport:
    """Owner side of a shared-memory store snapshot.

    Flattens every (component, metric) series' retained window into one
    float64 segment. The export owns the segment: call :meth:`close`
    (idempotent) when all workers are done with it — on POSIX, unlinking
    only removes the name, so workers that already attached keep reading
    valid memory. A ``weakref.finalize`` guard unlinks the segment even
    when ``close()`` is never reached (a worker dying mid-attach, an
    exception between export and cleanup): dropping the last reference —
    or interpreter shutdown — releases the ``/dev/shm`` entry.
    """

    def __init__(self, store: MetricStore) -> None:
        views = []
        offset = 0
        layout = []
        for component in store.components:
            for metric in store.metrics_for(component):
                series = store.series(component, metric)
                first_slot = series.start - store.start
                layout.append(
                    (
                        component,
                        metric.value,
                        offset,
                        len(series),
                        first_slot,
                    )
                )
                views.append(series.values)
                offset += len(series)
        nbytes = max(1, offset * np.dtype(np.float64).itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._finalizer = weakref.finalize(
            self, _release_segment, self._shm
        )
        flat = np.ndarray((offset,), dtype=np.float64, buffer=self._shm.buf)
        for (_, _, col_offset, count, _), values in zip(layout, views):
            flat[col_offset : col_offset + count] = values
        self.handle = SharedStoreHandle(
            shm_name=self._shm.name,
            start=store.start,
            length=store.length,
            layout=tuple(layout),
            policy=store.policy,
            quality=tuple(
                (
                    component,
                    metric.value,
                    store.series_quality(component, metric).snapshot(),
                )
                for (component, metric) in sorted(
                    store._quality, key=lambda key: (key[0], key[1].value)
                )
            ),
            revision=store.revision,
        )

    def close(self) -> None:
        """Release and unlink the segment (safe to call repeatedly)."""
        if self._shm is None:
            return
        # The finalizer runs at most once, so an earlier GC-triggered
        # release makes this a no-op rather than a double unlink.
        self._finalizer()
        self._shm = None

    def __enter__(self) -> "SharedStoreExport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_store(handle: SharedStoreHandle) -> MetricStore:
    """Open a read-only ``MetricStore`` view of an exported segment.

    The returned store's series are zero-copy numpy views into the
    shared segment, wrapped as *flat* (read-only) rings; the segment
    mapping is kept alive by the store object itself.
    """
    # Attaching re-registers the segment with the resource tracker (a
    # known pre-3.13 wart). Forked workers — and in-process attaches —
    # share the exporter's tracker, where the duplicate registration is
    # a set no-op and the exporter's unlink() cleans it up; unregistering
    # here instead would strip the exporter's own registration and make
    # that unlink trip a tracker KeyError. Under a spawn fallback the
    # worker's private tracker may log a benign "leaked shared_memory"
    # warning when a long-lived worker finally exits.
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    flat = np.ndarray(
        (handle.total_elements,), dtype=np.float64, buffer=shm.buf
    )
    store = MetricStore(start=handle.start, policy=handle.policy)
    store._length = handle.length
    store._attached = True
    for component, metric_value, offset, count, first_slot in handle.layout:
        key = (component, Metric(metric_value))
        store._series[key] = _Ring.flat(
            flat[offset : offset + count], base=first_slot
        )
    for component, metric_value, qual in handle.quality:
        store._quality[(component, Metric(metric_value))] = qual
    store._revision = handle.revision
    store._shm = shm  # keep the mapping alive as long as the store
    return store


def materialize_store(
    handle: SharedStoreHandle,
    *,
    retention: int = DEFAULT_RETENTION,
    spill=None,
) -> MetricStore:
    """Rebuild a *writable* ``MetricStore`` from an exported snapshot.

    Where :func:`attach_store` hands out a read-only zero-copy view for
    the lifetime of one diagnosis, this copies the snapshot out of the
    segment into fresh mirrored rings so ingest can continue — the fleet
    layer uses it to relocate a tenant's store to another shard worker.

    The rebuilt store is indistinguishable from the original live store
    for every read and every future ingest: retained values, per-slot
    gap kinds, quality counters (including the learned ``skew_offset``),
    ``length`` and ``revision`` all carry over. Slots evicted from the
    original ring before export are re-padded as missing, so the ring
    head lands on the same absolute slot and future eviction behaves
    identically (pass the original store's ``retention``).
    """
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    try:
        flat = np.ndarray(
            (handle.total_elements,), dtype=np.float64, buffer=shm.buf
        )
        store = MetricStore(
            start=handle.start,
            policy=handle.policy,
            retention=retention,
            spill=spill,
        )
        for component, metric_value, offset, count, first_slot in (
            handle.layout
        ):
            key = (component, Metric(metric_value))
            ring = store._ring(key)
            if first_slot > 0:
                # Evicted history: values are gone, but the head must
                # land on the same absolute slot as the source ring.
                ring.append_run(
                    np.full(first_slot, np.nan), KIND_MISSING, None, key
                )
            ring.append_run(
                np.array(flat[offset : offset + count]),
                KIND_OBSERVED,
                None,
                key,
            )
        for component, metric_value, qual in handle.quality:
            key = (component, Metric(metric_value))
            snap = qual.snapshot()
            gap_slots = snap.gap_slots
            # Live stores keep gap state in the ring bitmap, not in the
            # quality record — restore the bitmap and clear the map.
            snap.gap_slots = {}
            store._quality[key] = snap
            ring = store._series.get(key)
            if ring is None:
                continue
            for slot, name in gap_slots.items():
                if ring.first <= slot < ring.head:
                    ring.set_kind(slot, _KIND_CODES[name])
        store._length = handle.length
        store._revision = handle.revision
        return store
    finally:
        shm.close()
