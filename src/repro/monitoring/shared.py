"""Zero-copy sharing of a :class:`MetricStore` across processes.

The process-based :class:`~repro.core.engine.SlavePool` executor must hand
every worker the full metric history without pickling it per task (a
fleet-scale store is hundreds of megabytes). This module flattens the
store's numpy columns into one ``multiprocessing.shared_memory`` segment:

* the master calls :func:`export_store` once per diagnosis, paying one
  vectorized copy of each column into the segment;
* workers call :func:`attach_store` with the (tiny, picklable)
  :class:`SharedStoreHandle` and get back a read-only ``MetricStore``
  whose columns are numpy views *into the shared segment* — attaching
  copies nothing, no matter how long the history is.

The attached store supports every read path (``series``, ``window``,
``metrics_for``, ``components``) byte-for-byte identically to the
original; writing to it is unsupported and unprotected — it exists only
for slave-side analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

from repro.common.types import ComponentId, Metric
from repro.monitoring.quality import DataQualityPolicy, SeriesQuality
from repro.monitoring.store import MetricStore

#: One column of the flattened layout: (component, metric value, element
#: offset into the segment, element count).
_ColumnSpec = Tuple[ComponentId, str, int, int]

#: One series' ingest-quality snapshot: (component, metric value, stats).
_QualitySpec = Tuple[ComponentId, str, SeriesQuality]


@dataclass(frozen=True)
class SharedStoreHandle:
    """Picklable description of an exported store segment.

    Besides the column layout, the handle carries the store's
    data-quality context (policy, per-series ingest counters, revision)
    so a worker's attached view reproduces the master's
    ``DataQualityReport``s bit for bit.
    """

    shm_name: str
    start: int
    length: int
    layout: Tuple[_ColumnSpec, ...]
    policy: Optional[DataQualityPolicy] = None
    quality: Tuple[_QualitySpec, ...] = ()
    revision: int = 0

    @property
    def total_elements(self) -> int:
        return sum(count for _, _, _, count in self.layout)


class SharedStoreExport:
    """Owner side of a shared-memory store snapshot.

    Flattens every (component, metric) column's valid prefix into one
    float64 segment. The export owns the segment: call :meth:`close`
    (idempotent) when all workers are done with it — on POSIX, unlinking
    only removes the name, so workers that already attached keep reading
    valid memory.
    """

    def __init__(self, store: MetricStore) -> None:
        columns = []
        offset = 0
        layout = []
        for component in store.components:
            for metric in store.metrics_for(component):
                values = store.series(component, metric).values
                layout.append((component, metric.value, offset, len(values)))
                columns.append(values)
                offset += len(values)
        nbytes = max(1, offset * np.dtype(np.float64).itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        flat = np.ndarray((offset,), dtype=np.float64, buffer=self._shm.buf)
        for (_, _, col_offset, count), values in zip(layout, columns):
            flat[col_offset : col_offset + count] = values
        self.handle = SharedStoreHandle(
            shm_name=self._shm.name,
            start=store.start,
            length=store.length,
            layout=tuple(layout),
            policy=store.policy,
            quality=tuple(
                (component, metric.value, qual.snapshot())
                for (component, metric), qual in sorted(
                    store._quality.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
                )
            ),
            revision=store.revision,
        )

    def close(self) -> None:
        """Release and unlink the segment (safe to call repeatedly)."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
        self._shm = None

    def __enter__(self) -> "SharedStoreExport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_store(handle: SharedStoreHandle) -> MetricStore:
    """Open a read-only ``MetricStore`` view of an exported segment.

    The returned store's columns are zero-copy numpy views into the
    shared segment; the segment mapping is kept alive by the store
    object itself. Do not write to the returned store.
    """
    # Attaching re-registers the segment with the resource tracker (a
    # known pre-3.13 wart). Forked workers — and in-process attaches —
    # share the exporter's tracker, where the duplicate registration is
    # a set no-op and the exporter's unlink() cleans it up; unregistering
    # here instead would strip the exporter's own registration and make
    # that unlink trip a tracker KeyError. Under a spawn fallback the
    # worker's private tracker may log a benign "leaked shared_memory"
    # warning when a long-lived worker finally exits.
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    flat = np.ndarray(
        (handle.total_elements,), dtype=np.float64, buffer=shm.buf
    )
    store = MetricStore(start=handle.start, policy=handle.policy)
    store._length = handle.length
    for component, metric_value, offset, count in handle.layout:
        key = (component, Metric(metric_value))
        column = flat[offset : offset + count]
        # The column array doubles as the sample list: MetricStore only
        # needs len() and indexed reads from ``_data`` on read paths.
        store._data[key] = column
        store._columns[key] = column
        store._filled[key] = count
    for component, metric_value, qual in handle.quality:
        store._quality[(component, Metric(metric_value))] = qual
    store._revision = handle.revision
    store._shm = shm  # keep the mapping alive as long as the store
    return store
