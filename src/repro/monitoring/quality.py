"""Data-quality policies and reports for degraded telemetry.

FChain's algorithms assume clean 1 Hz samples from every VM; a
production collector sees missing samples, NaN readings, duplicated and
out-of-order deliveries, clock skew between slaves, and VMs joining or
leaving mid-window. This module is the vocabulary of the resilience
layer that lets the pipeline run on such telemetry with *graceful
degradation*:

* :class:`DataQualityPolicy` — how ingestion and analysis respond to
  each defect class (reject / forward-fill / interpolate, gap budget,
  skew alignment, duplicate handling, coverage floor);
* :class:`SeriesQuality` — mutable per-(component, metric) ingest
  counters kept by :class:`~repro.monitoring.store.MetricStore`;
* :class:`DataQualityReport` — the frozen per-component summary a
  :class:`~repro.core.propagation.ComponentReport` (and through it every
  :class:`~repro.core.diagnosis.Diagnosis`) carries, so operators can
  see *why* a verdict was degraded or inconclusive.

The critical invariant, regression-tested: on clean telemetry every
stage of the pipeline is bit-identical to a run without the layer —
policies only change behaviour where the data is already broken.

Drop/fill/skew events are exported as counters through the existing
Prometheus registry (:mod:`repro.obs.registry`); clean ingest emits
nothing, so the hot path stays counter-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import ConfigurationError

#: Valid per-defect strategies.
INVALID_ACTIONS = ("gap", "reject")
FILL_METHODS = ("none", "forward", "interpolate")
DUPLICATE_ACTIONS = ("first", "last", "reject")
GAP_ACTIONS = ("pad", "reject")

#: Confidence grades a component-level quality report can carry.
CONFIDENCE_FULL = "full"
CONFIDENCE_DEGRADED = "degraded"
CONFIDENCE_INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class DataQualityPolicy:
    """How the pipeline responds to each class of telemetry defect.

    Attributes:
        on_invalid: NaN/inf sample handling — ``"gap"`` records the tick
            as missing (repairable like any other gap), ``"reject"``
            raises :class:`~repro.common.errors.DataQualityError` (the
            strict pre-policy behaviour).
        fill: Bounded gap repair — ``"none"`` leaves holes as NaN,
            ``"forward"`` repeats the last observed value,
            ``"interpolate"`` draws the line between the observed
            neighbours. Both repairs stay inside the observed min/max by
            construction.
        max_gap: Longest run of consecutive missing ticks the fill
            policy may repair; longer outages stay NaN (*unfillable*)
            and degrade the affected metric instead of being papered
            over.
        max_skew: Tolerance, in ticks, for timestamp disagreement: a
            series whose first sample is offset by at most this much is
            clock-skew aligned (see ``align_skew``), and late
            out-of-order samples no older than this many ticks behind
            the series head are still accepted as backfill.
        align_skew: Learn a constant per-series clock offset from the
            first timestamped sample (slaves with skewed clocks are
            offset by a constant); subsequent timestamps are shifted
            back onto the master grid.
        on_duplicate: Second delivery for an already-observed tick —
            ``"first"`` keeps the original, ``"last"`` overwrites,
            ``"reject"`` raises.
        on_gap: What a hole between the series head and an arriving
            sample means — ``"pad"`` records the missing ticks (and
            hands them to the fill policy), ``"reject"`` raises: the
            writer promised contiguous 1 Hz delivery, so a gap is a
            programming error, not a telemetry defect. A series' very
            first sample is exempt (a late-joining VM legitimately
            starts mid-run).
        min_coverage: Fraction of a metric's look-back window that must
            be covered by *observed* (not filled) samples for the metric
            to take part in change-point selection; below it the metric
            is inconclusive. A component with no conclusive metric
            degrades to an inconclusive verdict rather than risking a
            mis-ranking built on mostly-synthesized data.
    """

    on_invalid: str = "gap"
    fill: str = "interpolate"
    max_gap: int = 10
    max_skew: int = 10
    align_skew: bool = True
    on_duplicate: str = "first"
    on_gap: str = "pad"
    min_coverage: float = 0.6

    def __post_init__(self) -> None:
        if self.on_invalid not in INVALID_ACTIONS:
            raise ConfigurationError(
                f"on_invalid={self.on_invalid!r}: choose one of "
                f"{INVALID_ACTIONS}"
            )
        if self.fill not in FILL_METHODS:
            raise ConfigurationError(
                f"fill={self.fill!r}: choose one of {FILL_METHODS}"
            )
        if self.on_duplicate not in DUPLICATE_ACTIONS:
            raise ConfigurationError(
                f"on_duplicate={self.on_duplicate!r}: choose one of "
                f"{DUPLICATE_ACTIONS}"
            )
        if self.on_gap not in GAP_ACTIONS:
            raise ConfigurationError(
                f"on_gap={self.on_gap!r}: choose one of {GAP_ACTIONS}"
            )
        if self.max_gap < 0:
            raise ConfigurationError("max_gap must be >= 0 ticks")
        if self.max_skew < 0:
            raise ConfigurationError("max_skew must be >= 0 ticks")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise ConfigurationError("min_coverage must be in [0, 1]")


#: Policy the analysis side falls back to when a store carries no
#: explicit policy but its data turns out to contain gaps (e.g. a store
#: built via ``from_arrays`` from already-holey telemetry).
DEFAULT_POLICY = DataQualityPolicy()

#: The clean-data contract as a policy preset: every defect class is an
#: error. Batch ingestion into a store constructed *without* a policy
#: runs under this preset, which is what makes the historical strict
#: ``record``/``advance`` path a special case of the unified
#: ``MetricStore.ingest`` surface rather than a separate code path.
STRICT_POLICY = DataQualityPolicy(
    on_invalid="reject",
    fill="none",
    max_gap=0,
    max_skew=0,
    align_skew=False,
    on_duplicate="reject",
    on_gap="reject",
)


@dataclass
class SeriesQuality:
    """Mutable ingest counters for one (component, metric) series.

    ``observed`` counts samples that landed with their own value;
    ``filled_*`` counts slots synthesized by the fill policy; ``missing``
    counts slots currently NaN (unfillable or not-yet-backfilled);
    ``invalid``/``late_dropped``/``duplicates`` count samples the policy
    dropped. ``skew_offset`` is the learned per-series clock offset
    (``None`` until the first sample arrives).
    """

    seen: int = 0
    observed: int = 0
    filled_forward: int = 0
    filled_interpolated: int = 0
    missing: int = 0
    invalid: int = 0
    duplicates: int = 0
    late_accepted: int = 0
    late_dropped: int = 0
    skew_offset: Optional[int] = None
    #: Slot index -> how the slot was synthesized ("missing"/"forward"/
    #: "interpolate"). Consulted when a late sample backfills the slot,
    #: and by the analysis side to exclude synthesized slots from the
    #: observed-coverage ratio.
    gap_slots: Dict[int, str] = field(default_factory=dict, repr=False)

    @property
    def filled(self) -> int:
        return self.filled_forward + self.filled_interpolated

    @property
    def dropped(self) -> int:
        return self.invalid + self.duplicates + self.late_dropped

    def snapshot(self) -> "SeriesQuality":
        """Detached copy (picklable, read-only use; shared-memory export).

        The slot map is copied too: the analysis side consults it to
        tell genuinely observed samples from policy-synthesized ones, so
        a process-pool worker must see the same map as the warm slave.
        """
        return SeriesQuality(
            seen=self.seen,
            observed=self.observed,
            filled_forward=self.filled_forward,
            filled_interpolated=self.filled_interpolated,
            missing=self.missing,
            invalid=self.invalid,
            duplicates=self.duplicates,
            late_accepted=self.late_accepted,
            late_dropped=self.late_dropped,
            skew_offset=self.skew_offset,
            gap_slots=dict(self.gap_slots),
        )

    def merge(self, other: "SeriesQuality") -> None:
        """Accumulate another series' counters into this aggregate."""
        self.seen += other.seen
        self.observed += other.observed
        self.filled_forward += other.filled_forward
        self.filled_interpolated += other.filled_interpolated
        self.missing += other.missing
        self.invalid += other.invalid
        self.duplicates += other.duplicates
        self.late_accepted += other.late_accepted
        self.late_dropped += other.late_dropped


@dataclass(frozen=True)
class DataQualityReport:
    """Per-component data-quality summary attached to a diagnosis.

    Attributes:
        component: The component the report describes.
        samples_expected: Look-back-window slots the analysis wanted,
            summed over the component's metrics.
        samples_observed: Slots covered by genuinely observed values.
        samples_filled: Slots repaired by the fill policy (at ingest or
            at window extraction).
        samples_missing: Slots that stayed NaN (unfillable gaps,
            late-joining/leaving VM, truncated tail).
        samples_dropped: Ingest-side drops (invalid readings, stale late
            arrivals, duplicates) for this component's series.
        metrics_total: Metrics with enough recorded history to consider.
        metrics_analyzed: Metrics that passed the coverage floor and
            went through change-point selection.
        metrics_inconclusive: Metrics excluded for insufficient coverage
            or unfillable gaps inside the look-back window.
        coverage: ``samples_observed / samples_expected`` (1.0 when
            nothing was expected — an empty report is not degraded).
        confidence: ``"full"`` (clean data), ``"degraded"`` (analysis
            ran but on repaired/partial data) or ``"inconclusive"`` (no
            metric met the coverage floor; the component's verdict must
            not be trusted either way).
    """

    component: str
    samples_expected: int = 0
    samples_observed: int = 0
    samples_filled: int = 0
    samples_missing: int = 0
    samples_dropped: int = 0
    metrics_total: int = 0
    metrics_analyzed: int = 0
    metrics_inconclusive: int = 0
    coverage: float = 1.0
    confidence: str = CONFIDENCE_FULL

    @property
    def clean(self) -> bool:
        """True when no defect of any kind touched this component."""
        return (
            self.samples_filled == 0
            and self.samples_missing == 0
            and self.samples_dropped == 0
            and self.metrics_inconclusive == 0
        )

    @classmethod
    def build(
        cls,
        component: str,
        *,
        samples_expected: int,
        samples_observed: int,
        samples_filled: int,
        samples_missing: int,
        samples_dropped: int,
        metrics_total: int,
        metrics_analyzed: int,
        metrics_inconclusive: int,
    ) -> "DataQualityReport":
        """Derive coverage and the confidence grade from the raw counts."""
        coverage = (
            samples_observed / samples_expected if samples_expected else 1.0
        )
        if metrics_total and metrics_analyzed == 0:
            confidence = CONFIDENCE_INCONCLUSIVE
        elif (
            samples_filled
            or samples_missing
            or samples_dropped
            or metrics_inconclusive
        ):
            confidence = CONFIDENCE_DEGRADED
        else:
            confidence = CONFIDENCE_FULL
        return cls(
            component=component,
            samples_expected=samples_expected,
            samples_observed=samples_observed,
            samples_filled=samples_filled,
            samples_missing=samples_missing,
            samples_dropped=samples_dropped,
            metrics_total=metrics_total,
            metrics_analyzed=metrics_analyzed,
            metrics_inconclusive=metrics_inconclusive,
            coverage=coverage,
            confidence=confidence,
        )


# ---------------------------------------------------------------------
# Prometheus counters for ingest-time quality events
# ---------------------------------------------------------------------
class IngestMetrics:
    """Lazily created drop/fill/skew counters on a metrics registry.

    One instance is cached per policy-enabled store; counters are only
    touched when a defect actually occurs, so clean ingest pays nothing.
    """

    def __init__(self, registry=None) -> None:
        if registry is None:
            from repro.obs.registry import default_registry

            registry = default_registry()
        self.dropped = registry.counter(
            "fchain_ingest_dropped_total",
            "Samples dropped at ingestion by the data-quality policy",
            ("reason",),
        )
        self.filled = registry.counter(
            "fchain_ingest_filled_total",
            "Gap ticks synthesized by the fill policy",
            ("method",),
        )
        self.gap_ticks = registry.counter(
            "fchain_ingest_gap_ticks_total",
            "Gap ticks recorded as missing (unfilled) at ingestion",
        )
        self.backfilled = registry.counter(
            "fchain_ingest_backfilled_total",
            "Late out-of-order samples accepted into an open slot",
        )
        self.skew_aligned = registry.counter(
            "fchain_ingest_skew_aligned_total",
            "Series whose clock skew was detected and aligned",
        )


__all__ = [
    "CONFIDENCE_DEGRADED",
    "CONFIDENCE_FULL",
    "CONFIDENCE_INCONCLUSIVE",
    "DEFAULT_POLICY",
    "DataQualityPolicy",
    "DataQualityReport",
    "IngestMetrics",
    "STRICT_POLICY",
    "SeriesQuality",
]
