"""Import/export of metric stores.

A downstream user of FChain has their own monitoring pipeline; these
helpers move 1 Hz metric data in and out of the :class:`MetricStore` via a
plain long-format CSV::

    time,component,metric,value
    0,web,cpu_usage,31.5
    0,web,memory_usage,402.1
    ...

so recorded production metrics can be diagnosed offline with
``python -m repro analyze metrics.csv --violation <t>``.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.common.types import ComponentId, Metric, MetricSample
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.store import IngestBatch, MetricStore

#: CSV header, fixed.
HEADER = ("time", "component", "metric", "value")


def save_store_csv(store: MetricStore, path) -> None:
    """Write a store's complete samples to a long-format CSV file."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        for component in store.components:
            for metric in store.metrics_for(component):
                series = store.series(component, metric)
                for offset, value in enumerate(series.values):
                    writer.writerow(
                        [series.start + offset, component, metric.value, value]
                    )


def load_store_csv(
    path, policy: Optional[DataQualityPolicy] = None
) -> MetricStore:
    """Load a long-format CSV into a :class:`MetricStore`.

    By default (``policy=None``) the loader is strict: the header above,
    one row per (time, component, metric), every series sampled at 1 Hz
    over the same contiguous time range — anything else raises.

    With a :class:`~repro.monitoring.quality.DataQualityPolicy` the load
    is tolerant: rows stream through :meth:`MetricStore.ingest` in file
    order, so gaps are repaired or recorded as missing, non-finite
    values and duplicates are resolved, and out-of-order rows backfill —
    recorded production telemetry can be diagnosed offline without
    pre-cleaning.

    Raises:
        ReproError: On malformed headers, unknown metrics, and (strict
            mode only) gaps or ragged series.
    """
    path = pathlib.Path(path)
    by_series: Dict[Tuple[ComponentId, Metric], Dict[int, float]] = {}
    rows: List[Tuple[int, ComponentId, Metric, float]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = tuple(next(reader, ()))
        if header != HEADER:
            raise ReproError(
                f"expected CSV header {','.join(HEADER)}, got {header}"
            )
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                time = int(row[0])
                metric = Metric(row[2])
                value = float(row[3])
            except (ValueError, IndexError) as error:
                raise ReproError(
                    f"{path}:{line_number}: bad row {row!r}: {error}"
                ) from error
            rows.append((time, row[1], metric, value))
            by_series.setdefault((row[1], metric), {})[time] = value

    if not by_series:
        raise ReproError(f"{path}: no samples")

    if policy is not None:
        start = min(min(samples) for samples in by_series.values())
        end = max(max(samples) for samples in by_series.values())
        store = MetricStore(start=start, policy=policy)
        store.ingest(
            IngestBatch(
                samples=[
                    MetricSample(component, metric, time, value)
                    for time, component, metric, value in rows
                ],
                watermark=end + 1,
            )
        )
        return store

    starts = {min(samples) for samples in by_series.values()}
    ends = {max(samples) for samples in by_series.values()}
    if len(starts) > 1 or len(ends) > 1:
        raise ReproError(
            f"{path}: series cover different time ranges "
            f"(starts {sorted(starts)}, ends {sorted(ends)})"
        )
    start, end = starts.pop(), ends.pop()
    length = end - start + 1

    data: Dict[ComponentId, Dict[Metric, List[float]]] = {}
    for (component, metric), samples in by_series.items():
        if len(samples) != length:
            missing = length - len(samples)
            raise ReproError(
                f"{path}: {component}/{metric} has {missing} gaps "
                f"(need one sample per second)"
            )
        values = [samples[t] for t in range(start, end + 1)]
        data.setdefault(component, {})[metric] = values
    return MetricStore.from_arrays(data, start=start)
