"""In-memory store for sampled metric time series.

One :class:`MetricStore` holds every (component, metric) series of one
application run at the 1-second sampling interval. FChain slaves read
look-back windows out of it; the evaluation harness replays the same store
through every localization scheme so all schemes see identical data.

Reads are zero-copy: each series is mirrored into a capacity-doubling
numpy column the first time it is read, subsequent reads only convert the
newly appended tail, and :meth:`MetricStore.series` /
:meth:`MetricStore.window` hand out *views* of that column. Because the
store is append-only, a view's contents are immutable even while the run
keeps recording — which is what lets the incremental diagnosis engine
slice windows out of a live store without snapshotting it.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.common.errors import DataQualityError
from repro.common.timeseries import TimeSeries
from repro.common.types import METRIC_NAMES, ComponentId, Metric
from repro.monitoring.quality import (
    DataQualityPolicy,
    IngestMetrics,
    SeriesQuality,
)

_Key = Tuple[ComponentId, Metric]

#: Initial capacity of a lazily materialized numpy column.
_MIN_COLUMN_CAPACITY = 256


class MetricStore:
    """Append-only storage of per-component metric samples.

    Two write interfaces exist:

    * :meth:`record` / :meth:`advance` — the strict clean-data path:
      samples arrive tick by tick (1 Hz) and timestamps are derived from
      append order. This path is untouched by the resilience layer and
      stays bit-identical to the historical behaviour.
    * :meth:`ingest` / :meth:`record_at` / :meth:`advance_to` — the
      tolerant timestamped path, available when the store was built with
      a :class:`~repro.monitoring.quality.DataQualityPolicy`. It
      validates each sample, repairs bounded gaps, aligns constant clock
      skew, backfills late out-of-order arrivals and resolves
      duplicates, keeping per-series
      :class:`~repro.monitoring.quality.SeriesQuality` counters that the
      diagnosis surfaces as per-component ``DataQualityReport``s.

    One caveat on the tolerant path: a late arrival backfills an
    already-padded slot in place, so views handed out *while the slot
    was still open* observe the repair. :attr:`revision` increments on
    every such in-place write; window-keyed caches include it so a
    repaired window is never served from a stale cache entry.

    Concurrency: the online service loop ingests from one thread while a
    dispatched diagnosis reads columns from another. The numpy-mirror
    bookkeeping (``_columns``/``_filled``) is guarded by a lock so a
    reader syncing a column tail cannot interleave with a backfill
    rewrite; single-writer ingest is still assumed. The lock is excluded
    from pickling/deepcopy (``SimulationEngine.fork`` deep-copies
    stores) and recreated on restore.
    """

    def __init__(
        self, start: int = 0, policy: Optional[DataQualityPolicy] = None
    ) -> None:
        self.start = start
        self.policy = policy
        self._data: Dict[_Key, List[float]] = {}
        self._length = 0
        # Lazily synced numpy mirrors of ``_data``: column array plus how
        # many leading entries of it are valid.
        self._columns: Dict[_Key, np.ndarray] = {}
        self._filled: Dict[_Key, int] = {}
        # Data-quality bookkeeping (tolerant path only).
        self._quality: Dict[_Key, SeriesQuality] = {}
        self._revision = 0
        self._ingest_metrics: Optional[IngestMetrics] = None
        # Guards the mirror bookkeeping against a diagnosis thread
        # reading columns while the ingest thread rewrites a past slot.
        self._mirror_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_mirror_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._mirror_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, component: ComponentId, values: Mapping[Metric, float]) -> None:
        """Append one tick of samples for a component.

        Every monitored component must be recorded once per tick; the store
        checks series stay aligned when reading.
        """
        for metric, value in values.items():
            self._data.setdefault((component, metric), []).append(float(value))

    def advance(self) -> None:
        """Mark the end of a tick (all components recorded)."""
        self._length += 1

    # ------------------------------------------------------------------
    # Tolerant timestamped ingestion (the data-quality path)
    # ------------------------------------------------------------------
    @property
    def revision(self) -> int:
        """Bumped whenever a past slot is rewritten (backfill/overwrite)."""
        return self._revision

    def record_at(
        self, component: ComponentId, values: Mapping[Metric, float], time: int
    ) -> None:
        """Ingest one component's tick of samples at an explicit timestamp."""
        for metric, value in values.items():
            self.ingest(component, metric, time, value)

    def advance_to(self, time: int) -> None:
        """Mark every tick before ``time`` as complete (monotonic)."""
        self._length = max(self._length, time - self.start)

    def ingest(
        self, component: ComponentId, metric: Metric, time: int, value: float
    ) -> None:
        """Ingest one timestamped sample under the data-quality policy.

        Handles, per the store's policy: NaN/inf validation, gap
        detection and bounded fill, constant clock-skew alignment, late
        out-of-order backfill, and duplicate resolution. Requires the
        store to have been constructed with a policy.
        """
        policy = self.policy
        if policy is None:
            raise DataQualityError(
                "timestamped ingestion needs a DataQualityPolicy: "
                "construct MetricStore(policy=...) or use record()/advance()"
            )
        key = (component, metric)
        samples = self._data.setdefault(key, [])
        qual = self._quality.get(key)
        if qual is None:
            qual = self._quality[key] = SeriesQuality()
        qual.seen += 1
        value = float(value)
        if not math.isfinite(value):
            if policy.on_invalid == "reject":
                raise DataQualityError(
                    f"non-finite sample {value!r} for {component}/{metric} "
                    f"at t={time}"
                )
            qual.invalid += 1
            self._metrics().dropped.inc(1, reason="invalid")
            value = math.nan

        # Constant clock-skew alignment: the offset of the first sample
        # (bounded by max_skew) is treated as the slave's clock error
        # and subtracted from every timestamp of this series. A first
        # sample far off the grid is a genuine gap (late-joining VM),
        # not skew.
        if qual.skew_offset is None:
            offset = 0
            if policy.align_skew:
                delta = time - (self.start + len(samples))
                if delta != 0 and abs(delta) <= policy.max_skew:
                    offset = delta
                    self._metrics().skew_aligned.inc(1)
            qual.skew_offset = offset
        time -= qual.skew_offset

        slot = time - self.start
        head = len(samples)
        if slot == head:
            self._append_sample(key, qual, value)
        elif slot > head:
            self._fill_gap(key, qual, head, slot, value, policy)
            self._append_sample(key, qual, value)
        else:
            self._backfill(key, qual, slot, value, policy)

    def _append_sample(
        self, key: _Key, qual: SeriesQuality, value: float
    ) -> None:
        samples = self._data[key]
        if math.isnan(value):
            qual.gap_slots[len(samples)] = "missing"
            qual.missing += 1
        else:
            qual.observed += 1
        samples.append(value)

    def _fill_gap(
        self,
        key: _Key,
        qual: SeriesQuality,
        head: int,
        slot: int,
        arriving: float,
        policy: DataQualityPolicy,
    ) -> None:
        """Pad ``[head, slot)`` — repaired per policy or left missing."""
        samples = self._data[key]
        gap = slot - head
        prev = samples[-1] if samples else math.nan
        fillable = (
            policy.fill != "none"
            and gap <= policy.max_gap
            and math.isfinite(prev)
        )
        if fillable and policy.fill == "interpolate" and math.isfinite(arriving):
            step = (arriving - prev) / (gap + 1)
            for i in range(1, gap + 1):
                samples.append(prev + step * i)
                qual.gap_slots[head + i - 1] = "interpolate"
            qual.filled_interpolated += gap
            self._metrics().filled.inc(gap, method="interpolate")
        elif fillable:
            # Forward fill — also the fallback when the sample closing
            # the gap is itself invalid (nothing to interpolate toward).
            samples.extend([prev] * gap)
            for i in range(head, slot):
                qual.gap_slots[i] = "forward"
            qual.filled_forward += gap
            self._metrics().filled.inc(gap, method="forward")
        else:
            samples.extend([math.nan] * gap)
            for i in range(head, slot):
                qual.gap_slots[i] = "missing"
            qual.missing += gap
            self._metrics().gap_ticks.inc(gap)

    def _backfill(
        self,
        key: _Key,
        qual: SeriesQuality,
        slot: int,
        value: float,
        policy: DataQualityPolicy,
    ) -> None:
        """Resolve a sample older than the series head (out-of-order)."""
        samples = self._data[key]
        age = len(samples) - slot
        if slot < 0 or age > policy.max_skew:
            qual.late_dropped += 1
            self._metrics().dropped.inc(1, reason="late")
            return
        synthesized = qual.gap_slots.get(slot)
        if synthesized is not None:
            if not math.isfinite(value):
                # An invalid late sample cannot repair anything.
                return
            self._rewrite(key, slot, value)
            del qual.gap_slots[slot]
            if synthesized == "missing":
                qual.missing -= 1
            elif synthesized == "forward":
                qual.filled_forward -= 1
            else:
                qual.filled_interpolated -= 1
            qual.observed += 1
            qual.late_accepted += 1
            self._metrics().backfilled.inc(1)
            return
        # The slot already holds an observed value: a duplicate delivery.
        if policy.on_duplicate == "reject":
            raise DataQualityError(
                f"duplicate sample for {key[0]}/{key[1]} at slot "
                f"t={self.start + slot}"
            )
        qual.duplicates += 1
        self._metrics().dropped.inc(1, reason="duplicate")
        if policy.on_duplicate == "last" and math.isfinite(value):
            self._rewrite(key, slot, value)

    def _rewrite(self, key: _Key, slot: int, value: float) -> None:
        """Write into a past slot, keeping the numpy mirror coherent."""
        with self._mirror_lock:
            self._data[key][slot] = value
            if self._filled.get(key, 0) > slot:
                self._columns[key][slot] = value
            self._revision += 1

    def _metrics(self) -> IngestMetrics:
        if self._ingest_metrics is None:
            self._ingest_metrics = IngestMetrics()
        return self._ingest_metrics

    # ------------------------------------------------------------------
    # Data-quality introspection
    # ------------------------------------------------------------------
    def series_quality(
        self, component: ComponentId, metric: Metric
    ) -> SeriesQuality:
        """Ingest counters of one series (zeros when never ingested)."""
        return self._quality.get((component, metric), SeriesQuality())

    def quality_for(self, component: ComponentId) -> SeriesQuality:
        """Aggregated ingest counters across a component's metrics."""
        total = SeriesQuality()
        for (comp, _metric), qual in self._quality.items():
            if comp == component:
                total.merge(qual)
        return total

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def components(self) -> List[ComponentId]:
        """All component ids present, sorted."""
        # list() snapshots the keys: a concurrent first-ever ingest of a
        # new series must not blow up a reader mid-iteration.
        return sorted({comp for comp, _ in list(self._data)})

    @property
    def length(self) -> int:
        """Number of completed ticks."""
        return self._length

    @property
    def end(self) -> int:
        """Timestamp one past the newest complete sample."""
        return self.start + self._length

    def _column(self, key: _Key) -> np.ndarray:
        """The numpy mirror of one series, synced to the backing list.

        Amortized O(appended samples): only the tail recorded since the
        previous read is converted. The returned array may have spare
        capacity past the valid prefix; callers slice to the length they
        need. Reallocation on growth never mutates previously returned
        views — the store is append-only, so an old (smaller) column is
        simply left behind with its then-current, still-correct prefix.
        """
        with self._mirror_lock:
            samples = self._data[key]
            n = len(samples)
            column = self._columns.get(key)
            filled = self._filled.get(key, 0)
            if column is None or n > len(column):
                capacity = max(_MIN_COLUMN_CAPACITY, 2 * n)
                grown = np.empty(capacity, dtype=float)
                if column is not None and filled:
                    grown[:filled] = column[:filled]
                column = grown
                self._columns[key] = column
            if filled < n:
                # Bound the source slice too: the ingest thread may append
                # concurrently, and a bare ``samples[filled:]`` could have
                # grown past ``n`` between the len() above and here.
                column[filled:n] = samples[filled:n]
                self._filled[key] = n
            return column

    def series(self, component: ComponentId, metric: Metric) -> TimeSeries:
        """Full series for one (component, metric), as a :class:`TimeSeries`.

        The returned series wraps a zero-copy view of the store's column
        buffer; it is valid indefinitely (append-only data) but reflects
        only the ticks completed at call time.
        """
        key = (component, metric)
        if key not in self._data:
            raise KeyError(f"no samples for {component}/{metric}")
        count = min(len(self._data[key]), self._length)
        return TimeSeries(self._column(key)[:count], start=self.start)

    def window(
        self, component: ComponentId, metric: Metric, t_from: int, t_to: int
    ) -> TimeSeries:
        """Clipped sub-series covering ``[t_from, t_to)`` (zero-copy view)."""
        return self.series(component, metric).window(t_from, t_to)

    def metrics_for(self, component: ComponentId) -> List[Metric]:
        """Metrics recorded for a component, in canonical order."""
        present = {metric for comp, metric in list(self._data) if comp == component}
        return [m for m in METRIC_NAMES if m in present]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        data: Mapping[ComponentId, Mapping[Metric, Iterable[float]]],
        start: int = 0,
        policy: Optional[DataQualityPolicy] = None,
    ) -> "MetricStore":
        """Build a store from complete per-series arrays (tests, examples).

        The arrays are taken verbatim (no validation or repair) — a
        ``policy`` only parameterizes later ``ingest`` calls and the
        analysis-side gap handling.
        """
        store = cls(start=start, policy=policy)
        lengths = set()
        for component, metrics in data.items():
            for metric, values in metrics.items():
                arr = [float(v) for v in values]
                store._data[(component, metric)] = arr
                lengths.add(len(arr))
        if len(lengths) > 1:
            raise ValueError(f"series lengths differ: {sorted(lengths)}")
        store._length = lengths.pop() if lengths else 0
        return store
