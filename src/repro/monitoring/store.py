"""In-memory store for sampled metric time series.

One :class:`MetricStore` holds every (component, metric) series of one
application run at the 1-second sampling interval. FChain slaves read
look-back windows out of it; the evaluation harness replays the same store
through every localization scheme so all schemes see identical data.

Reads are zero-copy: each series is mirrored into a capacity-doubling
numpy column the first time it is read, subsequent reads only convert the
newly appended tail, and :meth:`MetricStore.series` /
:meth:`MetricStore.window` hand out *views* of that column. Because the
store is append-only, a view's contents are immutable even while the run
keeps recording — which is what lets the incremental diagnosis engine
slice windows out of a live store without snapshotting it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.common.types import METRIC_NAMES, ComponentId, Metric

_Key = Tuple[ComponentId, Metric]

#: Initial capacity of a lazily materialized numpy column.
_MIN_COLUMN_CAPACITY = 256


class MetricStore:
    """Append-only storage of per-component metric samples.

    Samples must be appended tick by tick (1 Hz); the store derives
    timestamps from the append order and the configured start time.
    """

    def __init__(self, start: int = 0) -> None:
        self.start = start
        self._data: Dict[_Key, List[float]] = {}
        self._length = 0
        # Lazily synced numpy mirrors of ``_data``: column array plus how
        # many leading entries of it are valid.
        self._columns: Dict[_Key, np.ndarray] = {}
        self._filled: Dict[_Key, int] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, component: ComponentId, values: Mapping[Metric, float]) -> None:
        """Append one tick of samples for a component.

        Every monitored component must be recorded once per tick; the store
        checks series stay aligned when reading.
        """
        for metric, value in values.items():
            self._data.setdefault((component, metric), []).append(float(value))

    def advance(self) -> None:
        """Mark the end of a tick (all components recorded)."""
        self._length += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def components(self) -> List[ComponentId]:
        """All component ids present, sorted."""
        return sorted({comp for comp, _ in self._data})

    @property
    def length(self) -> int:
        """Number of completed ticks."""
        return self._length

    @property
    def end(self) -> int:
        """Timestamp one past the newest complete sample."""
        return self.start + self._length

    def _column(self, key: _Key) -> np.ndarray:
        """The numpy mirror of one series, synced to the backing list.

        Amortized O(appended samples): only the tail recorded since the
        previous read is converted. The returned array may have spare
        capacity past the valid prefix; callers slice to the length they
        need. Reallocation on growth never mutates previously returned
        views — the store is append-only, so an old (smaller) column is
        simply left behind with its then-current, still-correct prefix.
        """
        samples = self._data[key]
        n = len(samples)
        column = self._columns.get(key)
        filled = self._filled.get(key, 0)
        if column is None or n > len(column):
            capacity = max(_MIN_COLUMN_CAPACITY, 2 * n)
            grown = np.empty(capacity, dtype=float)
            if column is not None and filled:
                grown[:filled] = column[:filled]
            column = grown
            self._columns[key] = column
        if filled < n:
            column[filled:n] = samples[filled:]
            self._filled[key] = n
        return column

    def series(self, component: ComponentId, metric: Metric) -> TimeSeries:
        """Full series for one (component, metric), as a :class:`TimeSeries`.

        The returned series wraps a zero-copy view of the store's column
        buffer; it is valid indefinitely (append-only data) but reflects
        only the ticks completed at call time.
        """
        key = (component, metric)
        if key not in self._data:
            raise KeyError(f"no samples for {component}/{metric}")
        count = min(len(self._data[key]), self._length)
        return TimeSeries(self._column(key)[:count], start=self.start)

    def window(
        self, component: ComponentId, metric: Metric, t_from: int, t_to: int
    ) -> TimeSeries:
        """Clipped sub-series covering ``[t_from, t_to)`` (zero-copy view)."""
        return self.series(component, metric).window(t_from, t_to)

    def metrics_for(self, component: ComponentId) -> List[Metric]:
        """Metrics recorded for a component, in canonical order."""
        present = {metric for comp, metric in self._data if comp == component}
        return [m for m in METRIC_NAMES if m in present]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        data: Mapping[ComponentId, Mapping[Metric, Iterable[float]]],
        start: int = 0,
    ) -> "MetricStore":
        """Build a store from complete per-series arrays (tests, examples)."""
        store = cls(start=start)
        lengths = set()
        for component, metrics in data.items():
            for metric, values in metrics.items():
                arr = [float(v) for v in values]
                store._data[(component, metric)] = arr
                lengths.add(len(arr))
        if len(lengths) > 1:
            raise ValueError(f"series lengths differ: {sorted(lengths)}")
        store._length = lengths.pop() if lengths else 0
        return store
