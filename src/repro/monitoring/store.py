"""In-memory store for sampled metric time series.

One :class:`MetricStore` holds every (component, metric) series of one
application run at the 1-second sampling interval. FChain slaves read
look-back windows out of it; the evaluation harness replays the same store
through every localization scheme so all schemes see identical data.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.common.types import METRIC_NAMES, ComponentId, Metric


class MetricStore:
    """Append-only storage of per-component metric samples.

    Samples must be appended tick by tick (1 Hz); the store derives
    timestamps from the append order and the configured start time.
    """

    def __init__(self, start: int = 0) -> None:
        self.start = start
        self._data: Dict[Tuple[ComponentId, Metric], List[float]] = {}
        self._length = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, component: ComponentId, values: Mapping[Metric, float]) -> None:
        """Append one tick of samples for a component.

        Every monitored component must be recorded once per tick; the store
        checks series stay aligned when reading.
        """
        for metric, value in values.items():
            self._data.setdefault((component, metric), []).append(float(value))

    def advance(self) -> None:
        """Mark the end of a tick (all components recorded)."""
        self._length += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def components(self) -> List[ComponentId]:
        """All component ids present, sorted."""
        return sorted({comp for comp, _ in self._data})

    @property
    def length(self) -> int:
        """Number of completed ticks."""
        return self._length

    @property
    def end(self) -> int:
        """Timestamp one past the newest complete sample."""
        return self.start + self._length

    def series(self, component: ComponentId, metric: Metric) -> TimeSeries:
        """Full series for one (component, metric), as a :class:`TimeSeries`."""
        key = (component, metric)
        if key not in self._data:
            raise KeyError(f"no samples for {component}/{metric}")
        values = np.asarray(self._data[key][: self._length], dtype=float)
        return TimeSeries(values, start=self.start)

    def window(
        self, component: ComponentId, metric: Metric, t_from: int, t_to: int
    ) -> TimeSeries:
        """Clipped sub-series covering ``[t_from, t_to)``."""
        return self.series(component, metric).window(t_from, t_to)

    def metrics_for(self, component: ComponentId) -> List[Metric]:
        """Metrics recorded for a component, in canonical order."""
        present = {metric for comp, metric in self._data if comp == component}
        return [m for m in METRIC_NAMES if m in present]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        data: Mapping[ComponentId, Mapping[Metric, Iterable[float]]],
        start: int = 0,
    ) -> "MetricStore":
        """Build a store from complete per-series arrays (tests, examples)."""
        store = cls(start=start)
        lengths = set()
        for component, metrics in data.items():
            for metric, values in metrics.items():
                arr = [float(v) for v in values]
                store._data[(component, metric)] = arr
                lengths.add(len(arr))
        if len(lengths) > 1:
            raise ValueError(f"series lengths differ: {sorted(lengths)}")
        store._length = lengths.pop() if lengths else 0
        return store
