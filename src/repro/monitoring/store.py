"""Ring-buffered in-memory store for sampled metric time series.

One :class:`MetricStore` holds every (component, metric) series of one
application run at the 1-second sampling interval. FChain slaves read
look-back windows out of it; the evaluation harness replays the same
store through every localization scheme so all schemes see identical
data.

Storage is one preallocated *mirrored ring buffer* per series: a
float64 buffer of twice the ring capacity in which every sample is
written at both ``slot % cap`` and ``slot % cap + cap``. The mirror
makes any retained window of at most ``cap`` samples a single
contiguous zero-copy slice — readers never see the wrap seam, and
:meth:`MetricStore.series` / :meth:`MetricStore.window` hand out plain
numpy views no matter where the ring head currently is. A parallel
``uint8`` gap bitmap (one code per retained slot: observed / missing /
forward-filled / interpolated) replaces the old per-series fill-slot
dictionary; :meth:`series_quality` materializes the historical
``gap_slots`` mapping from it on demand.

Rings grow by doubling (old buffers are left behind intact, so
previously returned views stay valid) until they reach the store's
``retention``; past that point the ring stops allocating and retains
the newest ``retention`` samples by overwriting the oldest — steady
state ingest is allocation-free. Slots about to be overwritten can
optionally be archived first through an mmap-backed
:class:`~repro.monitoring.spill.SegmentSpill` for replay durability.

There is one write surface: :meth:`MetricStore.ingest` accepts either
an :class:`IngestBatch` (per-sample points, vectorized contiguous runs,
and a watermark in one call) or the legacy per-sample
``(component, metric, time, value)`` form. Batches ingested into a
store constructed without a policy run under the
:data:`~repro.monitoring.quality.STRICT_POLICY` preset — the historical
strict ``record``/``advance`` path is now just that preset (the
deprecated wrapper methods were removed after one release).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import DataQualityError
from repro.common.timeseries import TimeSeries
from repro.common.types import (
    METRIC_NAMES,
    ComponentId,
    Metric,
    MetricSample,
)
from repro.monitoring.quality import (
    DataQualityPolicy,
    IngestMetrics,
    STRICT_POLICY,
    SeriesQuality,
)
from repro.monitoring.spill import SegmentSpill

_Key = Tuple[ComponentId, Metric]

#: Initial ring capacity; rings double from here up to the retention.
_MIN_RING_CAPACITY = 256

#: Default retention: effectively unbounded for test/evaluation runs —
#: long-lived services pick a real bound (e.g. a few hours of 1 Hz data)
#: to cap steady-state memory.
DEFAULT_RETENTION = 1 << 20

#: Gap-bitmap codes, one per retained slot.
KIND_OBSERVED = 0
KIND_MISSING = 1
KIND_FORWARD = 2
KIND_INTERPOLATED = 3

_KIND_NAMES = {
    KIND_MISSING: "missing",
    KIND_FORWARD: "forward",
    KIND_INTERPOLATED: "interpolate",
}


class _Ring:
    """One series: a mirrored ring buffer plus its gap bitmap.

    ``values`` has physical size ``2 * cap``; every retained slot ``s``
    is stored at both ``s % cap`` and ``s % cap + cap``, so the window
    ``[lo, hi)`` (``hi - lo <= cap``) is always the contiguous slice
    ``values[lo % cap : lo % cap + (hi - lo)]``. ``kinds`` is the gap
    bitmap, ``cap`` slots, *not* mirrored (only point reads and the
    on-demand ``gap_slots`` materialization touch it).

    A ring attached from a shared-memory snapshot is *flat*:
    ``flat_base`` is the first snapshotted slot, ``values`` holds
    exactly the snapshot (no mirror), and writes are refused.
    """

    __slots__ = ("values", "kinds", "cap", "limit", "head", "flat_base")

    def __init__(self, cap: int, limit: int) -> None:
        self.cap = cap
        self.limit = limit
        self.values = np.empty(2 * cap, dtype=np.float64)
        self.kinds = np.zeros(cap, dtype=np.uint8)
        self.head = 0
        self.flat_base: Optional[int] = None

    @classmethod
    def flat(cls, values: np.ndarray, base: int) -> "_Ring":
        ring = object.__new__(cls)
        ring.values = values
        ring.kinds = None
        ring.cap = max(1, len(values))
        ring.limit = ring.cap
        ring.head = base + len(values)
        ring.flat_base = base
        return ring

    @property
    def first(self) -> int:
        """Oldest retained slot."""
        if self.flat_base is not None:
            return self.flat_base
        return max(0, self.head - self.cap)

    def view(self, lo: int, hi: int) -> np.ndarray:
        """Zero-copy view of retained slots ``[lo, hi)``."""
        if self.flat_base is not None:
            return self.values[lo - self.flat_base : hi - self.flat_base]
        p = lo % self.cap
        return self.values[p : p + (hi - lo)]

    def value_at(self, slot: int) -> float:
        if self.flat_base is not None:
            return float(self.values[slot - self.flat_base])
        return float(self.values[slot % self.cap])

    def kind_at(self, slot: int) -> int:
        if self.kinds is None:
            return KIND_OBSERVED
        return int(self.kinds[slot % self.cap])

    def set_kind(self, slot: int, kind: int) -> None:
        self.kinds[slot % self.cap] = kind

    def write_at(self, slot: int, value: float) -> None:
        """Rewrite one retained slot in place (backfill repair)."""
        self._check_writable()
        p = slot % self.cap
        self.values[p] = value
        self.values[p + self.cap] = value

    def _check_writable(self) -> None:
        if self.flat_base is not None:
            raise RuntimeError(
                "attached shared-memory store snapshots are read-only"
            )

    def _grow(self, needed: int) -> None:
        """Double capacity (up to the retention limit) to fit ``needed``.

        Only ever called while ``head <= cap`` (before any eviction),
        so the retained region is the plain prefix ``[0, head)``. The
        old buffer is left behind untouched: views handed out earlier
        keep their then-current contents.
        """
        cap = self.cap
        while cap < needed and cap < self.limit:
            cap = min(2 * cap, self.limit)
        if cap == self.cap:
            return
        values = np.empty(2 * cap, dtype=np.float64)
        kinds = np.zeros(cap, dtype=np.uint8)
        n = self.head
        values[:n] = self.values[:n]
        values[cap : cap + n] = self.values[:n]
        kinds[:n] = self.kinds[:n]
        self.values, self.kinds, self.cap = values, kinds, cap

    def append_one(
        self,
        value: float,
        kind: int,
        spill: Optional[SegmentSpill],
        key: _Key,
    ) -> None:
        """Append a single sample at the head (the 1 Hz hot path)."""
        self._check_writable()
        s = self.head
        cap = self.cap
        if s >= cap:
            if cap < self.limit:
                self._grow(s + 1)
                cap = self.cap
            elif spill is not None:
                evicted = s - cap
                spill.append(key, evicted, self.view(evicted, evicted + 1))
        p = s % cap
        self.values[p] = value
        self.values[p + cap] = value
        self.kinds[p] = kind
        self.head = s + 1

    def append_run(
        self,
        values: np.ndarray,
        kind: int,
        spill: Optional[SegmentSpill],
        key: _Key,
    ) -> int:
        """Append a contiguous run at the head; returns the first slot
        actually written.

        If the run is longer than the ring capacity, only its newest
        ``cap`` samples are stored — the earlier ones are evicted on
        arrival (and are *not* spilled; spill archives only slots that
        were stored first).
        """
        self._check_writable()
        n = len(values)
        s = self.head
        if s + n > self.cap and self.cap < self.limit:
            self._grow(s + n)
        cap = self.cap
        new_head = s + n
        if spill is not None:
            old_first = max(0, s - cap)
            new_first = max(0, new_head - cap)
            end = min(new_first, s)
            if end > old_first:
                spill.append(key, old_first, self.view(old_first, end))
        write_start = max(s, new_head - cap)
        run = values[write_start - s :]
        p = write_start % cap
        m = len(run)
        fit = min(m, cap - p)
        self.values[p : p + fit] = run[:fit]
        self.values[cap + p : cap + p + fit] = run[:fit]
        self.kinds[p : p + fit] = kind
        if fit < m:
            rest = m - fit
            self.values[:rest] = run[fit:]
            self.values[cap : cap + rest] = run[fit:]
            self.kinds[:rest] = kind
        self.head = new_head
        return write_start

    def gap_slots(self) -> Dict[int, str]:
        """Materialize the historical slot -> kind-name mapping."""
        if self.flat_base is not None or self.head == 0:
            return {}
        cap = self.cap
        first = self.first
        if self.head <= cap:
            marked = np.flatnonzero(self.kinds[: self.head])
            return {int(p): _KIND_NAMES[int(self.kinds[p])] for p in marked}
        out = {}
        for p in np.flatnonzero(self.kinds):
            p = int(p)
            slot = first + ((p - first) % cap)
            out[slot] = _KIND_NAMES[int(self.kinds[p])]
        return out


@dataclass(frozen=True)
class IngestRun:
    """A contiguous run of samples for one series.

    ``values[i]`` is the sample at absolute time ``start + i``. Runs are
    the vectorized fast path: one slice assignment per ring half instead
    of a Python-level loop per sample.
    """

    component: ComponentId
    metric: Metric
    start: int
    values: Sequence[float]


@dataclass(frozen=True)
class IngestBatch:
    """One unified write against a :class:`MetricStore`.

    Attributes:
        samples: Individually timestamped points
            (:class:`~repro.common.types.MetricSample`), routed through
            the full per-sample policy machinery (validation, gap fill,
            skew alignment, backfill, duplicates).
        runs: Contiguous per-series :class:`IngestRun` blocks, applied
            through the vectorized append path.
        watermark: When set, ``advance_to(watermark)`` after the writes
            — every tick before it is marked complete.
    """

    samples: Sequence[MetricSample] = ()
    runs: Sequence[IngestRun] = ()
    watermark: Optional[int] = None


class MetricStore:
    """Ring-buffered storage of per-component metric samples.

    All writes go through :meth:`ingest`. A store constructed with a
    :class:`~repro.monitoring.quality.DataQualityPolicy` runs the
    tolerant path (bounded gap fill, clock-skew alignment, late
    backfill, duplicate resolution, per-series
    :class:`~repro.monitoring.quality.SeriesQuality` counters); a store
    constructed without one ingests batches under the
    :data:`~repro.monitoring.quality.STRICT_POLICY` preset, where every
    defect raises. The legacy ``record``/``advance``/``record_at``
    methods remain as deprecated wrappers for one release.

    Retention: each series keeps at most ``retention`` samples; once a
    ring is full the oldest slot is overwritten by the newest
    (optionally archived first when ``spill`` is given). Reads clip to
    the retained range — :meth:`series` returns a view whose ``start``
    reflects any evicted prefix. Views stay valid while their window
    stays retained; a view still holding the oldest retained slots
    observes the overwrite once the ring wraps past them.

    ``revision`` increments whenever a *past* slot is rewritten in
    place (late backfill, duplicate-last); window-keyed caches include
    it so a repaired window is never served stale. Eviction does not
    bump it: retained slots are immutable, and a clipped window differs
    in its bounds, which every cache key already carries.
    """

    def __init__(
        self,
        start: int = 0,
        policy: Optional[DataQualityPolicy] = None,
        *,
        retention: int = DEFAULT_RETENTION,
        spill: Optional[SegmentSpill] = None,
    ) -> None:
        if retention < 1:
            raise DataQualityError("retention must be >= 1 sample")
        self.start = start
        self.policy = policy
        self.retention = int(retention)
        self.spill = spill
        self._series: Dict[_Key, _Ring] = {}
        self._length = 0
        self._quality: Dict[_Key, SeriesQuality] = {}
        self._revision = 0
        self._ingest_metrics: Optional[IngestMetrics] = None
        # Set on shared-memory attach: quality snapshots already carry
        # their materialized gap_slots and the rings are flat/read-only.
        self._attached = False

    # ------------------------------------------------------------------
    # The unified write surface
    # ------------------------------------------------------------------
    def ingest(self, batch, metric=None, time=None, value=None) -> None:
        """Write a batch of telemetry — or one legacy scalar sample.

        The single entry point for all writes:

        * ``ingest(IngestBatch(...))`` — points, vectorized runs and an
          optional watermark in one call. On a store without a policy
          the batch runs under the strict preset.
        * ``ingest(component, metric, time, value)`` — the legacy
          per-sample form; requires the store to carry a policy.
        """
        if isinstance(batch, IngestBatch):
            if metric is not None or time is not None or value is not None:
                raise TypeError("ingest(IngestBatch) takes no extra arguments")
            policy = self.policy or STRICT_POLICY
            for run in batch.runs:
                self._ingest_run(run, policy)
            for sample in batch.samples:
                self._ingest_sample(
                    sample.component,
                    sample.metric,
                    sample.time,
                    sample.value,
                    policy,
                )
            if batch.watermark is not None:
                self.advance_to(batch.watermark)
            return
        component = batch
        policy = self.policy
        if policy is None:
            raise DataQualityError(
                "timestamped per-sample ingestion needs a "
                "DataQualityPolicy: construct MetricStore(policy=...) or "
                "ingest an IngestBatch (strict preset)"
            )
        self._ingest_sample(component, metric, time, value, policy)

    def advance_to(self, time: int) -> None:
        """Mark every tick before ``time`` as complete (monotonic)."""
        self._length = max(self._length, time - self.start)

    @property
    def revision(self) -> int:
        """Bumped whenever a past slot is rewritten (backfill/overwrite)."""
        return self._revision

    # ------------------------------------------------------------------
    # Ingest machinery
    # ------------------------------------------------------------------
    def _ring(self, key: _Key) -> _Ring:
        ring = self._series.get(key)
        if ring is None:
            cap = min(_MIN_RING_CAPACITY, self.retention)
            ring = self._series[key] = _Ring(cap, self.retention)
        return ring

    def _qual(self, key: _Key) -> SeriesQuality:
        qual = self._quality.get(key)
        if qual is None:
            qual = self._quality[key] = SeriesQuality()
        return qual

    def _ingest_run(self, run: IngestRun, policy: DataQualityPolicy) -> None:
        component, metric = run.component, run.metric
        key = (component, metric)
        values = np.asarray(run.values, dtype=np.float64)
        n = len(values)
        if n == 0:
            return
        ring = self._ring(key)
        qual = self._qual(key)
        if qual.skew_offset is None:
            # Runs are produced on the master grid; no skew to learn.
            qual.skew_offset = 0
        slot = run.start - self.start - qual.skew_offset
        if slot < ring.head:
            # Overlapping run: fall back to the per-sample path, which
            # knows how to backfill and resolve duplicates.
            for i in range(n):
                self._ingest_sample(
                    component, metric, run.start + i, values[i], policy
                )
            return
        qual.seen += n
        finite = np.isfinite(values)
        bad = None
        if not finite.all():
            if policy.on_invalid == "reject":
                i = int(np.flatnonzero(~finite)[0])
                raise DataQualityError(
                    f"non-finite sample {values[i]!r} for "
                    f"{component}/{metric} at t={run.start + i}"
                )
            bad = np.flatnonzero(~finite)
            values = values.copy()
            values[bad] = math.nan
        if slot > ring.head:
            self._fill_gap(
                key, ring, qual, ring.head, slot, float(values[0]), policy
            )
        write_start = ring.append_run(values, KIND_OBSERVED, self.spill, key)
        if bad is None:
            qual.observed += n
        else:
            for i in bad:
                s = slot + int(i)
                if s >= write_start:
                    ring.set_kind(s, KIND_MISSING)
            qual.invalid += len(bad)
            qual.missing += len(bad)
            qual.observed += n - len(bad)
            self._metrics().dropped.inc(len(bad), reason="invalid")

    def _ingest_sample(
        self,
        component: ComponentId,
        metric: Metric,
        time: int,
        value: float,
        policy: DataQualityPolicy,
    ) -> None:
        key = (component, metric)
        ring = self._ring(key)
        qual = self._qual(key)
        qual.seen += 1
        value = float(value)
        if not math.isfinite(value):
            if policy.on_invalid == "reject":
                raise DataQualityError(
                    f"non-finite sample {value!r} for {component}/{metric} "
                    f"at t={time}"
                )
            qual.invalid += 1
            self._metrics().dropped.inc(1, reason="invalid")
            value = math.nan

        # Constant clock-skew alignment: the offset of the first sample
        # (bounded by max_skew) is treated as the slave's clock error
        # and subtracted from every timestamp of this series. A first
        # sample far off the grid is a genuine gap (late-joining VM),
        # not skew.
        if qual.skew_offset is None:
            offset = 0
            if policy.align_skew:
                delta = time - (self.start + ring.head)
                if delta != 0 and abs(delta) <= policy.max_skew:
                    offset = delta
                    self._metrics().skew_aligned.inc(1)
            qual.skew_offset = offset
        time -= qual.skew_offset

        slot = time - self.start
        head = ring.head
        if slot == head:
            self._append_sample(key, ring, qual, value)
        elif slot > head:
            self._fill_gap(key, ring, qual, head, slot, value, policy)
            self._append_sample(key, ring, qual, value)
        else:
            self._backfill(key, ring, qual, slot, value, policy)

    def _append_sample(
        self, key: _Key, ring: _Ring, qual: SeriesQuality, value: float
    ) -> None:
        if math.isnan(value):
            ring.append_one(value, KIND_MISSING, self.spill, key)
            qual.missing += 1
        else:
            ring.append_one(value, KIND_OBSERVED, self.spill, key)
            qual.observed += 1

    def _fill_gap(
        self,
        key: _Key,
        ring: _Ring,
        qual: SeriesQuality,
        head: int,
        slot: int,
        arriving: float,
        policy: DataQualityPolicy,
    ) -> None:
        """Pad ``[head, slot)`` — repaired per policy or left missing."""
        gap = slot - head
        if policy.on_gap == "reject" and head > 0:
            raise DataQualityError(
                f"gap of {gap} tick(s) for {key[0]}/{key[1]} before "
                f"t={self.start + slot}: this store expects contiguous "
                f"per-tick delivery"
            )
        prev = ring.value_at(head - 1) if head > 0 else math.nan
        fillable = (
            policy.fill != "none"
            and gap <= policy.max_gap
            and math.isfinite(prev)
        )
        if fillable and policy.fill == "interpolate" and math.isfinite(arriving):
            step = (arriving - prev) / (gap + 1)
            pad = prev + step * np.arange(1, gap + 1, dtype=np.float64)
            ring.append_run(pad, KIND_INTERPOLATED, self.spill, key)
            qual.filled_interpolated += gap
            self._metrics().filled.inc(gap, method="interpolate")
        elif fillable:
            # Forward fill — also the fallback when the sample closing
            # the gap is itself invalid (nothing to interpolate toward).
            pad = np.full(gap, prev, dtype=np.float64)
            ring.append_run(pad, KIND_FORWARD, self.spill, key)
            qual.filled_forward += gap
            self._metrics().filled.inc(gap, method="forward")
        else:
            pad = np.full(gap, math.nan, dtype=np.float64)
            ring.append_run(pad, KIND_MISSING, self.spill, key)
            qual.missing += gap
            self._metrics().gap_ticks.inc(gap)

    def _backfill(
        self,
        key: _Key,
        ring: _Ring,
        qual: SeriesQuality,
        slot: int,
        value: float,
        policy: DataQualityPolicy,
    ) -> None:
        """Resolve a sample older than the series head (out-of-order)."""
        if policy.on_gap == "reject":
            raise DataQualityError(
                f"out-of-order sample for {key[0]}/{key[1]} at "
                f"t={self.start + slot}: this store is append-only per tick"
            )
        age = ring.head - slot
        if slot < 0 or age > policy.max_skew:
            qual.late_dropped += 1
            self._metrics().dropped.inc(1, reason="late")
            return
        if slot < ring.first:
            # The slot was already evicted by ring wraparound: the ring
            # cannot accept a write into history it no longer retains.
            qual.late_dropped += 1
            self._metrics().dropped.inc(1, reason="evicted")
            return
        synthesized = ring.kind_at(slot)
        if synthesized != KIND_OBSERVED:
            if not math.isfinite(value):
                # An invalid late sample cannot repair anything.
                return
            self._rewrite(ring, slot, value)
            ring.set_kind(slot, KIND_OBSERVED)
            if synthesized == KIND_MISSING:
                qual.missing -= 1
            elif synthesized == KIND_FORWARD:
                qual.filled_forward -= 1
            else:
                qual.filled_interpolated -= 1
            qual.observed += 1
            qual.late_accepted += 1
            self._metrics().backfilled.inc(1)
            return
        # The slot already holds an observed value: a duplicate delivery.
        if policy.on_duplicate == "reject":
            raise DataQualityError(
                f"duplicate sample for {key[0]}/{key[1]} at slot "
                f"t={self.start + slot}"
            )
        qual.duplicates += 1
        self._metrics().dropped.inc(1, reason="duplicate")
        if policy.on_duplicate == "last" and math.isfinite(value):
            self._rewrite(ring, slot, value)

    def _rewrite(self, ring: _Ring, slot: int, value: float) -> None:
        """Write into a retained past slot, invalidating window caches."""
        ring.write_at(slot, value)
        self._revision += 1

    def _metrics(self) -> IngestMetrics:
        if self._ingest_metrics is None:
            self._ingest_metrics = IngestMetrics()
        return self._ingest_metrics

    # ------------------------------------------------------------------
    # Data-quality introspection
    # ------------------------------------------------------------------
    def series_quality(
        self, component: ComponentId, metric: Metric
    ) -> SeriesQuality:
        """Ingest counters of one series (zeros when never ingested).

        ``gap_slots`` is materialized from the ring's gap bitmap on
        demand; its keys are absolute slot indices counted from the
        store's ``start`` (evicted slots no longer appear).
        """
        key = (component, metric)
        qual = self._quality.get(key)
        if qual is None:
            return SeriesQuality()
        if self._attached:
            return qual
        ring = self._series.get(key)
        slots = ring.gap_slots() if ring is not None else {}
        if not slots and not qual.gap_slots:
            return qual
        snap = qual.snapshot()
        snap.gap_slots = slots
        return snap

    def quality_for(self, component: ComponentId) -> SeriesQuality:
        """Aggregated ingest counters across a component's metrics."""
        total = SeriesQuality()
        for (comp, _metric), qual in self._quality.items():
            if comp == component:
                total.merge(qual)
        return total

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def components(self) -> List[ComponentId]:
        """All component ids present, sorted."""
        # list() snapshots the keys: a concurrent first-ever ingest of a
        # new series must not blow up a reader mid-iteration.
        return sorted({comp for comp, _ in list(self._series)})

    @property
    def length(self) -> int:
        """Number of completed ticks."""
        return self._length

    @property
    def end(self) -> int:
        """Timestamp one past the newest complete sample."""
        return self.start + self._length

    def series(self, component: ComponentId, metric: Metric) -> TimeSeries:
        """The retained series for one (component, metric).

        Returns a zero-copy view of the ring. Its ``start`` is the
        timestamp of the oldest *retained* sample — after the ring has
        wrapped, that is later than the store's ``start``. The view
        reflects only ticks completed at call time, and stays valid as
        long as its window stays retained.
        """
        key = (component, metric)
        ring = self._series.get(key)
        if ring is None:
            raise KeyError(f"no samples for {component}/{metric}")
        count = min(ring.head, self._length)
        lo = ring.first
        if count <= lo:
            return TimeSeries(ring.view(lo, lo), start=self.start + lo)
        return TimeSeries(ring.view(lo, count), start=self.start + lo)

    def window(
        self, component: ComponentId, metric: Metric, t_from: int, t_to: int
    ) -> TimeSeries:
        """Clipped sub-series covering ``[t_from, t_to)`` (zero-copy view)."""
        return self.series(component, metric).window(t_from, t_to)

    def metrics_for(self, component: ComponentId) -> List[Metric]:
        """Metrics recorded for a component, in canonical order."""
        present = {
            metric for comp, metric in list(self._series) if comp == component
        }
        return [m for m in METRIC_NAMES if m in present]

    def retained_start(self, component: ComponentId, metric: Metric) -> int:
        """Timestamp of the oldest retained sample of one series."""
        key = (component, metric)
        ring = self._series.get(key)
        if ring is None:
            raise KeyError(f"no samples for {component}/{metric}")
        return self.start + ring.first

    def spilled_series(
        self, component: ComponentId, metric: Metric
    ) -> Optional[TimeSeries]:
        """Evicted history archived by the spill, as a memory-mapped
        :class:`~repro.common.timeseries.TimeSeries` (``None`` when
        nothing was spilled or no spill is configured)."""
        if self.spill is None:
            return None
        got = self.spill.read(component, metric)
        if got is None:
            return None
        slot, values = got
        return TimeSeries(values, start=self.start + slot)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        data: Mapping[ComponentId, Mapping[Metric, Iterable[float]]],
        start: int = 0,
        policy: Optional[DataQualityPolicy] = None,
        *,
        retention: int = DEFAULT_RETENTION,
    ) -> "MetricStore":
        """Build a store from complete per-series arrays (tests, examples).

        The arrays are taken verbatim (no validation or repair) — a
        ``policy`` only parameterizes later ``ingest`` calls and the
        analysis-side gap handling.
        """
        store = cls(start=start, policy=policy, retention=retention)
        lengths = set()
        for component, metrics in data.items():
            for metric, values in metrics.items():
                arr = np.array(list(values), dtype=np.float64)
                key = (component, metric)
                store._ring(key).append_run(arr, KIND_OBSERVED, None, key)
                lengths.add(len(arr))
        if len(lengths) > 1:
            raise ValueError(f"series lengths differ: {sorted(lengths)}")
        store._length = lengths.pop() if lengths else 0
        return store


__all__ = [
    "DEFAULT_RETENTION",
    "IngestBatch",
    "IngestRun",
    "MetricStore",
    "SegmentSpill",
]
