"""Optional mmap-backed segment spill for evicted ring slots.

The ring-buffer :class:`~repro.monitoring.store.MetricStore` retains a
bounded window of history per series; once the ring wraps, the oldest
slots are overwritten. For replay durability (post-mortem analysis,
offline re-diagnosis) a store can be constructed with a
:class:`SegmentSpill`: slots about to be overwritten are flushed to
per-series segment files first, and can be read back later as numpy
memory-maps without loading them into RAM.

Spill is strictly sequential — eviction only ever advances — so each
series' file is a single contiguous run of float64 samples starting at
the first slot ever evicted for that series. Values are buffered in
memory and written one fixed-size segment at a time; :meth:`flush`
forces the partial tail out (and is called automatically before any
read-back).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.types import ComponentId, Metric

_Key = Tuple[ComponentId, Metric]


def _filename(component: ComponentId, metric: Metric) -> str:
    safe = str(component).replace(os.sep, "_").replace("\0", "_")
    return f"{safe}__{metric.name}.f64"


class SegmentSpill:
    """Append-only on-disk archive of evicted ring slots.

    Args:
        directory: Where the per-series ``*.f64`` segment files live
            (created if missing).
        segment_slots: Write granularity in samples; evicted values are
            buffered until a full segment accumulates.
    """

    def __init__(self, directory, *, segment_slots: int = 4096) -> None:
        if segment_slots < 1:
            raise ValueError("segment_slots must be >= 1")
        self.directory = str(directory)
        self.segment_slots = int(segment_slots)
        os.makedirs(self.directory, exist_ok=True)
        #: key -> (first spilled slot, samples already on disk)
        self._index: Dict[_Key, Tuple[int, int]] = {}
        self._pending: Dict[_Key, list] = {}

    def append(self, key: _Key, slot: int, values: np.ndarray) -> None:
        """Archive ``values`` covering slots ``[slot, slot + len)``.

        Slots must arrive in order with no holes — the ring guarantees
        this by spilling exactly the range it is about to overwrite.
        """
        if len(values) == 0:
            return
        entry = self._index.get(key)
        pending = self._pending.setdefault(key, [])
        if entry is None:
            self._index[key] = (slot, 0)
        else:
            start, on_disk = entry
            expected = start + on_disk + sum(len(v) for v in pending)
            if slot != expected:
                raise ValueError(
                    f"non-contiguous spill for {key[0]}/{key[1]}: "
                    f"slot {slot}, expected {expected}"
                )
        pending.append(np.asarray(values, dtype=np.float64).copy())
        if sum(len(v) for v in pending) >= self.segment_slots:
            self._flush_key(key)

    def _flush_key(self, key: _Key) -> None:
        pending = self._pending.get(key)
        if not pending:
            return
        chunk = np.concatenate(pending)
        path = os.path.join(self.directory, _filename(*key))
        with open(path, "ab") as fh:
            fh.write(chunk.tobytes())
        start, on_disk = self._index[key]
        self._index[key] = (start, on_disk + len(chunk))
        self._pending[key] = []

    def flush(self) -> None:
        """Force every buffered partial segment to disk."""
        for key in list(self._pending):
            self._flush_key(key)

    def slots_spilled(self, component: ComponentId, metric: Metric) -> int:
        """How many samples have been archived for one series."""
        key = (component, metric)
        entry = self._index.get(key)
        if entry is None:
            return 0
        return entry[1] + sum(len(v) for v in self._pending.get(key, ()))

    def read(
        self, component: ComponentId, metric: Metric
    ) -> Optional[Tuple[int, np.ndarray]]:
        """``(first_slot, values)`` archived for one series, or ``None``.

        The values come back as a read-only ``np.memmap`` of the segment
        file — nothing is loaded into memory up front.
        """
        key = (component, metric)
        entry = self._index.get(key)
        if entry is None:
            return None
        self._flush_key(key)
        start, on_disk = self._index[key]
        path = os.path.join(self.directory, _filename(*key))
        values = np.memmap(path, dtype=np.float64, mode="r", shape=(on_disk,))
        return start, values


__all__ = ["SegmentSpill"]
