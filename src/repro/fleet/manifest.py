"""Fleet manifests: declare a tenant fleet, drive it with synthetic feeds.

A *manifest* is a small JSON document describing a whole fleet — shard
pool, per-tenant FChain/SLO defaults, and the tenant population (listed
explicitly or generated ``tenant-0000 .. tenant-NNNN``), plus optional
injected faults::

    {
      "shards": 4,
      "backend": "thread",
      "defaults": {"components": 8, "metrics": 1,
                   "look_back_window": 40, "analysis_grace": 8,
                   "slo_threshold": 0.1, "slo_sustain": 5},
      "generate": {"count": 100, "prefix": "tenant"},
      "faults": [{"tenant": "tenant-0042", "at": 45, "component": 2}]
    }

:func:`run_manifest` is the shared driver behind ``repro fleet``, the CI
fleet job and the fleet benchmark: build the supervisor, register every
tenant, stream ``ticks`` of synthetic telemetry, drain, and hand back
the closed supervisor for inspection.

The synthetic telemetry is deliberately cheap at fleet scale: the base
signal matrix ``(components, metrics, ticks)`` is computed **once** and
shared by all tenants (computing per-tenant noise for 1000 tenants would
dominate the benchmark with RNG cost, not fleet overhead). A faulted
tenant's telemetry diverges from the shared base only after its fault
tick: the faulty component's first metric jumps by a level shift and the
tenant's performance signal crosses the SLO threshold, so exactly the
faulted tenants — and no others — trigger localization.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.types import Metric, MetricSample
from repro.core.config import FChainConfig
from repro.fleet.supervisor import FleetConfig, FleetSupervisor
from repro.fleet.tenant import TenantSpec
from repro.monitoring.slo import LatencySLO
from repro.service.sources import TickBatch

#: Healthy / faulted values of the synthetic performance signal; the
#: default SLO threshold (0.1) sits between them.
HEALTHY_PERFORMANCE = 0.01
FAULTED_PERFORMANCE = 0.5
#: Level shift added to the faulty component's first metric.
FAULT_SHIFT = 30.0


@dataclass(frozen=True)
class FaultPlan:
    """One injected fault: ``component`` misbehaves from tick ``at``."""

    tenant: str
    at: int
    component: int


@dataclass(frozen=True)
class FleetManifest:
    """A parsed fleet manifest (see the module docstring for the JSON)."""

    tenants: Tuple[str, ...]
    shards: int = 4
    backend: str = "thread"
    components: int = 8
    metrics: int = 1
    look_back_window: int = 40
    min_segment: int = 5
    analysis_grace: int = 8
    service_cooldown: int = 60
    slo_threshold: float = 0.1
    slo_sustain: int = 5
    seed: int = 0
    queue_depth: int = 1024
    tenant_budget: int = 4
    faults: Tuple[FaultPlan, ...] = ()

    def validate(self) -> "FleetManifest":
        if not self.tenants:
            raise ConfigurationError("the manifest declares no tenants")
        if len(set(self.tenants)) != len(self.tenants):
            raise ConfigurationError("tenant ids must be unique")
        if self.components < 2:
            raise ConfigurationError("components must be >= 2")
        if not 1 <= self.metrics <= len(Metric):
            raise ConfigurationError(
                f"metrics must be between 1 and {len(Metric)}"
            )
        known = set(self.tenants)
        for fault in self.faults:
            if fault.tenant not in known:
                raise ConfigurationError(
                    f"fault targets unknown tenant {fault.tenant!r}"
                )
            if not 0 <= fault.component < self.components:
                raise ConfigurationError(
                    f"fault component {fault.component} out of range "
                    f"(fleet has {self.components} components)"
                )
        return self

    def fchain_config(self) -> FChainConfig:
        return FChainConfig(
            look_back_window=self.look_back_window,
            min_segment=self.min_segment,
            analysis_grace=self.analysis_grace,
            service_cooldown=self.service_cooldown,
        )

    def fleet_config(self) -> FleetConfig:
        return FleetConfig(
            shards=self.shards,
            backend=self.backend,
            queue_depth=self.queue_depth,
            tenant_budget=self.tenant_budget,
        )

    def tenant_specs(self) -> List[TenantSpec]:
        """One spec per tenant; detectors are fresh instances."""
        config = self.fchain_config()
        return [
            TenantSpec(
                tenant=tenant,
                detector=LatencySLO(
                    self.slo_threshold, sustain=self.slo_sustain
                ),
                config=config,
                seed=self.seed,
            )
            for tenant in self.tenants
        ]


def load_manifest(path) -> FleetManifest:
    """Parse and validate a JSON manifest file."""
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path}: not valid JSON: {error}")
    return manifest_from_dict(document)


def manifest_from_dict(document: Dict) -> FleetManifest:
    """Build a manifest from a parsed JSON document."""
    if not isinstance(document, dict):
        raise ConfigurationError("the manifest must be a JSON object")
    defaults = document.get("defaults", {})
    tenants: List[str] = [str(t) for t in document.get("tenants", [])]
    generate = document.get("generate")
    if generate:
        count = int(generate.get("count", 0))
        prefix = str(generate.get("prefix", "tenant"))
        width = max(4, len(str(max(count - 1, 0))))
        tenants.extend(f"{prefix}-{i:0{width}d}" for i in range(count))
    faults = tuple(
        FaultPlan(
            tenant=str(entry["tenant"]),
            at=int(entry["at"]),
            component=int(entry["component"]),
        )
        for entry in document.get("faults", ())
    )
    manifest = FleetManifest(
        tenants=tuple(tenants),
        shards=int(document.get("shards", 4)),
        backend=str(document.get("backend", "thread")),
        components=int(defaults.get("components", 8)),
        metrics=int(defaults.get("metrics", 1)),
        look_back_window=int(defaults.get("look_back_window", 40)),
        min_segment=int(defaults.get("min_segment", 5)),
        analysis_grace=int(defaults.get("analysis_grace", 8)),
        service_cooldown=int(defaults.get("service_cooldown", 60)),
        slo_threshold=float(defaults.get("slo_threshold", 0.1)),
        slo_sustain=int(defaults.get("slo_sustain", 5)),
        seed=int(defaults.get("seed", 0)),
        queue_depth=int(document.get("queue_depth", 1024)),
        tenant_budget=int(document.get("tenant_budget", 4)),
        faults=faults,
    )
    return manifest.validate()


class FleetFeed:
    """Deterministic synthetic telemetry for every tenant of a fleet.

    One shared base-signal matrix serves the whole fleet; per-tenant
    divergence exists only for faulted tenants after their fault tick.
    ``batch(tenant, t)`` is therefore O(components × metrics) with no
    RNG on the hot path.
    """

    def __init__(self, manifest: FleetManifest, ticks: int) -> None:
        self.manifest = manifest
        self.ticks = ticks
        self.component_names = [
            f"comp-{i}" for i in range(manifest.components)
        ]
        self.metric_kinds = list(Metric)[: manifest.metrics]
        rng = np.random.default_rng(manifest.seed)
        shape = (manifest.components, manifest.metrics, ticks)
        t = np.arange(ticks, dtype=np.float64)
        periods = 16.0 + 4.0 * np.arange(manifest.components)
        base = (
            50.0
            + 10.0 * np.sin(
                2.0 * np.pi * t[None, None, :]
                / periods[:, None, None]
            )
            + rng.normal(0.0, 1.5, size=shape)
        )
        self.base = base
        self.faults: Dict[str, FaultPlan] = {
            fault.tenant: fault for fault in manifest.faults
        }

    def batch(self, tenant: str, t: int) -> TickBatch:
        """The tick-``t`` telemetry batch of one tenant."""
        fault = self.faults.get(tenant)
        faulted = fault is not None and t >= fault.at
        samples: List[MetricSample] = []
        for c, component in enumerate(self.component_names):
            for m, metric in enumerate(self.metric_kinds):
                value = float(self.base[c, m, t])
                if faulted and c == fault.component and m == 0:
                    value += FAULT_SHIFT
                samples.append(MetricSample(component, metric, t, value))
        performance = (
            FAULTED_PERFORMANCE if faulted else HEALTHY_PERFORMANCE
        )
        return TickBatch(time=t, samples=samples, performance=performance)


@dataclass
class FleetRunResult:
    """What :func:`run_manifest` hands back after the fleet drained."""

    supervisor: FleetSupervisor
    ticks: int
    routed: int = 0
    dropped: int = 0
    tick_seconds: List[float] = field(default_factory=list)


def run_manifest(
    manifest: FleetManifest,
    ticks: int,
    *,
    supervisor: Optional[FleetSupervisor] = None,
    sinks: Sequence = (),
    on_tick=None,
) -> FleetRunResult:
    """Drive a whole fleet for ``ticks`` ticks and drain it.

    Builds a supervisor from the manifest (or uses the one given),
    registers every tenant, routes every tenant's synthetic batch each
    tick, then closes the fleet — flushing pending diagnoses exactly as
    the single-app pipeline does on shutdown.

    Args:
        manifest: The fleet description.
        ticks: Ticks of telemetry to stream.
        supervisor: Pre-built supervisor (manifest shard/backend
            settings are ignored when given).
        sinks: Fleet-wide incident sinks, ``(tenant, incident)``.
        on_tick: Optional callback invoked after each fleet-wide tick
            with the elapsed wall-clock seconds of that tick.
    """
    import time

    owns = supervisor is None
    if owns:
        supervisor = FleetSupervisor(manifest.fleet_config(), sinks=sinks)
    result = FleetRunResult(supervisor=supervisor, ticks=ticks)
    try:
        for spec in manifest.tenant_specs():
            supervisor.add_tenant(spec)
        feed = FleetFeed(manifest, ticks)
        tenants = manifest.tenants
        for t in range(ticks):
            started = time.perf_counter()
            for tenant in tenants:
                if supervisor.ingest(tenant, feed.batch(tenant, t)):
                    result.routed += 1
                else:
                    result.dropped += 1
            elapsed = time.perf_counter() - started
            result.tick_seconds.append(elapsed)
            if on_tick is not None:
                on_tick(elapsed)
    finally:
        if owns:
            supervisor.close()
    return result


__all__ = [
    "FAULT_SHIFT",
    "FAULTED_PERFORMANCE",
    "HEALTHY_PERFORMANCE",
    "FaultPlan",
    "FleetFeed",
    "FleetManifest",
    "FleetRunResult",
    "load_manifest",
    "manifest_from_dict",
    "run_manifest",
]
