"""The fleet supervisor: many tenants, few long-lived shard workers.

:class:`FleetSupervisor` is the parent-side owner of a tenant fleet:

* **placement** — tenants are consistently hashed onto shards
  (:class:`~repro.fleet.ring.HashRing`), so adding or removing a shard
  relocates only ~1/N of the fleet;
* **routing** — ``ingest()`` forwards one tenant's tick batch to its
  shard over a bounded per-shard command queue. Backpressure is
  shed-with-counted-drop: a full shard queue drops the batch (one tick
  of one tenant's telemetry, repaired later by the tolerant ingest
  path) rather than stalling the caller;
* **incident bus** — every shard emits finished incidents onto one
  shared event queue; a collector thread fans them out to per-tenant
  sinks, fleet-wide sinks and tenant-labeled Prometheus counters;
* **rebalance** — ``add_shard()`` / ``remove_shard()`` / ``move_tenant()``
  relocate live tenants: the source shard snapshots the tenant through
  the zero-copy shared-memory store export, the target materializes a
  writable store from the segment and resyncs its warm models
  (bit-identically — see ``tests/fleet/test_rebalance.py``), and only
  then does the source release the segment.

Two interchangeable backends run the same
:class:`~repro.fleet.worker.ShardWorker` code: ``"thread"`` (default —
shards are daemon threads, zero-copy in-process queues) and
``"process"`` (shards are forked worker processes, escaping the GIL for
per-tick work at the cost of pickling batches over the queues). Tenants
that need parallel *diagnosis* get it on either backend by configuring
``executor="process"`` — the per-tenant SlavePool keeps its cached
``ProcessPoolExecutor`` warm across triggers.

Supervisor methods (``add_tenant``/``ingest``/``move_tenant``/``close``)
are driver-facing and expected to be called from one thread; the
collector thread only touches the incident/event state.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ReproError
from repro.core.engine import fork_available
from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.fleet.tenant import TenantSnapshot, TenantSpec
from repro.fleet.worker import ShardWorker, shard_worker_main
from repro.service.incident import Incident
from repro.service.sources import TickBatch

#: How long the supervisor waits on a full shard queue before shedding.
_EVENT_POLL_SECONDS = 0.2
#: Ceiling on one relocation step (export or import acknowledgement).
_MOVE_TIMEOUT_SECONDS = 60.0


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level tunables (per-tenant knobs live on the TenantSpec).

    Attributes:
        shards: Number of shard workers.
        backend: ``"thread"`` or ``"process"`` (see module docstring).
        vnodes: Virtual nodes per shard on the consistent-hash ring.
        queue_depth: Bound of each shard's command queue.
        route_timeout: Seconds ``ingest()`` waits on a full shard queue
            before shedding the batch with a counted drop. ``0`` sheds
            immediately.
        tenant_budget: Max diagnosis triggers one tenant may have
            queued on its shard before new ones are shed.
    """

    shards: int = 4
    backend: str = "thread"
    vnodes: int = DEFAULT_VNODES
    queue_depth: int = 1024
    route_timeout: float = 0.5
    tenant_budget: int = 4

    def validate(self) -> "FleetConfig":
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.backend not in ("thread", "process"):
            raise ConfigurationError(
                f"backend={self.backend!r} is not supported: choose "
                "'thread' or 'process'"
            )
        if self.backend == "process" and not fork_available():
            raise ConfigurationError(
                "backend='process' needs the 'fork' multiprocessing "
                "start method, which this platform does not provide; "
                "use backend='thread'"
            )
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        if self.route_timeout < 0:
            raise ConfigurationError("route_timeout must be >= 0 seconds")
        if self.tenant_budget < 1:
            raise ConfigurationError("tenant_budget must be >= 1")
        return self


class FleetMetrics:
    """Fleet-wide gauges/counters on a :mod:`repro.obs` registry."""

    def __init__(self, registry=None) -> None:
        if registry is None:
            from repro.obs.registry import default_registry

            registry = default_registry()
        self.tenants = registry.gauge(
            "fchain_fleet_tenants", "Tenants currently registered"
        )
        self.queue_depth = registry.gauge(
            "fchain_fleet_shard_queue_depth",
            "Commands waiting on each shard's queue",
            ("shard",),
        )
        self.ingest_dropped = registry.counter(
            "fchain_fleet_ingest_dropped_total",
            "Tick batches shed because a shard queue stayed full",
            ("shard",),
        )
        self.incidents = registry.counter(
            "fchain_fleet_incidents_total",
            "Incidents diagnosed per tenant",
            ("tenant",),
        )
        self.diagnosis_shed = registry.counter(
            "fchain_fleet_diagnosis_shed_total",
            "Diagnosis triggers shed by per-tenant budgets",
            ("shard",),
        )


class _Shard:
    """One shard's transport: queues plus the worker thread/process."""

    def __init__(self, index: int, config: FleetConfig, events) -> None:
        self.index = index
        self.drained = False
        self.stats: Optional[Dict] = None
        if config.backend == "thread":
            self.commands: "queue.Queue" = queue.Queue(
                maxsize=config.queue_depth
            )
            worker = ShardWorker(
                index, events, tenant_budget=config.tenant_budget
            )
            self.runner = threading.Thread(
                target=worker.serve,
                args=(self.commands,),
                name=f"fchain-fleet-shard-{index}",
                daemon=True,
            )
        else:
            context = multiprocessing.get_context("fork")
            self.commands = context.Queue(maxsize=config.queue_depth)
            self.runner = context.Process(
                target=shard_worker_main,
                args=(index, self.commands, events, config.tenant_budget),
                name=f"fchain-fleet-shard-{index}",
                daemon=True,
            )
        self.runner.start()

    def depth(self) -> int:
        try:
            return self.commands.qsize()
        except NotImplementedError:  # pragma: no cover - macOS mp.Queue
            return 0

    def join(self) -> None:
        self.runner.join()


class FleetSupervisor:
    """Owner of the shard pool, tenant placement and the incident bus.

    Args:
        config: Fleet-level configuration.
        sinks: Fleet-wide callables receiving ``(tenant, incident)``.
        registry: Metrics registry (defaults to the process-wide one).

    Attributes:
        incidents: Finished incidents per tenant, in completion order.
        failures: ``(shard, tenant, error repr)`` from shard errors.
        ingest_dropped: Batches shed by routing backpressure, per shard.
    """

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        *,
        sinks=(),
        registry=None,
    ) -> None:
        self.config = (config or FleetConfig()).validate()
        backend = self.config.backend
        if backend == "process":
            context = multiprocessing.get_context("fork")
            self._events = context.Queue()
        else:
            self._events = queue.Queue()
        self.ring = HashRing(
            range(self.config.shards), vnodes=self.config.vnodes
        )
        self._shards: Dict[int, _Shard] = {
            index: _Shard(index, self.config, self._events)
            for index in range(self.config.shards)
        }
        self._next_shard_index = self.config.shards
        self._specs: Dict[str, TenantSpec] = {}
        self._routing: Dict[str, int] = {}
        self._tenant_sinks: Dict[str, List[Callable]] = {}
        self.sinks = list(sinks)
        self.metrics = FleetMetrics(registry)

        self.incidents: Dict[str, List[Incident]] = {}
        self.failures: List[Tuple[int, Optional[str], str]] = []
        self.ingest_dropped: Dict[int, int] = {}
        self.tenant_stats: Dict[str, Dict] = {}
        self.shard_stats: Dict[int, Dict] = {}

        #: Tenants mid-relocation: batches buffered until the move lands.
        self._moving: Dict[str, List[TickBatch]] = {}
        self._move_events: Dict[str, threading.Event] = {}
        self._move_payloads: Dict[str, TenantSnapshot] = {}
        self._import_events: Dict[str, threading.Event] = {}
        self._closed = False

        self._collector = threading.Thread(
            target=self._collect_events,
            name="fchain-fleet-collector",
            daemon=True,
        )
        self._collector_stop = threading.Event()
        self._collector.start()

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def add_tenant(self, spec: TenantSpec, *, sinks=()) -> int:
        """Register one tenant; returns the shard it landed on."""
        if self._closed:
            raise ReproError("the fleet is closed")
        if spec.tenant in self._specs:
            raise ConfigurationError(
                f"tenant {spec.tenant!r} is already registered"
            )
        shard = self.ring.shard_for(spec.tenant)
        self._specs[spec.tenant] = spec
        self._routing[spec.tenant] = shard
        if sinks:
            self._tenant_sinks[spec.tenant] = list(sinks)
        self._shards[shard].commands.put(("add", spec))
        self.metrics.tenants.set(len(self._specs))
        return shard

    def remove_tenant(self, tenant: str) -> None:
        """Unregister one tenant and tear its runtime down."""
        shard = self._routing.pop(tenant, None)
        self._specs.pop(tenant, None)
        self._tenant_sinks.pop(tenant, None)
        if shard is not None:
            self._shards[shard].commands.put(("remove", tenant))
        self.metrics.tenants.set(len(self._specs))

    def shard_of(self, tenant: str) -> int:
        return self._routing[tenant]

    def shard_map(self) -> Dict[int, List[str]]:
        """Current placement: shard index -> sorted tenant ids."""
        placement: Dict[int, List[str]] = {
            index: [] for index in self._shards
        }
        for tenant, shard in self._routing.items():
            placement[shard].append(tenant)
        for tenants in placement.values():
            tenants.sort()
        return placement

    # ------------------------------------------------------------------
    # Ingest routing
    # ------------------------------------------------------------------
    def ingest(self, tenant: str, batch: TickBatch) -> bool:
        """Route one tick batch; returns False when it was shed."""
        if self._closed:
            raise ReproError("the fleet is closed")
        if tenant in self._moving:
            self._moving[tenant].append(batch)
            return True
        shard = self._routing.get(tenant)
        if shard is None:
            raise ConfigurationError(f"tenant {tenant!r} is not registered")
        handle = self._shards[shard]
        self.metrics.queue_depth.set(handle.depth(), shard=str(shard))
        try:
            if self.config.route_timeout > 0:
                handle.commands.put(
                    ("ingest", tenant, batch),
                    timeout=self.config.route_timeout,
                )
            else:
                handle.commands.put_nowait(("ingest", tenant, batch))
        except queue.Full:
            self.ingest_dropped[shard] = (
                self.ingest_dropped.get(shard, 0) + 1
            )
            self.metrics.ingest_dropped.inc(1, shard=str(shard))
            return False
        return True

    # ------------------------------------------------------------------
    # Rebalance
    # ------------------------------------------------------------------
    def move_tenant(self, tenant: str, target: int) -> None:
        """Relocate one live tenant, ring-buffer state and all.

        Protocol (each step acknowledged over the event bus):

        1. buffer the tenant's inbound batches in the supervisor;
        2. ``export`` on the source shard — snapshot store + aux state,
           keep the shared segment alive;
        3. ``add(snapshot)`` on the target — materialize a writable
           store from the segment, resync warm models, ack ``imported``;
        4. ``release`` on the source — close the segment, drop the old
           runtime;
        5. reroute and flush the buffered batches to the target.
        """
        if target not in self._shards:
            raise ConfigurationError(f"shard {target} does not exist")
        source = self._routing.get(tenant)
        if source is None:
            raise ConfigurationError(f"tenant {tenant!r} is not registered")
        if source == target:
            return
        self._moving[tenant] = []
        exported = self._move_events[tenant] = threading.Event()
        self._shards[source].commands.put(("export", tenant))
        if not exported.wait(_MOVE_TIMEOUT_SECONDS):
            del self._moving[tenant]
            raise ReproError(
                f"shard {source} did not export tenant {tenant!r} in time"
            )
        snapshot = self._move_payloads.pop(tenant)
        del self._move_events[tenant]
        imported = self._import_events[tenant] = threading.Event()
        self._shards[target].commands.put(("add", snapshot))
        if not imported.wait(_MOVE_TIMEOUT_SECONDS):
            raise ReproError(
                f"shard {target} did not import tenant {tenant!r} in time"
            )
        del self._import_events[tenant]
        self._shards[source].commands.put(("release", tenant))
        self._routing[tenant] = target
        buffered = self._moving.pop(tenant)
        for batch in buffered:
            self.ingest(tenant, batch)

    def add_shard(self) -> int:
        """Grow the pool by one shard and relocate the ~1/N tenants
        whose ring position moved. Returns the new shard's index."""
        index = self._next_shard_index
        self._next_shard_index += 1
        before = dict(self._routing)
        self._shards[index] = _Shard(index, self.config, self._events)
        self.ring.add_shard(index)
        after = self.ring.assignments(list(before))
        for tenant, shard in after.items():
            if shard != before[tenant]:
                self.move_tenant(tenant, shard)
        return index

    def remove_shard(self, index: int) -> None:
        """Shrink the pool: relocate the shard's tenants, then drain it."""
        if index not in self._shards:
            raise ConfigurationError(f"shard {index} does not exist")
        if len(self._shards) == 1:
            raise ConfigurationError("cannot remove the last shard")
        self.ring.remove_shard(index)
        for tenant, shard in list(self._routing.items()):
            if shard == index:
                self.move_tenant(tenant, self.ring.shard_for(tenant))
        handle = self._shards.pop(index)
        handle.commands.put(("drain",))
        handle.join()

    # ------------------------------------------------------------------
    # Event bus
    # ------------------------------------------------------------------
    def _collect_events(self) -> None:
        while not self._collector_stop.is_set():
            try:
                event = self._events.get(timeout=_EVENT_POLL_SECONDS)
            except queue.Empty:
                continue
            self._handle_event(event)

    def _handle_event(self, event) -> None:
        kind = event[0]
        if kind == "incident":
            _, shard, tenant, incident = event
            self.incidents.setdefault(tenant, []).append(incident)
            self.metrics.incidents.inc(1, tenant=tenant)
            for sink in self._tenant_sinks.get(tenant, ()):
                try:
                    sink(incident)
                except Exception as error:
                    self.failures.append((shard, tenant, repr(error)))
            for sink in self.sinks:
                try:
                    sink(tenant, incident)
                except Exception as error:
                    self.failures.append((shard, tenant, repr(error)))
        elif kind == "exported":
            _, _, tenant, snapshot = event
            self._move_payloads[tenant] = snapshot
            signal = self._move_events.get(tenant)
            if signal is not None:
                signal.set()
        elif kind == "imported":
            _, _, tenant = event
            signal = self._import_events.get(tenant)
            if signal is not None:
                signal.set()
        elif kind == "drained":
            _, shard, stats = event
            handle = self._shards.get(shard)
            if handle is not None:
                handle.drained = True
                handle.stats = stats
            self._absorb_stats(shard, stats)
        elif kind == "error":
            _, shard, tenant, message = event
            self.failures.append((shard, tenant, message))

    def _absorb_stats(self, shard: int, stats: Dict) -> None:
        self.shard_stats[shard] = stats
        shed = stats.get("shed_total", 0)
        if shed:
            self.metrics.diagnosis_shed.inc(shed, shard=str(shard))
        for tenant, entry in stats.get("tenants", {}).items():
            self.tenant_stats[tenant] = entry

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain every shard, collect final stats, close the sinks."""
        if self._closed:
            return
        self._closed = True
        for handle in self._shards.values():
            handle.commands.put(("drain",))
        for handle in self._shards.values():
            handle.join()
        # The workers are gone; drain what is still on the bus.
        deadline_empty = False
        while not deadline_empty:
            try:
                event = self._events.get_nowait()
            except queue.Empty:
                deadline_empty = True
            else:
                self._handle_event(event)
        self._collector_stop.set()
        self._collector.join()
        for sinks in self._tenant_sinks.values():
            for sink in sinks:
                close = getattr(sink, "close", None)
                if callable(close):
                    close()
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["FleetConfig", "FleetMetrics", "FleetSupervisor"]
