"""Consistent hashing of tenant ids onto shard workers.

The fleet supervisor places every tenant on exactly one shard. Placement
must be (a) deterministic across processes and runs — routing decisions
may not depend on ``PYTHONHASHSEED`` — and (b) *stable under resharding*:
growing the pool from N to N+1 shards should relocate only ~1/(N+1) of
the tenants, because each relocation pays a shared-memory store export
plus a warm-model resync on the receiving shard.

Classic consistent hashing with virtual nodes delivers both: each shard
owns ``vnodes`` pseudo-random points on a 64-bit ring (blake2b of
``"shard:vnode"``), and a tenant maps to the owner of the first point at
or after the tenant's own hash. The property test in
``tests/fleet/test_ring.py`` pins the ~1/N movement bound.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Ring points per shard. More vnodes smooth the tenant distribution
#: across shards at the cost of a larger (still tiny) sorted ring.
DEFAULT_VNODES = 64


def _hash64(key: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring mapping string keys to shard indices."""

    def __init__(
        self, shards: Sequence[int], vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, int]] = []
        self._hashes: List[int] = []
        self._shards: List[int] = []
        for shard in shards:
            self.add_shard(shard)

    @property
    def shards(self) -> List[int]:
        """The shard indices currently on the ring, sorted."""
        return sorted({shard for _, shard in self._points})

    def add_shard(self, shard: int) -> None:
        """Place one shard's virtual nodes on the ring."""
        if any(s == shard for _, s in self._points):
            raise ConfigurationError(f"shard {shard} is already on the ring")
        for v in range(self.vnodes):
            point = (_hash64(f"{shard}:{v}"), shard)
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
        self._rebuild()

    def remove_shard(self, shard: int) -> None:
        """Remove one shard's virtual nodes from the ring."""
        remaining = [(h, s) for h, s in self._points if s != shard]
        if len(remaining) == len(self._points):
            raise ConfigurationError(f"shard {shard} is not on the ring")
        self._points = remaining
        self._rebuild()

    def _rebuild(self) -> None:
        self._hashes = [h for h, _ in self._points]
        self._shards = [s for _, s in self._points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (first vnode at or after its hash)."""
        if not self._points:
            raise ConfigurationError("the ring has no shards")
        index = bisect.bisect_right(self._hashes, _hash64(key))
        if index == len(self._hashes):
            index = 0
        return self._shards[index]

    def assignments(self, keys: Sequence[str]) -> Dict[str, int]:
        """Map every key to its shard in one pass."""
        return {key: self.shard_for(key) for key in keys}


__all__ = ["DEFAULT_VNODES", "HashRing"]
