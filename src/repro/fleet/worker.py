"""One shard: many tenant runtimes behind a single command loop.

A :class:`ShardWorker` owns the :class:`~repro.fleet.tenant.TenantRuntime`
of every tenant hashed onto it. It is transport-agnostic: :meth:`serve`
consumes command tuples from a queue-like object and emits event tuples
to another, so the same class runs on a thread (queue.Queue) or in a
forked worker process (multiprocessing.Queue) — the supervisor picks.

**Isolation model.** Ingest and diagnosis never share a thread. The
serve loop only ever does per-tick work (tolerant ingest, warm sync, SLO
eval — microseconds per tenant); every ready trigger is handed to a
dedicated dispatch thread. Two mechanisms keep one tenant's diagnosis
storm from starving its neighbours:

* **bounded per-tenant budget** — each tenant may have at most
  ``tenant_budget`` triggers waiting; excess triggers are shed with a
  counted drop (the storm folds into the incidents that do run);
* **fair round-robin dispatch** — the dispatch thread cycles over
  tenants that have work, taking one trigger per visit, so a tenant
  with a deep backlog cannot monopolize the diagnosis thread.

A storming tenant that wants real diagnosis concurrency escapes the GIL
by configuring ``executor="process"`` + ``jobs >= 2``: its component
analyses then run on :class:`~repro.core.engine.SlavePool`'s cached
``ProcessPoolExecutor`` (warm worker processes survive across triggers),
and the shard's serve loop keeps ingesting for the other tenants while
the dispatch thread merely waits on futures.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Tuple

from repro.fleet.tenant import (
    FleetTrigger,
    TenantRuntime,
    TenantSnapshot,
    TenantSpec,
)

#: Sent by the dispatch loop's condition wait to bound drain latency.
_DISPATCH_POLL_SECONDS = 0.1


class ShardWorker:
    """Serve loop + fair dispatcher for one shard's tenants.

    Args:
        shard: This shard's index (stamped on every event).
        events: Queue-like object receiving event tuples.
        tenant_budget: Max triggers one tenant may have queued before
            new ones are shed.
    """

    def __init__(self, shard: int, events, *, tenant_budget: int = 4) -> None:
        self.shard = shard
        self.events = events
        self.tenant_budget = tenant_budget
        self.runtimes: Dict[str, TenantRuntime] = {}
        #: Tenants exported for relocation, still owning their segment.
        self._parked: Dict[str, TenantRuntime] = {}
        self._queues: "OrderedDict[str, Deque[FleetTrigger]]" = OrderedDict()
        self._cv = threading.Condition()
        self._dispatcher: Optional[threading.Thread] = None
        self._draining = False
        self.shed: Dict[str, int] = {}
        self.diagnosed = 0
        self.ingest_ignored = 0

    # ------------------------------------------------------------------
    # Command loop
    # ------------------------------------------------------------------
    def serve(self, commands) -> None:
        """Consume commands until ``drain``; then flush and return."""
        while True:
            command = commands.get()
            kind = command[0]
            if kind == "ingest":
                self._handle_ingest(command[1], command[2])
            elif kind == "add":
                self._handle_add(command[1])
            elif kind == "remove":
                self._handle_remove(command[1])
            elif kind == "export":
                self._handle_export(command[1])
            elif kind == "release":
                self._handle_release(command[1])
            elif kind == "drain":
                self._handle_drain()
                return
            else:  # pragma: no cover - supervisor never sends others
                self.events.put(
                    ("error", self.shard, None, f"unknown command {kind!r}")
                )

    def _handle_ingest(self, tenant: str, batch) -> None:
        runtime = self.runtimes.get(tenant)
        if runtime is None:
            # Routed here after an export or before an add — the
            # supervisor buffers during moves, so this is exceptional.
            self.ingest_ignored += 1
            return
        try:
            ready = runtime.process(batch)
        except Exception as error:  # keep the shard alive
            self.events.put(("error", self.shard, tenant, repr(error)))
            return
        for trigger in ready:
            self._enqueue(tenant, trigger)

    def _handle_add(self, payload) -> None:
        try:
            if isinstance(payload, TenantSnapshot):
                tenant = payload.spec.tenant
                runtime = TenantRuntime.from_state(payload)
                self.runtimes[tenant] = runtime
                self.events.put(("imported", self.shard, tenant))
            else:
                spec: TenantSpec = payload
                self.runtimes[spec.tenant] = TenantRuntime(spec)
        except Exception as error:
            tenant = getattr(
                payload, "tenant", getattr(payload, "spec", None)
            )
            name = getattr(tenant, "tenant", tenant)
            self.events.put(("error", self.shard, name, repr(error)))

    def _handle_remove(self, tenant: str) -> None:
        runtime = self.runtimes.pop(tenant, None)
        if runtime is not None:
            runtime.close()
        with self._cv:
            self._queues.pop(tenant, None)

    def _handle_export(self, tenant: str) -> None:
        runtime = self.runtimes.pop(tenant, None)
        if runtime is None:
            self.events.put(
                ("error", self.shard, tenant, "export of unknown tenant")
            )
            return
        try:
            snapshot = runtime.export_state()
        except Exception as error:
            self.runtimes[tenant] = runtime  # keep serving in place
            self.events.put(("error", self.shard, tenant, repr(error)))
            return
        self._parked[tenant] = runtime
        with self._cv:
            self._queues.pop(tenant, None)
        self.events.put(("exported", self.shard, tenant, snapshot))

    def _handle_release(self, tenant: str) -> None:
        runtime = self._parked.pop(tenant, None)
        if runtime is not None:
            runtime.release()

    def _handle_drain(self) -> None:
        for tenant, runtime in self.runtimes.items():
            for trigger in runtime.flush_pending():
                # Drain-time triggers bypass the budget, mirroring the
                # pipeline's blocking put on close().
                self._enqueue(tenant, trigger, budgeted=False)
        with self._cv:
            self._draining = True
            self._cv.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        stats = self._stats()
        for runtime in self.runtimes.values():
            runtime.close()
        for runtime in self._parked.values():
            runtime.release()
        self.runtimes.clear()
        self._parked.clear()
        self.events.put(("drained", self.shard, stats))

    # ------------------------------------------------------------------
    # Fair dispatch
    # ------------------------------------------------------------------
    def _enqueue(
        self, tenant: str, trigger: FleetTrigger, *, budgeted: bool = True
    ) -> None:
        with self._cv:
            pending = self._queues.get(tenant)
            if pending is None:
                pending = self._queues[tenant] = deque()
            if budgeted and len(pending) >= self.tenant_budget:
                self.shed[tenant] = self.shed.get(tenant, 0) + 1
                return
            pending.append(trigger)
            self._ensure_dispatcher()
            self._cv.notify_all()

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name=f"fchain-fleet-dispatch-{self.shard}",
                daemon=True,
            )
            self._dispatcher.start()

    def _next_trigger(self) -> Optional[Tuple[str, FleetTrigger]]:
        """Round-robin: first tenant with work, rotated to the back."""
        for tenant in list(self._queues):
            pending = self._queues[tenant]
            if pending:
                trigger = pending.popleft()
                self._queues.move_to_end(tenant)
                return tenant, trigger
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                item = self._next_trigger()
                if item is None:
                    if self._draining:
                        return
                    self._cv.wait(_DISPATCH_POLL_SECONDS)
                    continue
            tenant, trigger = item
            runtime = self.runtimes.get(tenant)
            if runtime is None:
                continue  # removed while queued
            try:
                incident = runtime.diagnose(trigger)
            except Exception as error:
                self.events.put(("error", self.shard, tenant, repr(error)))
                continue
            self.diagnosed += 1
            self.events.put(("incident", self.shard, tenant, incident))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _stats(self) -> Dict:
        tenants: Dict[str, Dict] = {}
        for tenant, runtime in self.runtimes.items():
            tenants[tenant] = {
                "ticks": runtime.ticks,
                "triggered": runtime.triggered,
                "incidents": runtime.incident_count,
                "warm_sync_skipped": runtime.warm_sync_skipped,
                "shed": self.shed.get(tenant, 0),
                "tick_seconds": list(runtime.tick_seconds),
            }
        return {
            "shard": self.shard,
            "diagnosed": self.diagnosed,
            "shed_total": sum(self.shed.values()),
            "ingest_ignored": self.ingest_ignored,
            "tenants": tenants,
        }


def shard_worker_main(
    shard: int, commands, events, tenant_budget: int
) -> None:
    """Process-backend entry point (module-level for fork picklability)."""
    ShardWorker(shard, events, tenant_budget=tenant_budget).serve(commands)


__all__ = ["ShardWorker", "shard_worker_main"]
