"""Per-tenant state of the fleet: spec, runtime, relocation snapshot.

A *tenant* is one monitored application: its own tolerant
:class:`~repro.monitoring.store.MetricStore`, its own warm
:class:`~repro.core.fchain.FChain` slave models and its own SLO
detector — exactly the state today's single-app
:class:`~repro.service.pipeline.OnlinePipeline` owns.
:class:`TenantRuntime` is that pipeline's per-tick state machine with
the threading stripped out: ``process()`` returns the triggers that
became ready instead of feeding a private queue, so the shard worker
can dispatch them *fairly across its tenants* (see
:mod:`repro.fleet.worker`). The state machine itself — watermarked
tolerant ingest, non-blocking warm sync, rising-edge + cooldown dedup,
analysis-grace wait — is semantically identical, which is what makes a
fleet of one tenant produce bit-identical diagnoses to the standalone
pipeline (pinned by ``tests/fleet/test_equivalence.py``).

Relocation: :meth:`TenantRuntime.export_state` snapshots the store
through the zero-copy shared-memory export and pickles the small
auxiliary state (detector, dedup state, pending triggers, counters).
:meth:`TenantRuntime.from_state` rebuilds a live runtime on the
receiving shard — the store via
:func:`~repro.monitoring.shared.materialize_store`, the warm Markov
models by resyncing from the rebuilt store, which
``MarkovPredictor.update_many`` chunk invariance makes bit-identical to
the models that never moved.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.types import ComponentId, Metric
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.core.topology import OnlineTopology
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.shared import (
    SharedStoreExport,
    SharedStoreHandle,
    materialize_store,
)
from repro.monitoring.slo import SLODetector
from repro.monitoring.store import DEFAULT_RETENTION, IngestBatch, MetricStore
from repro.service.incident import Incident
from repro.service.sources import TickBatch


@dataclass(frozen=True)
class TenantSpec:
    """Everything needed to (re)build one tenant's runtime on any shard.

    Picklable by construction: specs travel over the shard command
    queues of the process backend and inside relocation snapshots.

    Attributes:
        tenant: Unique tenant id — the consistent-hash routing key.
        detector: SLO detector instance evaluating the tenant's
            performance signal (plain-list state, picklable).
        config: FChain configuration for this tenant's diagnosis engine.
        policy: Data-quality policy of the tenant's store (defaults to
            the tolerant defaults).
        seed: Deterministic seed label for the diagnosis engine.
        jobs: Slave fan-out width (``>= 2`` spreads component analyses
            over the configured executor).
        slave_timeout: Optional per-slave analysis timeout in seconds.
        retention: Ring retention of the tenant's store.
        start: First tick of the tenant's timeline.
        topology_halflife: When set, the tenant learns an
            :class:`~repro.core.topology.OnlineTopology` with this edge
            confidence half-life from its batches' ``edges`` evidence;
            the learned graph feeds diagnosis (weighted pruning, and
            neighborhood scoping when the config asks for it). ``None``
            disables topology learning (the historical behaviour).
        origin: Component the tenant's SLO signal is observed at — the
            ranking origin for neighborhood-scoped diagnosis.
    """

    tenant: str
    detector: SLODetector
    config: FChainConfig = field(default_factory=FChainConfig)
    policy: Optional[DataQualityPolicy] = None
    seed: object = 0
    jobs: Optional[int] = None
    slave_timeout: Optional[float] = None
    retention: int = DEFAULT_RETENTION
    start: int = 0
    topology_halflife: Optional[float] = None
    origin: Optional[ComponentId] = None


@dataclass
class FleetTrigger:
    """One deduplicated violation awaiting (or undergoing) diagnosis."""

    violation_tick: int
    detected_at: float  # time.monotonic() at SLO detection
    dispatched_tick: Optional[int] = None


@dataclass
class TenantSnapshot:
    """A relocating tenant's full state, in transit between shards.

    ``handle`` references the source shard's live shared-memory export —
    the source keeps the export open until the supervisor confirms the
    target has imported (the ``release`` step of the rebalance
    protocol), so the segment stays mapped while this snapshot is in
    flight even across processes.
    """

    spec: TenantSpec
    handle: SharedStoreHandle
    detector: SLODetector
    violating: bool
    last_trigger: Optional[int]
    pending: List[FleetTrigger]
    counters: Dict[str, int]
    #: The learned online topology, carried wholesale (its state is a
    #: few small dicts — cheap to pickle next to the store handle).
    topology: Optional[OnlineTopology] = None


class TenantRuntime:
    """One tenant's live pipeline state on a shard worker.

    Mirrors :class:`~repro.service.pipeline.OnlinePipeline.process`
    stage for stage; see the module docstring for why it is a separate
    class rather than a refactor of the pipeline.
    """

    def __init__(
        self,
        spec: TenantSpec,
        *,
        store: Optional[MetricStore] = None,
        detector: Optional[SLODetector] = None,
    ) -> None:
        self.spec = spec
        self.config = spec.config.validate()
        self.store = store if store is not None else MetricStore(
            start=spec.start,
            policy=spec.policy or DataQualityPolicy(),
            retention=spec.retention,
        )
        self.detector = detector if detector is not None else spec.detector
        self.topology: Optional[OnlineTopology] = (
            OnlineTopology(halflife=spec.topology_halflife)
            if spec.topology_halflife is not None
            else None
        )
        self.fchain = FChain(
            self.config,
            seed=spec.seed,
            jobs=spec.jobs,
            slave_timeout=spec.slave_timeout,
            topology=self.topology,
        )
        # Serializes slave mutation between the shard's ingest loop
        # (warm sync, try-acquire only) and its diagnosis thread.
        self._slave_lock = threading.Lock()
        self._pending: List[FleetTrigger] = []
        self._last_trigger: Optional[int] = None
        self._violating = False
        # The source-side shared-memory export of an in-flight
        # relocation; closed when the supervisor sends "release".
        self._export: Optional[SharedStoreExport] = None

        self.ticks = 0
        self.triggered = 0
        self.warm_sync_skipped = 0
        self.incident_count = 0
        self.tick_seconds: List[float] = []

    # ------------------------------------------------------------------
    # Ingest-side stages (one call per tick, on the shard serve loop)
    # ------------------------------------------------------------------
    def process(self, batch: TickBatch) -> List[FleetTrigger]:
        """One tick: ingest → warm sync → SLO edge → grace flush.

        Returns the triggers whose post-violation grace data arrived
        this tick, ``dispatched_tick`` already stamped — the caller owns
        queueing them (with its own budget and fairness rules).
        """
        started = time.perf_counter()
        t = int(batch.time)
        self.store.ingest(
            IngestBatch(samples=batch.samples, watermark=t + 1)
        )
        self._learn_topology(t, batch)
        self._warm_sync()
        rising = False
        if batch.performance is not None:
            status = self.detector.observe(t, batch.performance)
            rising = status.violated and not self._violating
            self._violating = status.violated
        if rising:
            self._on_violation(t)
        ready = self._flush_ready()
        self.ticks += 1
        self.tick_seconds.append(time.perf_counter() - started)
        return ready

    def _learn_topology(self, t: int, batch: TickBatch) -> None:
        """Feed one tick's evidence into the tenant's online topology.

        Mirrors ``OnlinePipeline._learn_topology``: traffic counts are
        the edge-creating channel, the ``network_out`` samples
        corroborate known edges through delta co-movement.
        """
        if self.topology is None:
            return
        if batch.edges:
            self.topology.observe_traffic(t, batch.edges)
        signals = {
            sample.component: sample.value
            for sample in batch.samples
            if sample.metric == Metric.NETWORK_OUT
        }
        if signals:
            self.topology.observe_comovement(t, signals)

    def _warm_sync(self) -> None:
        """Catch the slave models up — never waiting on a diagnosis."""
        slave = self.fchain.master.slave
        if slave is None:
            return
        if not self._slave_lock.acquire(blocking=False):
            self.warm_sync_skipped += 1
            return
        try:
            slave.sync_with_store(self.store, self.store.end)
        finally:
            self._slave_lock.release()

    def _on_violation(self, t: int) -> None:
        cooldown = self.config.service_cooldown
        if (
            self._last_trigger is not None
            and t - self._last_trigger < cooldown
        ):
            return  # flapping within the window folds into the incident
        self._last_trigger = t
        self.triggered += 1
        self._pending.append(
            FleetTrigger(violation_tick=t, detected_at=time.monotonic())
        )

    def _flush_ready(self) -> List[FleetTrigger]:
        if not self._pending:
            return []
        grace = self.config.analysis_grace
        ready: List[FleetTrigger] = []
        waiting: List[FleetTrigger] = []
        for trigger in self._pending:
            if self.store.end >= trigger.violation_tick + grace + 1:
                trigger.dispatched_tick = self.store.end - 1
                ready.append(trigger)
            else:
                waiting.append(trigger)
        self._pending = waiting
        return ready

    def flush_pending(self) -> List[FleetTrigger]:
        """Drain-time flush: grace data will never arrive — diagnose on
        what was recorded (mirrors ``OnlinePipeline.close``)."""
        pending, self._pending = self._pending, []
        for trigger in pending:
            trigger.dispatched_tick = self.store.end - 1
        return pending

    # ------------------------------------------------------------------
    # Diagnosis side (on the shard's dispatch thread)
    # ------------------------------------------------------------------
    def diagnose(self, trigger: FleetTrigger) -> Incident:
        """Run one localization; raises on engine failure."""
        with self._slave_lock:
            diagnosis = self.fchain.localize(
                self.store,
                violation_time=trigger.violation_tick,
                origin=self.spec.origin,
            )
        incident = Incident(
            index=self.incident_count,
            violation_tick=trigger.violation_tick,
            dispatched_tick=trigger.dispatched_tick
            if trigger.dispatched_tick is not None
            else trigger.violation_tick,
            trigger_latency_seconds=time.monotonic() - trigger.detected_at,
            diagnosis=diagnosis,
            quality=diagnosis.confidence,
        )
        self.incident_count += 1
        return incident

    # ------------------------------------------------------------------
    # Relocation
    # ------------------------------------------------------------------
    def export_state(self) -> TenantSnapshot:
        """Snapshot this tenant for relocation to another shard.

        The shared-memory export stays open (owned by this runtime)
        until :meth:`release` — the target shard materializes from the
        segment by name, possibly from another process.
        """
        self._export = SharedStoreExport(self.store)
        return TenantSnapshot(
            spec=self.spec,
            handle=self._export.handle,
            detector=self.detector,
            violating=self._violating,
            last_trigger=self._last_trigger,
            pending=list(self._pending),
            counters={
                "ticks": self.ticks,
                "triggered": self.triggered,
                "warm_sync_skipped": self.warm_sync_skipped,
                "incident_count": self.incident_count,
            },
            topology=self.topology,
        )

    def release(self) -> None:
        """Drop the relocation export and this runtime's engine state."""
        if self._export is not None:
            self._export.close()
            self._export = None
        self.close()

    @classmethod
    def from_state(cls, snapshot: TenantSnapshot) -> "TenantRuntime":
        """Rebuild a live runtime from a relocation snapshot."""
        spec = snapshot.spec
        store = materialize_store(
            snapshot.handle, retention=spec.retention
        )
        runtime = cls(spec, store=store, detector=snapshot.detector)
        runtime._violating = snapshot.violating
        runtime._last_trigger = snapshot.last_trigger
        runtime._pending = list(snapshot.pending)
        runtime.ticks = snapshot.counters.get("ticks", 0)
        runtime.triggered = snapshot.counters.get("triggered", 0)
        runtime.warm_sync_skipped = snapshot.counters.get(
            "warm_sync_skipped", 0
        )
        runtime.incident_count = snapshot.counters.get("incident_count", 0)
        if snapshot.topology is not None:
            # The learned graph relocates wholesale: edge confidences
            # are part of diagnosis state, and re-learning from scratch
            # on the target shard would widen every scoped diagnosis
            # until the graph re-converged.
            runtime.topology = snapshot.topology
            runtime.fchain.master.topology = snapshot.topology
        # Warm the models from the rebuilt store: update_many chunk
        # invariance makes this bit-identical to models that streamed
        # the same history tick by tick and never moved.
        runtime._warm_sync()
        return runtime

    def close(self) -> None:
        self.fchain.close()


__all__ = [
    "FleetTrigger",
    "TenantRuntime",
    "TenantSnapshot",
    "TenantSpec",
]
