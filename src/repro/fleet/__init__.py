"""Multi-tenant fleet layer: many monitored applications, few workers.

``repro.fleet`` scales the single-app online pipeline
(:mod:`repro.service`) to a *fleet*: each tenant keeps its own tolerant
metric store, warm Markov slaves and SLO detector, and tenants are
consistently hashed onto a small pool of long-lived shard workers. The
:class:`~repro.fleet.supervisor.FleetSupervisor` owns placement, routed
ingest with backpressure, the shared incident bus, and live rebalancing
(tenants relocate with their ring-buffer state over the zero-copy
shared-memory export).
"""

from repro.fleet.manifest import (
    FaultPlan,
    FleetFeed,
    FleetManifest,
    FleetRunResult,
    load_manifest,
    manifest_from_dict,
    run_manifest,
)
from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.fleet.supervisor import FleetConfig, FleetMetrics, FleetSupervisor
from repro.fleet.tenant import (
    FleetTrigger,
    TenantRuntime,
    TenantSnapshot,
    TenantSpec,
)
from repro.fleet.worker import ShardWorker

__all__ = [
    "DEFAULT_VNODES",
    "FaultPlan",
    "FleetConfig",
    "FleetFeed",
    "FleetManifest",
    "FleetMetrics",
    "FleetRunResult",
    "FleetSupervisor",
    "FleetTrigger",
    "HashRing",
    "ShardWorker",
    "TenantRuntime",
    "TenantSnapshot",
    "TenantSpec",
    "load_manifest",
    "manifest_from_dict",
    "run_manifest",
]
