"""The long-running online localization loop.

This is the paper's deployment shape (Sec. II-A): FChain runs *behind* a
client-side SLO detector, its slave models stay warm on the live 1 Hz
metric stream, and the master is invoked the moment a sustained
violation is declared. :class:`OnlinePipeline` wires the existing pieces
into that loop:

1. **Ingest** — every :class:`~repro.service.sources.TickBatch` from the
   feed goes through the tolerant :meth:`MetricStore.ingest` path, so
   gaps, NaN readings, clock skew and late delivery are handled by the
   data-quality policy, not by the loop.
2. **Warm-up** — the persistent slave's Markov models are synced with
   the store each tick (``sync_with_store``), keeping diagnosis cost
   O(look-back window) no matter how long the loop has run.
3. **Detect** — the batch's performance signal feeds the loop's
   :class:`~repro.monitoring.slo.SLODetector`.
4. **Dispatch** — a *rising edge* of the violation signal (subject to
   the ``service_cooldown`` dedup window) creates one trigger; the
   trigger waits until the post-violation ``analysis_grace`` data has
   been recorded, then enters a bounded queue consumed by a single
   background diagnosis worker.

Backpressure invariant: **ingest never blocks on diagnosis.** The
dispatch queue is bounded (``service_queue_depth``); when it is full, a
new trigger is *shed* with a counted drop rather than making the feed
wait. The per-tick warm-up sync is skipped (not awaited) while a
diagnosis holds the slave — the slave catches itself up inside
``analyze`` or on the next free tick.

Shutdown is graceful: :meth:`close` flushes triggers still waiting for
grace data, drains the queue, joins the worker and closes the sinks.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx

from repro.common.errors import ReproError
from repro.common.types import ComponentId, Metric
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.core.topology import OnlineTopology
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.slo import SLODetector
from repro.monitoring.store import IngestBatch, MetricStore
from repro.obs.trace import (
    STAGE_DISPATCH,
    STAGE_DRAIN,
    STAGE_SERVICE_TICK,
    STAGE_SLO_EVAL,
    STAGE_STORE_SYNC,
    make_tracer,
)
from repro.service.incident import Incident, ServiceMetrics
from repro.service.sources import TickBatch

#: Queue item that tells the diagnosis worker to exit.
_SENTINEL = None


@dataclass
class _Trigger:
    """One deduplicated violation awaiting (or undergoing) diagnosis."""

    violation_tick: int
    detected_at: float  # time.monotonic() at SLO detection
    dispatched_tick: Optional[int] = None


class OnlinePipeline:
    """Continuous ingest → SLO detection → triggered localization.

    Args:
        feed: Iterable of :class:`~repro.service.sources.TickBatch`
            (see :mod:`repro.service.sources`).
        detector: The SLO detector evaluating the feed's performance
            signal. Use a dedicated instance (with a ``retention``
            window for long runs), not one shared with a simulated app.
        config: FChain configuration; ``service_cooldown`` and
            ``service_queue_depth`` parameterize the loop itself.
        dependency_graph: Optional offline-discovered dependency graph
            for integrated pinpointing.
        seed: Deterministic seed label for the diagnosis engine.
        jobs: Slave fan-out width (``>= 2`` analyses components in
            parallel on the configured executor).
        slave_timeout: Optional per-slave analysis timeout in seconds.
        store: The store to ingest into; defaults to a fresh
            policy-enabled store. A caller-supplied store must carry a
            :class:`~repro.monitoring.quality.DataQualityPolicy`.
        policy: Policy of the default store (ignored when ``store`` is
            given).
        sinks: Callables receiving each finished
            :class:`~repro.service.incident.Incident`; sinks with a
            ``close()`` method are closed at drain time.
        registry: Metrics registry for the incident/drop counters
            (defaults to the process-wide registry).
        topology: Optional :class:`~repro.core.topology.OnlineTopology`
            the loop keeps learning while it ingests: each batch's
            ``edges`` feed :meth:`~repro.core.topology.OnlineTopology.observe_traffic`
            and the per-component ``network_out`` samples corroborate
            known edges via co-movement. Diagnoses snapshot the learned
            graph (and, in ``topology_mode="neighborhood"``, scope the
            slave fan-out around ``origin``).
        origin: Component the SLO signal is observed at (e.g. a mesh
            gateway) — the ranking origin for neighborhood-scoped
            diagnosis. Ignored in ``topology_mode="full"``.

    Attributes:
        incidents: Finished incidents, in completion order.
        failures: ``(violation_tick, exception)`` pairs from diagnoses
            or sinks that raised (the loop keeps running).
        ticks: Batches processed.
        triggered: Triggers created (after edge/cooldown dedup).
        dropped: Triggers shed because the dispatch queue was full.
        warm_sync_skipped: Ticks whose warm-up sync was skipped because
            a diagnosis held the slave.
    """

    def __init__(
        self,
        feed,
        detector: SLODetector,
        *,
        config: Optional[FChainConfig] = None,
        dependency_graph: Optional[nx.DiGraph] = None,
        seed: object = 0,
        jobs: Optional[int] = None,
        slave_timeout: Optional[float] = None,
        store: Optional[MetricStore] = None,
        policy: Optional[DataQualityPolicy] = None,
        sinks=(),
        registry=None,
        topology: Optional[OnlineTopology] = None,
        origin: Optional[ComponentId] = None,
    ) -> None:
        self.config = (config or FChainConfig()).validate()
        self.feed = iter(feed)
        self.detector = detector
        if store is None:
            store = MetricStore(policy=policy or DataQualityPolicy())
        elif store.policy is None:
            raise ReproError(
                "the online pipeline ingests through the tolerant path: "
                "construct the store with MetricStore(policy=...)"
            )
        self.store = store
        self.topology = topology
        self.origin = origin
        self.fchain = FChain(
            self.config,
            dependency_graph,
            seed=seed,
            jobs=jobs,
            slave_timeout=slave_timeout,
            topology=topology,
        )
        self.sinks = list(sinks)
        self.tracer = make_tracer(self.config.telemetry, registry=registry)
        self._registry = registry
        self._metrics: Optional[ServiceMetrics] = None

        self._queue: "queue.Queue" = queue.Queue(
            maxsize=self.config.service_queue_depth
        )
        self._worker: Optional[threading.Thread] = None
        # Serializes slave-state mutation between the ingest thread's
        # warm-up sync and the worker's diagnosis. The ingest side only
        # ever try-acquires it — see _warm_sync.
        self._slave_lock = threading.Lock()
        self._pending: List[_Trigger] = []
        self._last_trigger: Optional[int] = None
        self._violating = False
        self._closed = False

        self.incidents: List[Incident] = []
        self.failures: List[Tuple[int, Exception]] = []
        self.ticks = 0
        self.triggered = 0
        self.dropped = 0
        self.warm_sync_skipped = 0

    # ------------------------------------------------------------------
    # Driving the loop
    # ------------------------------------------------------------------
    def run(self, max_ticks: Optional[int] = None) -> List[Incident]:
        """Consume the feed (optionally bounded), drain, return incidents."""
        processed = 0
        for batch in self.feed:
            self.process(batch)
            processed += 1
            if max_ticks is not None and processed >= max_ticks:
                break
        self.close()
        return list(self.incidents)

    def process(self, batch: TickBatch) -> None:
        """Feed one tick's batch through ingest → SLO → dispatch."""
        if self._closed:
            raise ReproError("the pipeline is closed")
        t = int(batch.time)
        tracer = self.tracer
        with tracer.span(STAGE_SERVICE_TICK, tick=t) as tick_span:
            self.store.ingest(
                IngestBatch(samples=batch.samples, watermark=t + 1)
            )
            tick_span.count("samples_ingested", len(batch.samples))
            self._learn_topology(t, batch)
            self._warm_sync(tick_span)
            with tick_span.child(STAGE_SLO_EVAL) as slo_span:
                rising = False
                if batch.performance is not None:
                    status = self.detector.observe(t, batch.performance)
                    rising = status.violated and not self._violating
                    self._violating = status.violated
                    slo_span.tag(violated=status.violated)
            if rising:
                self._on_violation(t)
            self._flush_ready(tick_span)
            self.ticks += 1
        if tracer.enabled:
            tracer.observe(tick_span)

    def __enter__(self) -> "OnlinePipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Drain in-flight work, join the worker, close the sinks."""
        if self._closed:
            return
        self._closed = True
        tracer = self.tracer
        with tracer.span(STAGE_DRAIN) as drain_span:
            # Triggers still waiting for grace data will never see it —
            # diagnose on what was recorded. Ingest has stopped, so a
            # blocking put cannot stall anything but the drain itself.
            pending, self._pending = self._pending, []
            for trigger in pending:
                trigger.dispatched_tick = self.store.end - 1
                self._ensure_worker()
                self._queue.put(trigger)
            drain_span.count("pending_flushed", len(pending))
            if self._worker is not None:
                self._queue.put(_SENTINEL)
                self._worker.join()
                self._worker = None
            drain_span.count("incidents", len(self.incidents))
            drain_span.count("triggers_dropped", self.dropped)
        if tracer.enabled:
            tracer.observe(drain_span)
        self.fchain.close()
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()

    # ------------------------------------------------------------------
    # Ingest-side stages
    # ------------------------------------------------------------------
    def _warm_sync(self, tick_span) -> None:
        """Keep the slave's models caught up — without ever waiting.

        The worker holds ``_slave_lock`` for the duration of a
        diagnosis; blocking here would stall ingest behind it, which is
        exactly the backpressure inversion the loop must not have. A
        skipped sync costs nothing: ``analyze`` syncs the look-back
        window itself, and the next free tick catches the rest up.
        """
        slave = self.fchain.master.slave
        if slave is None:
            return
        if not self._slave_lock.acquire(blocking=False):
            self.warm_sync_skipped += 1
            return
        try:
            with tick_span.child(STAGE_STORE_SYNC):
                slave.sync_with_store(self.store, self.store.end)
        finally:
            self._slave_lock.release()

    def _learn_topology(self, t: int, batch: TickBatch) -> None:
        """Feed one tick's evidence into the online topology, if any.

        Traffic counts are the primary channel (they create and refresh
        edges); the per-component ``network_out`` samples corroborate
        already-known edges through delta co-movement. Both are cheap —
        a dict pass per tick — and run on the ingest thread, so the
        learned graph is always current when a diagnosis snapshots it.
        """
        if self.topology is None:
            return
        if batch.edges:
            self.topology.observe_traffic(t, batch.edges)
        signals = {
            sample.component: sample.value
            for sample in batch.samples
            if sample.metric == Metric.NETWORK_OUT
        }
        if signals:
            self.topology.observe_comovement(t, signals)

    def _on_violation(self, t: int) -> None:
        """A rising violation edge: dedup against the cooldown window."""
        cooldown = self.config.service_cooldown
        if (
            self._last_trigger is not None
            and t - self._last_trigger < cooldown
        ):
            return  # flapping within the window folds into the incident
        self._last_trigger = t
        self.triggered += 1
        self._pending.append(
            _Trigger(violation_tick=t, detected_at=time.monotonic())
        )

    def _flush_ready(self, tick_span) -> None:
        """Dispatch triggers whose post-violation grace data arrived."""
        if not self._pending:
            return
        grace = self.config.analysis_grace
        waiting: List[_Trigger] = []
        for trigger in self._pending:
            if self.store.end >= trigger.violation_tick + grace + 1:
                self._dispatch(trigger, tick_span)
            else:
                waiting.append(trigger)
        self._pending = waiting

    def _dispatch(self, trigger: _Trigger, tick_span) -> None:
        """Enqueue one trigger — or shed it if the queue is full."""
        with tick_span.child(
            STAGE_DISPATCH, violation_tick=trigger.violation_tick
        ) as dispatch_span:
            trigger.dispatched_tick = self.store.end - 1
            self._ensure_worker()
            try:
                self._queue.put_nowait(trigger)
                dispatch_span.tag(queued=True)
            except queue.Full:
                self.dropped += 1
                self._service_metrics().dropped.inc(1)
                dispatch_span.tag(queued=False)

    # ------------------------------------------------------------------
    # Diagnosis worker
    # ------------------------------------------------------------------
    def _ensure_worker(self) -> None:
        if self._worker is None:
            self._worker = threading.Thread(
                target=self._worker_loop, name="fchain-dispatch", daemon=True
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            trigger = self._queue.get()
            try:
                if trigger is _SENTINEL:
                    return
                self._diagnose(trigger)
            finally:
                self._queue.task_done()

    def _diagnose(self, trigger: _Trigger) -> None:
        try:
            with self._slave_lock:
                diagnosis = self.fchain.localize(
                    self.store,
                    violation_time=trigger.violation_tick,
                    origin=self.origin,
                )
        except Exception as error:  # keep the loop alive
            self.failures.append((trigger.violation_tick, error))
            return
        incident = Incident(
            index=len(self.incidents),
            violation_tick=trigger.violation_tick,
            dispatched_tick=trigger.dispatched_tick
            if trigger.dispatched_tick is not None
            else trigger.violation_tick,
            trigger_latency_seconds=time.monotonic() - trigger.detected_at,
            diagnosis=diagnosis,
            quality=diagnosis.confidence,
        )
        self.incidents.append(incident)
        self._service_metrics().incidents.inc(1, quality=incident.quality)
        for sink in self.sinks:
            try:
                sink(incident)
            except Exception as error:
                self.failures.append((trigger.violation_tick, error))

    def _service_metrics(self) -> ServiceMetrics:
        if self._metrics is None:
            self._metrics = ServiceMetrics(self._registry)
        return self._metrics


__all__ = ["OnlinePipeline"]
