"""Incident records and delivery sinks of the online service loop.

An :class:`Incident` is what the loop produces: one sustained SLO
violation, deduplicated and diagnosed. Sinks receive finished incidents
— any callable works; :class:`JsonlSink` appends machine-readable lines
to a file and :class:`CallbackSink` adapts a plain function (it exists
mostly so user code reads symmetrically with the file sink).

:class:`ServiceMetrics` mirrors the lazy Prometheus-counter pattern of
:class:`~repro.monitoring.quality.IngestMetrics`: counters are created
on first incident/drop, so an uneventful loop touches no registry.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.common.jsonl import JsonlWriter
from repro.core.diagnosis import Diagnosis


@dataclass
class Incident:
    """One diagnosed SLO violation.

    Attributes:
        index: Sequence number of the incident within this loop (0-based).
        violation_tick: The tick at which the SLO detector declared the
            sustained violation that triggered this incident.
        dispatched_tick: The tick at which the diagnosis was dispatched —
            ``violation_tick`` plus the analysis-grace wait (the master
            contacts the slaves only once the post-violation grace data
            has been recorded), or later if the trigger queued behind an
            in-flight diagnosis at dispatch time.
        trigger_latency_seconds: Wall-clock time from the detector
            declaring the violation to the diagnosis completing —
            the paper's end-to-end online localization latency.
        diagnosis: The full :class:`~repro.core.diagnosis.Diagnosis`.
        quality: The diagnosis confidence grade (``"full"``,
            ``"degraded"`` or ``"inconclusive"``) at completion time.
    """

    index: int
    violation_tick: int
    dispatched_tick: int
    trigger_latency_seconds: float
    diagnosis: Diagnosis
    quality: str

    @property
    def faulty(self) -> List[str]:
        """Pinpointed faulty components, sorted."""
        return sorted(self.diagnosis.faulty)

    def to_dict(self) -> Dict:
        """JSON-ready record (the :class:`JsonlSink` line format)."""
        return {
            "index": self.index,
            "violation_tick": self.violation_tick,
            "dispatched_tick": self.dispatched_tick,
            "trigger_latency_seconds": self.trigger_latency_seconds,
            "quality": self.quality,
            "faulty": self.faulty,
            "external_factor": self.diagnosis.external_factor,
            "skipped": sorted(self.diagnosis.skipped),
            "diagnosis_latency_seconds": self.diagnosis.latency_seconds,
        }

    def summary(self) -> str:
        """One-line operator summary."""
        verdict = (
            f"faulty={self.faulty}"
            if self.faulty
            else ("external factor" if self.diagnosis.external_factor
                  else "no culprit pinpointed")
        )
        return (
            f"incident #{self.index}: violation at t={self.violation_tick}, "
            f"{verdict}, quality={self.quality}, "
            f"latency {self.trigger_latency_seconds:.2f}s"
        )


class CallbackSink:
    """Deliver incidents to a plain callable."""

    def __init__(self, fn: Callable[[Incident], None]) -> None:
        self.fn = fn

    def __call__(self, incident: Incident) -> None:
        self.fn(incident)


class JsonlSink:
    """Append one JSON line per incident to a file.

    Built on the shared open-once :class:`~repro.common.jsonl.JsonlWriter`
    (the same appender behind the durable JSONL segment backend of
    :mod:`repro.edge.store`): the handle is opened exactly once, every
    line is flushed as written, and ``fsync=True`` makes each completed
    incident durable against power loss, not just process crash.
    ``close()`` is called by the pipeline at drain time.
    """

    def __init__(self, path, *, fsync: bool = False) -> None:
        self._writer = JsonlWriter(path, fsync=fsync)

    @property
    def path(self) -> pathlib.Path:
        return self._writer.path

    def __call__(self, incident: Incident) -> None:
        self._writer.write(incident.to_dict())

    def flush(self) -> None:
        self._writer.flush()

    def close(self) -> None:
        self._writer.close()


class ServiceMetrics:
    """Lazily created incident/drop counters on a metrics registry.

    Created by the pipeline on the first incident or shed trigger, so a
    loop that never violates its SLO registers nothing.
    """

    def __init__(self, registry=None) -> None:
        if registry is None:
            from repro.obs.registry import default_registry

            registry = default_registry()
        self.incidents = registry.counter(
            "fchain_incidents_total",
            "Incidents diagnosed by the online service loop",
            ("quality",),
        )
        self.dropped = registry.counter(
            "fchain_dispatch_dropped_total",
            "Diagnosis triggers shed because the dispatch queue was full",
        )


__all__ = ["CallbackSink", "Incident", "JsonlSink", "ServiceMetrics"]
