"""Metric feeds for the online service loop.

A *feed* is any iterator of :class:`TickBatch` objects — one batch per
wall-clock tick, carrying the timestamped metric samples that arrived
during the tick plus (optionally) the application-level performance
signal the SLO detector evaluates. Three concrete feeds cover the
deployment shapes of :class:`~repro.service.pipeline.OnlinePipeline`:

* :class:`SimFeed` — drives a simulated
  :class:`~repro.apps.base.Application` live, one tick per ``next()``
  (``repro serve``);
* :class:`StoreReplayFeed` — replays a recorded
  :class:`~repro.monitoring.store.MetricStore` (e.g. loaded from CSV via
  :func:`repro.monitoring.io.load_store_csv`), re-creating gaps as
  missing samples (``repro replay``);
* :class:`CallableFeed` — adapts an in-process callable producing
  batches (a custom collector), terminating when it returns ``None``.

Feeds produce *timestamped* samples; the pipeline pushes them through
the tolerant :meth:`MetricStore.ingest` path, so feeds are free to skip
ticks, deliver late, or carry skewed clocks — exactly what the chaos
wrapper (:class:`repro.eval.chaos.CorruptedFeed`) injects.
"""

from __future__ import annotations

import csv
import math
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import ReproError
from repro.common.types import MetricSample

#: CSV header of a performance trace (``repro replay``'s second input).
PERFORMANCE_HEADER = ("time", "value")


@dataclass
class TickBatch:
    """Everything a feed delivers for one tick.

    Attributes:
        time: The tick this batch belongs to.
        samples: Timestamped metric samples that *arrived* during the
            tick. A sample's own ``time`` may differ from the batch time
            (late delivery, clock skew) — the ingest path sorts it out.
        performance: The application-level SLO signal for this tick
            (average latency, job progress, ...), or ``None`` when no
            performance measurement arrived this tick.
        edges: Per-edge traffic observed during the tick, as
            ``{(src, dst): items}`` — evidence for an
            :class:`~repro.core.topology.OnlineTopology` the pipeline
            may be learning. ``None`` when the collector has no edge
            visibility (topology learning then relies on metric
            co-movement alone).
    """

    time: int
    samples: List[MetricSample] = field(default_factory=list)
    performance: Optional[float] = None
    edges: Optional[Dict[tuple, float]] = None


class SimFeed:
    """Drive a simulated application live, one tick per ``next()``.

    Each iteration advances the application by one simulated second and
    emits that tick's monitor samples plus the measured performance
    signal. The application keeps its own store and SLO detector (they
    evolve as in any sim run); the pipeline ingests into *its own*
    store and detector, so the online loop exercises the same code path
    a production collector would.

    Args:
        app: The application to drive (``finalize()``-d).
        duration: Ticks to emit before the feed ends (``None`` = run
            until the consumer stops).
    """

    def __init__(self, app, duration: Optional[int] = None) -> None:
        self.app = app
        self.duration = duration
        self._emitted = 0

    def __iter__(self) -> "SimFeed":
        return self

    def __next__(self) -> TickBatch:
        if self.duration is not None and self._emitted >= self.duration:
            raise StopIteration
        app = self.app
        t = app.time
        app.tick(t)
        app.time += 1
        self._emitted += 1
        store = app.store
        samples = [
            MetricSample(
                component,
                metric,
                t,
                float(store.series(component, metric).values[-1]),
            )
            for component in store.components
            for metric in store.metrics_for(component)
        ]
        performance = None
        if app.slo is not None and app.slo.samples:
            performance = float(app.slo.samples[-1])
        edges = None
        if hasattr(app, "edge_traffic"):
            edges = app.edge_traffic()
        return TickBatch(
            time=t, samples=samples, performance=performance, edges=edges
        )


class StoreReplayFeed:
    """Replay a recorded metric store tick by tick.

    NaN slots in the recorded series (unfillable telemetry gaps) are
    re-created as *missing samples* — the tick simply carries nothing
    for that series — so a degraded recording replays as degraded, not
    as a stream of NaN readings.

    Args:
        store: The recorded store to replay.
        performance: The application performance signal, as a mapping
            of tick to value (ticks absent from the mapping replay with
            ``performance=None``).
    """

    def __init__(
        self,
        store,
        performance: Optional[Dict[int, float]] = None,
    ) -> None:
        self.store = store
        self.performance = dict(performance) if performance else {}
        self._series = {
            (component, metric): store.series(component, metric)
            for component in store.components
            for metric in store.metrics_for(component)
        }
        self._time = store.start

    def __iter__(self) -> "StoreReplayFeed":
        return self

    def __next__(self) -> TickBatch:
        t = self._time
        if t >= self.store.end:
            raise StopIteration
        self._time += 1
        samples = []
        for (component, metric), series in self._series.items():
            slot = t - series.start
            if slot < 0 or slot >= len(series):
                continue
            value = float(series.values[slot])
            if math.isnan(value):
                continue  # replay the gap as a gap
            samples.append(MetricSample(component, metric, t, value))
        return TickBatch(
            time=t, samples=samples, performance=self.performance.get(t)
        )


class CallableFeed:
    """Adapt an in-process callable into a feed.

    The callable is invoked once per iteration and must return the next
    :class:`TickBatch`, or ``None`` to end the feed.
    """

    def __init__(self, fn: Callable[[], Optional[TickBatch]]) -> None:
        self.fn = fn

    def __iter__(self) -> "CallableFeed":
        return self

    def __next__(self) -> TickBatch:
        batch = self.fn()
        if batch is None:
            raise StopIteration
        return batch


def save_performance_csv(path, performance: Dict[int, float]) -> None:
    """Write a ``time,value`` performance trace for ``repro replay``."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(PERFORMANCE_HEADER)
        for t in sorted(performance):
            writer.writerow([t, performance[t]])


def load_performance_csv(path) -> Dict[int, float]:
    """Load a ``time,value`` performance trace (``repro replay`` input)."""
    path = pathlib.Path(path)
    performance: Dict[int, float] = {}
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = tuple(next(reader, ()))
        if header != PERFORMANCE_HEADER:
            raise ReproError(
                f"expected CSV header {','.join(PERFORMANCE_HEADER)}, "
                f"got {header}"
            )
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                performance[int(row[0])] = float(row[1])
            except (ValueError, IndexError) as error:
                raise ReproError(
                    f"{path}:{line_number}: bad row {row!r}: {error}"
                ) from error
    if not performance:
        raise ReproError(f"{path}: no performance samples")
    return performance


__all__ = [
    "CallableFeed",
    "PERFORMANCE_HEADER",
    "SimFeed",
    "StoreReplayFeed",
    "TickBatch",
    "load_performance_csv",
    "save_performance_csv",
]
