"""Online service loop: continuous ingest → SLO detection → localization.

The paper's deployment shape as a library: build a feed
(:class:`SimFeed`, :class:`StoreReplayFeed`, :class:`CallableFeed`),
hand it to an :class:`OnlinePipeline` with an SLO detector, and collect
:class:`Incident` records from the returned list or from sinks
(:class:`JsonlSink`, :class:`CallbackSink`)::

    from repro.monitoring.slo import LatencySLO
    from repro.service import OnlinePipeline, SimFeed

    feed = SimFeed(app, duration=1500)
    pipeline = OnlinePipeline(feed, LatencySLO(0.100, retention=600))
    incidents = pipeline.run()

``repro serve`` and ``repro replay`` are the CLI front-ends.
"""

from repro.service.incident import (
    CallbackSink,
    Incident,
    JsonlSink,
    ServiceMetrics,
)
from repro.service.pipeline import OnlinePipeline
from repro.service.sources import (
    CallableFeed,
    SimFeed,
    StoreReplayFeed,
    TickBatch,
    load_performance_csv,
    save_performance_csv,
)

__all__ = [
    "CallableFeed",
    "CallbackSink",
    "Incident",
    "JsonlSink",
    "OnlinePipeline",
    "ServiceMetrics",
    "SimFeed",
    "StoreReplayFeed",
    "TickBatch",
    "load_performance_csv",
    "save_performance_csv",
]
