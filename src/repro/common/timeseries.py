"""A small 1 Hz time-series container.

All FChain algorithms consume regularly sampled (1-second interval) metric
series. :class:`TimeSeries` wraps a numpy array together with the timestamp
of its first sample and offers the slicing/window operations the paper's
pipeline needs (look-back windows, burst windows around a change point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


@dataclass
class TimeSeries:
    """A regularly sampled series ``values[i]`` at time ``start + i`` seconds.

    Attributes:
        values: Sample values, one per second.
        start: Timestamp (in simulated seconds) of ``values[0]``.
    """

    values: np.ndarray
    start: int = 0

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 1:
            raise ValueError("TimeSeries requires a 1-D value array")

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def end(self) -> int:
        """Timestamp one past the last sample (exclusive)."""
        return self.start + len(self.values)

    @property
    def times(self) -> np.ndarray:
        """Timestamps aligned with :attr:`values`."""
        return np.arange(self.start, self.end)

    def at(self, time: int) -> float:
        """Return the sample at an absolute timestamp.

        Raises:
            IndexError: If ``time`` falls outside the series.
        """
        idx = time - self.start
        if not 0 <= idx < len(self.values):
            raise IndexError(f"time {time} outside [{self.start}, {self.end})")
        return float(self.values[idx])

    def index_of(self, time: int) -> int:
        """Translate an absolute timestamp to an array index."""
        idx = time - self.start
        if not 0 <= idx < len(self.values):
            raise IndexError(f"time {time} outside [{self.start}, {self.end})")
        return idx

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def window(self, t_from: int, t_to: int) -> "TimeSeries":
        """Return the sub-series covering ``[t_from, t_to)``, clipped.

        The bounds are clipped to the available data, matching how FChain
        slaves take a look-back window ``[t_v - W, t_v]`` that may extend
        past the beginning of recorded history.
        """
        lo = max(t_from, self.start)
        hi = min(t_to, self.end)
        if hi <= lo:
            # Empty window: anchor inside the parent series so the result's
            # grid stays within [start, end].
            return TimeSeries(np.empty(0), start=min(lo, self.end))
        return TimeSeries(self.values[lo - self.start : hi - self.start], start=lo)

    def around(self, time: int, radius: int) -> "TimeSeries":
        """Return the ``±radius`` window centred on ``time`` (clipped).

        Used for the burst-extraction window ``X = x_{t-Q} .. x_{t+Q}``.
        """
        return self.window(time - radius, time + radius + 1)

    def stacked_around(self, times: Sequence[int], radius: int):
        """Stack the ``±radius`` windows of several timestamps by length.

        Interior timestamps all clip to the same ``2 * radius + 1``
        window, so their values stack into one matrix and a consumer can
        process the whole batch with a single vectorized call (the burst
        extractor runs one stacked FFT instead of one FFT per change
        point). Edge timestamps, whose windows clip shorter, land in
        their own same-length groups — grouping by exact length keeps
        every row identical to the ``around()`` window, with no padding
        that would change its spectrum.

        Returns:
            A list of ``(indices, matrix)`` pairs: ``indices`` are
            positions into ``times`` and ``matrix`` is the
            ``(len(indices), L)`` row-stack of their window values.
            Timestamps whose window clips empty are omitted.
        """
        by_length: dict = {}
        for i, time in enumerate(times):
            lo = max(time - radius, self.start)
            hi = min(time + radius + 1, self.end)
            if hi <= lo:
                continue
            by_length.setdefault(hi - lo, []).append((i, lo))
        groups = []
        for length, members in by_length.items():
            indices = np.array([i for i, _ in members])
            matrix = np.stack(
                [
                    self.values[lo - self.start : lo - self.start + length]
                    for _, lo in members
                ]
            )
            groups.append((indices, matrix))
        return groups

    # ------------------------------------------------------------------
    # Construction / combination
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence[float], start: int = 0) -> "TimeSeries":
        """Build a series from any sequence of floats."""
        return cls(np.asarray(list(values), dtype=float), start=start)

    def extended(self, more: Sequence[float]) -> "TimeSeries":
        """Return a new series with ``more`` appended after the last sample."""
        tail = np.asarray(list(more), dtype=float)
        return TimeSeries(np.concatenate([self.values, tail]), start=self.start)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return float(np.mean(self.values)) if len(self.values) else 0.0

    def std(self) -> float:
        return float(np.std(self.values)) if len(self.values) else 0.0

    def slope_at(self, time: int, span: int = 3) -> float:
        """Least-squares slope of the ``±span`` neighbourhood around ``time``.

        This is the "tangent" used by FChain's rollback step: the local rate
        of change of the (smoothed) metric at a change point.
        """
        piece = self.around(time, span)
        if len(piece) < 2:
            return 0.0
        x = np.arange(len(piece), dtype=float)
        slope = np.polyfit(x, piece.values, 1)[0]
        return float(slope)


def require_same_grid(a: TimeSeries, b: TimeSeries) -> None:
    """Raise ``ValueError`` unless two series cover identical timestamps."""
    if a.start != b.start or len(a) != len(b):
        raise ValueError(
            f"series grids differ: [{a.start},{a.end}) vs [{b.start},{b.end})"
        )
