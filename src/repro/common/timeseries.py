"""A small 1 Hz time-series container.

All FChain algorithms consume regularly sampled (1-second interval) metric
series. :class:`TimeSeries` wraps a numpy array together with the timestamp
of its first sample and offers the slicing/window operations the paper's
pipeline needs (look-back windows, burst windows around a change point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


def fill_gaps(
    values: np.ndarray, *, max_gap: int, method: str = "interpolate"
) -> Tuple[np.ndarray, int, int]:
    """Fill NaN runs of length ``<= max_gap`` in a 1-D array.

    Degraded telemetry leaves holes (missing samples, rejected NaN
    readings) as NaN entries; this bounded repair makes short holes
    analysable without fabricating data across long outages.

    * ``"forward"`` repeats the last observed value;
    * ``"interpolate"`` draws the line between the observed neighbours.

    Both are clamped by construction to the closed range of the observed
    neighbours, so no filled value ever falls outside the observed
    min/max of the series (property-tested). Leading runs (no previous
    observation) fall back to the next observed value. Runs longer than
    ``max_gap``, and arrays with no finite sample at all, are left
    untouched.

    Returns:
        ``(filled copy, samples filled, samples left missing)``. When
        nothing needs filling the input array itself is returned
        (no copy), with ``(values, 0, 0)``.
    """
    if method not in ("none", "forward", "interpolate"):
        raise ValueError(f"unknown fill method {method!r}")
    finite = np.isfinite(values)
    n_missing = int(len(values) - finite.sum())
    if n_missing == 0:
        return values, 0, 0
    if method == "none" or not finite.any():
        return values, 0, n_missing
    out = values.copy()
    filled = 0
    missing = 0
    idx = np.flatnonzero(~finite)
    # Split the missing indices into maximal consecutive runs.
    run_breaks = np.flatnonzero(np.diff(idx) > 1) + 1
    for run in np.split(idx, run_breaks):
        lo, hi = int(run[0]), int(run[-1])
        if len(run) > max_gap:
            missing += len(run)
            continue
        prev = values[lo - 1] if lo > 0 else None
        nxt = values[hi + 1] if hi + 1 < len(values) else None
        if prev is not None and not np.isfinite(prev):
            prev = None
        if nxt is not None and not np.isfinite(nxt):
            nxt = None
        if prev is None and nxt is None:
            missing += len(run)
            continue
        if prev is None:
            out[run] = nxt
        elif nxt is None or method == "forward":
            out[run] = prev
        else:
            out[run] = np.linspace(prev, nxt, len(run) + 2)[1:-1]
        filled += len(run)
    return out, filled, missing


@dataclass
class TimeSeries:
    """A regularly sampled series ``values[i]`` at time ``start + i`` seconds.

    Attributes:
        values: Sample values, one per second.
        start: Timestamp (in simulated seconds) of ``values[0]``.
    """

    values: np.ndarray
    start: int = 0

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 1:
            raise ValueError("TimeSeries requires a 1-D value array")

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def end(self) -> int:
        """Timestamp one past the last sample (exclusive)."""
        return self.start + len(self.values)

    @property
    def times(self) -> np.ndarray:
        """Timestamps aligned with :attr:`values`."""
        return np.arange(self.start, self.end)

    def at(self, time: int) -> float:
        """Return the sample at an absolute timestamp.

        Raises:
            IndexError: If ``time`` falls outside the series.
        """
        idx = time - self.start
        if not 0 <= idx < len(self.values):
            raise IndexError(f"time {time} outside [{self.start}, {self.end})")
        return float(self.values[idx])

    def index_of(self, time: int) -> int:
        """Translate an absolute timestamp to an array index."""
        idx = time - self.start
        if not 0 <= idx < len(self.values):
            raise IndexError(f"time {time} outside [{self.start}, {self.end})")
        return idx

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def window(self, t_from: int, t_to: int) -> "TimeSeries":
        """Return the sub-series covering ``[t_from, t_to)``, clipped.

        The bounds are clipped to the available data, matching how FChain
        slaves take a look-back window ``[t_v - W, t_v]`` that may extend
        past the beginning of recorded history.
        """
        lo = max(t_from, self.start)
        hi = min(t_to, self.end)
        if hi <= lo:
            # Empty window: anchor inside the parent series so the result's
            # grid stays within [start, end].
            return TimeSeries(np.empty(0), start=min(lo, self.end))
        return TimeSeries(self.values[lo - self.start : hi - self.start], start=lo)

    def around(self, time: int, radius: int) -> "TimeSeries":
        """Return the ``±radius`` window centred on ``time`` (clipped).

        Used for the burst-extraction window ``X = x_{t-Q} .. x_{t+Q}``.
        """
        return self.window(time - radius, time + radius + 1)

    def stacked_around(self, times: Sequence[int], radius: int):
        """Stack the ``±radius`` windows of several timestamps by length.

        Interior timestamps all clip to the same ``2 * radius + 1``
        window, so their values stack into one matrix and a consumer can
        process the whole batch with a single vectorized call (the burst
        extractor runs one stacked FFT instead of one FFT per change
        point). Edge timestamps, whose windows clip shorter, land in
        their own same-length groups — grouping by exact length keeps
        every row identical to the ``around()`` window, with no padding
        that would change its spectrum.

        Returns:
            A list of ``(indices, matrix)`` pairs: ``indices`` are
            positions into ``times`` and ``matrix`` is the
            ``(len(indices), L)`` row-stack of their window values.
            Timestamps whose window clips empty are omitted.
        """
        by_length: dict = {}
        for i, time in enumerate(times):
            lo = max(time - radius, self.start)
            hi = min(time + radius + 1, self.end)
            if hi <= lo:
                continue
            by_length.setdefault(hi - lo, []).append((i, lo))
        groups = []
        for length, members in by_length.items():
            indices = np.array([i for i, _ in members])
            matrix = np.stack(
                [
                    self.values[lo - self.start : lo - self.start + length]
                    for _, lo in members
                ]
            )
            groups.append((indices, matrix))
        return groups

    # ------------------------------------------------------------------
    # Data quality (gap awareness)
    # ------------------------------------------------------------------
    def coverage(
        self, t_from: Optional[int] = None, t_to: Optional[int] = None
    ) -> float:
        """Fraction of ``[t_from, t_to)`` covered by finite samples.

        Bounds default to the series' own extent. Ticks outside the
        recorded series (a look-back window reaching past a late-joining
        VM's first sample, or past the last sample of one that left)
        count as uncovered — absence of data is a gap, not a shorter
        denominator. An empty span has coverage 0.
        """
        lo = self.start if t_from is None else t_from
        hi = self.end if t_to is None else t_to
        expected = hi - lo
        if expected <= 0:
            return 0.0
        piece = self.window(lo, hi)
        observed = int(np.isfinite(piece.values).sum())
        return observed / expected

    def gaps(self) -> List[Tuple[int, int]]:
        """Maximal NaN runs as ``(start timestamp, length)`` pairs."""
        idx = np.flatnonzero(~np.isfinite(self.values))
        if len(idx) == 0:
            return []
        run_breaks = np.flatnonzero(np.diff(idx) > 1) + 1
        return [
            (self.start + int(run[0]), len(run))
            for run in np.split(idx, run_breaks)
        ]

    def longest_gap(self) -> int:
        """Length of the longest NaN run (0 when fully observed)."""
        return max((length for _, length in self.gaps()), default=0)

    def filled(
        self, *, max_gap: int, method: str = "interpolate"
    ) -> "TimeSeries":
        """Copy with NaN runs of length ``<= max_gap`` repaired.

        See :func:`fill_gaps` for the fill semantics; a series with no
        gaps is returned as-is (same backing array, zero copies), which
        keeps the clean-data path bit-identical.
        """
        out, filled, _ = fill_gaps(self.values, max_gap=max_gap, method=method)
        if filled == 0 and out is self.values:
            return self
        return TimeSeries(out, start=self.start)

    # ------------------------------------------------------------------
    # Construction / combination
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence[float], start: int = 0) -> "TimeSeries":
        """Build a series from any sequence of floats."""
        return cls(np.asarray(list(values), dtype=float), start=start)

    def extended(self, more: Sequence[float]) -> "TimeSeries":
        """Return a new series with ``more`` appended after the last sample."""
        tail = np.asarray(list(more), dtype=float)
        return TimeSeries(np.concatenate([self.values, tail]), start=self.start)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return float(np.mean(self.values)) if len(self.values) else 0.0

    def std(self) -> float:
        return float(np.std(self.values)) if len(self.values) else 0.0

    def slope_at(self, time: int, span: int = 3) -> float:
        """Least-squares slope of the ``±span`` neighbourhood around ``time``.

        This is the "tangent" used by FChain's rollback step: the local rate
        of change of the (smoothed) metric at a change point.
        """
        piece = self.around(time, span)
        if len(piece) < 2:
            return 0.0
        x = np.arange(len(piece), dtype=float)
        slope = np.polyfit(x, piece.values, 1)[0]
        return float(slope)


def require_same_grid(a: TimeSeries, b: TimeSeries) -> None:
    """Raise ``ValueError`` unless two series cover identical timestamps."""
    if a.start != b.start or len(a) != len(b):
        raise ValueError(
            f"series grids differ: [{a.start},{a.end}) vs [{b.start},{b.end})"
        )
