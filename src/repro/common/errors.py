"""Exception hierarchy for the FChain reproduction.

All library-specific exceptions derive from :class:`ReproError` so callers
can catch one base type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation substrate was driven into an invalid state."""


class DiagnosisError(ReproError):
    """Fault localization was asked to operate on unusable input."""


class DataQualityError(ReproError):
    """Telemetry ingestion rejected a sample under the active policy."""
