"""Append-only JSON-lines writing shared by every durable sink.

One :class:`JsonlWriter` owns one open file handle for its whole life —
the handle is opened once in the constructor, every :meth:`write`
appends a single ``json.dumps`` line through it, and :meth:`close` is
the only place it is released. That open-once discipline is what makes
the flush/fsync semantics meaningful: there is exactly one OS-level
file position to reason about, and a crash loses at most the line being
written, never previously flushed ones.

Durability levels:

* ``fsync=False`` (default) — every line is flushed to the OS page
  cache as it is written. A crashed *process* loses nothing that
  completed; a crashed *machine* may lose the tail.
* ``fsync=True`` — every line is additionally ``os.fsync``'d, so a
  completed :meth:`write` survives power loss. This is what the durable
  incident store (:mod:`repro.edge.store`) and the webhook dead-letter
  file use: an incident acknowledged to a client must not evaporate.

A truncated final line (the crash-in-mid-write case) is expected and
tolerated by every reader: :func:`read_jsonl` skips a trailing partial
record instead of failing, which is the crash-recovery contract the
JSONL segment backend's tests pin down.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from typing import Dict, Iterator, List, Union

PathLike = Union[str, pathlib.Path]


class JsonlWriter:
    """An open-once, append-only JSON-lines file handle.

    Args:
        path: File to append to (created, with parents, if missing).
        fsync: When True, ``os.fsync`` after every line — each completed
            :meth:`write` is durable against power loss, at the cost of
            one disk barrier per record.
    """

    def __init__(self, path: PathLike, *, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._handle = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()
        self.lines_written = 0

    def write(self, record: Dict) -> int:
        """Append one record as a JSON line; returns bytes written."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self.lines_written += 1
        return len(line.encode("utf-8"))

    def flush(self) -> None:
        """Flush (and fsync, when configured) without writing."""
        with self._lock:
            if self._handle.closed:
                return
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    @property
    def bytes_written(self) -> int:
        """Current size of the file in bytes (includes prior sessions)."""
        with self._lock:
            if self._handle.closed:
                return self.path.stat().st_size if self.path.exists() else 0
            return self._handle.tell()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
                self._handle.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: PathLike) -> List[Dict]:
    """Read every complete record of a JSON-lines file.

    A torn final line — the signature of a crash mid-append — is
    silently dropped: everything before it was flushed line-atomically
    by :class:`JsonlWriter`, so the readable prefix is exactly the
    completed writes.
    """
    return list(iter_jsonl(path))


def iter_jsonl(path: PathLike) -> Iterator[Dict]:
    """Iterate complete records, tolerating a truncated tail line."""
    path = pathlib.Path(path)
    if not path.exists():
        return
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            # A malformed *final* line is the expected crash scar of an
            # append cut short; malformed data followed by more records
            # is real corruption and must not be silently skipped.
            if any(rest.strip() for rest in lines[index + 1 :]):
                raise ValueError(
                    f"{path}: corrupt JSONL record before end of file "
                    "(only a truncated final line is recoverable)"
                ) from None
            return


__all__ = ["JsonlWriter", "iter_jsonl", "read_jsonl"]
