"""Shared primitives used across the FChain reproduction.

This package holds the small, dependency-free building blocks: metric
identifiers, time-series containers, seeded random-number helpers, and the
exception hierarchy. Everything here is deliberately independent of the
simulation substrate and of the FChain algorithms so that the higher layers
can depend on it without cycles.
"""

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
)
from repro.common.rng import spawn_rng, stable_seed
from repro.common.timeseries import TimeSeries
from repro.common.types import (
    METRIC_NAMES,
    ComponentId,
    Metric,
    MetricSample,
)

__all__ = [
    "ComponentId",
    "ConfigurationError",
    "METRIC_NAMES",
    "Metric",
    "MetricSample",
    "ReproError",
    "SimulationError",
    "TimeSeries",
    "spawn_rng",
    "stable_seed",
]
