"""Deterministic random-number helpers.

Every stochastic piece of the reproduction (workload traces, queueing noise,
fault injection times, bootstrap resampling) draws from a
``numpy.random.Generator`` derived from an explicit seed, so experiment runs
are exactly reproducible and independent sub-streams never interfere.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary labelled parts.

    Unlike ``hash()``, the result does not vary across interpreter runs, so
    ``stable_seed("rubis", "memleak", 7)`` always names the same random
    stream.

    Args:
        *parts: Any values with stable ``str`` representations.

    Returns:
        A non-negative integer suitable for seeding numpy generators.
    """
    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def spawn_rng(*parts: object) -> np.random.Generator:
    """Create an independent generator for the stream named by ``parts``."""
    return np.random.default_rng(stable_seed(*parts))
