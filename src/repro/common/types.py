"""Core identifier and value types shared across the library.

FChain treats each guest VM as one *component* and monitors six system-level
metrics per component at a 1-second sampling interval (paper Sec. III-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Metric(enum.Enum):
    """The six black-box system-level metrics FChain monitors per VM.

    These mirror the libxenstat/libvirt attributes listed in the paper:
    cpu usage, memory usage, network in, network out, disk read, disk write.
    """

    CPU_USAGE = "cpu_usage"
    MEMORY_USAGE = "memory_usage"
    NETWORK_IN = "network_in"
    NETWORK_OUT = "network_out"
    DISK_READ = "disk_read"
    DISK_WRITE = "disk_write"

    def __str__(self) -> str:
        return self.value


#: All monitored metrics in a stable order (used for vectorized storage).
METRIC_NAMES = tuple(Metric)


# A component is identified by a plain string (e.g. "web", "app1", "PE3").
# Using a NewType-like alias keeps signatures self-describing without
# imposing a wrapper object on hot paths.
ComponentId = str


@dataclass(frozen=True)
class MetricSample:
    """One sampled metric value.

    Attributes:
        component: The component (guest VM) the sample belongs to.
        metric: Which of the six system metrics was sampled.
        time: Sample timestamp in simulated seconds.
        value: The sampled value (units depend on the metric: percent for
            CPU, MB for memory, KB/s for network and disk rates).
    """

    component: ComponentId
    metric: Metric
    time: int
    value: float
