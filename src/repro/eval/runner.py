"""Campaign runner: execute fault-injection runs, score every scheme.

Each run simulates one application with one materialized fault campaign,
waits for the SLO violation, and produces a :class:`RunRecord`. All
schemes then analyse the *same* record, so their precision/recall numbers
are directly comparable — mirroring how the paper evaluates every scheme
over the same application runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence

import networkx as nx

from repro.apps.base import Application
from repro.apps.hadoop import HadoopApplication
from repro.apps.rubis import RubisApplication
from repro.apps.systems import SystemSApplication
from repro.baselines.base import LocalizationContext, Localizer
from repro.common.types import ComponentId
from repro.core.config import FChainConfig
from repro.core.dependency import discover_dependencies
from repro.core.fchain import FChain
from repro.eval.metrics import PrecisionRecall, RocPoint
from repro.eval.scenarios import Scenario
from repro.monitoring.store import MetricStore

#: Post-violation margin simulated so the analysis grace window and the
#: online validation have data/state to work with.
POST_VIOLATION_MARGIN = 40

_PROFILES = {
    "rubis": lambda: RubisApplication(seed=999, duration=240, record_packets=True),
    "systems": lambda: SystemSApplication(
        seed=999, duration=240, record_packets=True
    ),
    "hadoop": lambda: HadoopApplication(seed=999, record_packets=True),
}

_GRAPH_CACHE: Dict[str, nx.DiGraph] = {}


def dependency_graph_for(app_name: str) -> nx.DiGraph:
    """Offline black-box dependency discovery for one application type.

    The paper runs discovery offline on accumulated traces and stores the
    result (Sec. II-C footnote 3); here the profiling run is executed once
    per application type and cached for the whole process.
    """
    if app_name not in _GRAPH_CACHE:
        app = _PROFILES[app_name]()
        app.run(240)
        _GRAPH_CACHE[app_name] = discover_dependencies(app.packet_trace).graph
    return _GRAPH_CACHE[app_name]


@dataclass
class RunRecord:
    """One completed fault-injection run.

    Attributes:
        scenario: The scenario that produced the run.
        seed: Run seed.
        app: The application (still live; used by online validation).
        violation_time: First SLO violation at/after injection.
        injection_time: When the fault campaign fired.
        ground_truth: Components a perfect localizer should pinpoint.
    """

    scenario: Scenario
    seed: object
    app: Application
    violation_time: int
    injection_time: int
    ground_truth: FrozenSet[ComponentId]

    @property
    def store(self) -> MetricStore:
        return self.app.store


def execute_run(scenario: Scenario, seed: object) -> Optional[RunRecord]:
    """Simulate one run of a scenario; None when no violation occurred.

    The application runs until the first SLO violation after the fault
    injection plus a small margin, or gives up after ``scenario.max_wait``
    post-injection seconds (load-dependent faults occasionally need a
    workload peak that never arrives in the window).
    """
    app = scenario.make_app(seed)
    faults, t_inject, truth = scenario.campaign.materialize(seed)
    for fault in faults:
        app.inject(fault)
    app.run(t_inject)
    violation: Optional[int] = None
    deadline = t_inject + scenario.max_wait
    while app.time < deadline:
        app.run(min(25, deadline - app.time))
        violation = app.slo.first_violation_after(t_inject)
        if violation is not None:
            break
    if violation is None:
        return None
    margin = violation + POST_VIOLATION_MARGIN - app.time
    if margin > 0:
        app.run(margin)
    return RunRecord(
        scenario=scenario,
        seed=seed,
        app=app,
        violation_time=violation,
        injection_time=t_inject,
        ground_truth=truth,
    )


def generate_runs(
    scenario: Scenario, n_runs: int, *, base_seed: object = "eval"
) -> List[RunRecord]:
    """Generate ``n_runs`` completed runs (skipping violation-free seeds)."""
    records: List[RunRecord] = []
    seed_index = 0
    while len(records) < n_runs and seed_index < 4 * n_runs + 10:
        record = execute_run(scenario, (base_seed, scenario.name, seed_index))
        seed_index += 1
        if record is not None:
            records.append(record)
    return records


def context_for(scenario: Scenario, record: RunRecord) -> LocalizationContext:
    """Build the scheme-facing context for one run."""
    config = FChainConfig()
    if scenario.look_back_window:
        config = config.with_window(scenario.look_back_window)
    return LocalizationContext(
        config=config,
        topology=record.app.topology,
        dependency_graph=dependency_graph_for(scenario.app_name),
        slo_component=scenario.slo_component,
        seed=record.seed,
    )


class FChainLocalizer(Localizer):
    """FChain wrapped in the common scheme interface.

    Args:
        jobs: Slave fan-out width forwarded to the FChain engine
            (``None``/0/1 serial).
    """

    name = "FChain"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs

    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        fchain = FChain(
            context.config,
            dependency_graph=context.dependency_graph,
            seed=context.seed,
            jobs=self.jobs,
        )
        return fchain.localize(store, violation_time=violation_time).faulty


class FChainValidatedLocalizer(Localizer):
    """FChain with online pinpointing validation (``FChain+VAL``).

    Needs the live application to fork, so it is fed through
    :func:`evaluate_schemes`, which passes the whole run record.
    """

    name = "FChain+VAL"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs
        self._record: Optional[RunRecord] = None

    def bind(self, record: RunRecord) -> None:
        self._record = record

    def _localize(
        self,
        store: MetricStore,
        *,
        violation_time: int,
        context: LocalizationContext,
    ) -> FrozenSet[ComponentId]:
        if self._record is None:
            raise RuntimeError("FChain+VAL needs a bound run record")
        fchain = FChain(
            context.config,
            dependency_graph=context.dependency_graph,
            seed=context.seed,
            jobs=self.jobs,
        )
        diagnosis = fchain.localize(
            store, violation_time=violation_time, validate_with=self._record.app
        )
        return diagnosis.faulty


def evaluate_schemes(
    scenario: Scenario,
    schemes: Sequence[Localizer],
    n_runs: int = 10,
    *,
    base_seed: object = "eval",
    records: Optional[List[RunRecord]] = None,
) -> Dict[str, PrecisionRecall]:
    """Run a scenario and score every scheme on the same runs.

    Returns:
        Precision/recall accumulators keyed by scheme name.
    """
    records = records if records is not None else generate_runs(
        scenario, n_runs, base_seed=base_seed
    )
    results = {scheme.name: PrecisionRecall() for scheme in schemes}
    for record in records:
        context = context_for(scenario, record)
        for scheme in schemes:
            if isinstance(scheme, FChainValidatedLocalizer):
                scheme.bind(record)
            pinpointed = scheme.localize(
                record.store,
                violation_time=record.violation_time,
                context=context,
            )
            results[scheme.name].update(pinpointed, record.ground_truth)
    return results


def sweep_thresholds(
    scenario: Scenario,
    scheme_factory: Callable[[float], Localizer],
    thresholds: Iterable[float],
    n_runs: int = 10,
    *,
    base_seed: object = "eval",
    records: Optional[List[RunRecord]] = None,
) -> List[RocPoint]:
    """ROC sweep for a threshold-parameterized scheme over shared runs."""
    records = records if records is not None else generate_runs(
        scenario, n_runs, base_seed=base_seed
    )
    points: List[RocPoint] = []
    for threshold in thresholds:
        scheme = scheme_factory(threshold)
        accumulator = PrecisionRecall()
        for record in records:
            context = context_for(scenario, record)
            pinpointed = scheme.localize(
                record.store,
                violation_time=record.violation_time,
                context=context,
            )
            accumulator.update(pinpointed, record.ground_truth)
        points.append(
            RocPoint(threshold, accumulator.precision, accumulator.recall)
        )
    return points
