"""Dependency-free SVG figures for the regenerated evaluation.

The offline environment has no plotting stack, so this module renders the
paper-style figures — precision/recall scatter plots (the ROC figures
6-11), threshold sweeps (figure 12) and time-series panels (figures 3-4)
— as standalone SVG files with nothing but the standard library.
"""

from __future__ import annotations

import html
from typing import List, Mapping, Optional, Sequence, Tuple

#: Distinguishable marker colors, cycled per series.
PALETTE = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
    "#7f7f7f",
)

#: Marker glyph cycle (drawn as small paths/shapes).
MARKERS = ("circle", "square", "diamond", "triangle")


class SvgCanvas:
    """Minimal retained-mode SVG builder."""

    def __init__(self, width: int = 560, height: int = 420) -> None:
        self.width = width
        self.height = height
        self._elements: List[str] = []

    def line(self, x1, y1, x2, y2, color="#333", width=1.0, dash=None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points, color="#333", width=1.5) -> None:
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    def marker(self, x, y, kind="circle", color="#333", size=4.5) -> None:
        if kind == "circle":
            self._elements.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{size:.1f}" '
                f'fill="{color}"/>'
            )
        elif kind == "square":
            self._elements.append(
                f'<rect x="{x - size:.1f}" y="{y - size:.1f}" '
                f'width="{2 * size:.1f}" height="{2 * size:.1f}" '
                f'fill="{color}"/>'
            )
        elif kind == "diamond":
            pts = f"{x:.1f},{y - size:.1f} {x + size:.1f},{y:.1f} " \
                  f"{x:.1f},{y + size:.1f} {x - size:.1f},{y:.1f}"
            self._elements.append(f'<polygon points="{pts}" fill="{color}"/>')
        else:  # triangle
            pts = f"{x:.1f},{y - size:.1f} {x + size:.1f},{y + size:.1f} " \
                  f"{x - size:.1f},{y + size:.1f}"
            self._elements.append(f'<polygon points="{pts}" fill="{color}"/>')

    def text(self, x, y, content, size=11, color="#222", anchor="start",
             rotate: Optional[float] = None) -> None:
        transform = (
            f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        )
        self._elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'fill="{color}" text-anchor="{anchor}" '
            f'font-family="sans-serif"{transform}>'
            f"{html.escape(str(content))}</text>"
        )

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


class _Axes:
    """Linear axes mapping data space to a plot rectangle."""

    def __init__(self, canvas, x_range, y_range, *, title, xlabel, ylabel):
        self.canvas = canvas
        self.x0, self.x1 = x_range
        self.y0, self.y1 = y_range
        self.left, self.top = 62, 34
        self.right = canvas.width - 16
        self.bottom = canvas.height - 44
        canvas.text(canvas.width / 2, 18, title, size=13, anchor="middle")
        canvas.text(
            (self.left + self.right) / 2, canvas.height - 8, xlabel,
            anchor="middle",
        )
        canvas.text(
            16, (self.top + self.bottom) / 2, ylabel, anchor="middle",
            rotate=-90,
        )
        canvas.line(self.left, self.bottom, self.right, self.bottom)
        canvas.line(self.left, self.top, self.left, self.bottom)
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            x = self.px(self.x0 + fraction * (self.x1 - self.x0))
            y = self.py(self.y0 + fraction * (self.y1 - self.y0))
            canvas.line(x, self.bottom, x, self.bottom + 4)
            canvas.line(self.left - 4, y, self.left, y)
            canvas.text(
                x, self.bottom + 16,
                f"{self.x0 + fraction * (self.x1 - self.x0):g}",
                size=9, anchor="middle",
            )
            canvas.text(
                self.left - 7, y + 3,
                f"{self.y0 + fraction * (self.y1 - self.y0):g}",
                size=9, anchor="end",
            )
            canvas.line(
                self.left, y, self.right, y, color="#eee", width=0.7
            )

    def px(self, x: float) -> float:
        span = (self.x1 - self.x0) or 1.0
        return self.left + (x - self.x0) / span * (self.right - self.left)

    def py(self, y: float) -> float:
        span = (self.y1 - self.y0) or 1.0
        return self.bottom - (y - self.y0) / span * (self.bottom - self.top)


def roc_figure(
    per_scheme: Mapping[str, Tuple[float, float]],
    *,
    title: str,
) -> str:
    """A precision/recall scatter (one labelled point per scheme).

    Args:
        per_scheme: ``{scheme: (recall, precision)}``.
        title: Figure caption.

    Returns:
        The SVG document text.
    """
    canvas = SvgCanvas()
    axes = _Axes(
        canvas, (0.0, 1.0), (0.0, 1.05),
        title=title, xlabel="recall", ylabel="precision",
    )
    for index, (scheme, (recall, precision)) in enumerate(per_scheme.items()):
        color = PALETTE[index % len(PALETTE)]
        kind = MARKERS[index % len(MARKERS)]
        x, y = axes.px(recall), axes.py(precision)
        canvas.marker(x, y, kind=kind, color=color)
        canvas.text(x + 7, y - 6, scheme, size=10, color=color)
    return canvas.render()


def line_figure(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    title: str,
    xlabel: str = "t (s)",
    ylabel: str = "value",
    markers: Optional[Mapping[float, str]] = None,
) -> str:
    """A multi-series line chart with optional vertical event markers.

    Args:
        series: ``{label: [(x, y), ...]}``.
        markers: ``{x: label}`` vertical annotation lines.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("line_figure needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    pad = 0.05 * (max(ys) - min(ys) or 1.0)
    canvas = SvgCanvas()
    axes = _Axes(
        canvas,
        (min(xs), max(xs) or 1.0),
        (min(ys) - pad, max(ys) + pad),
        title=title, xlabel=xlabel, ylabel=ylabel,
    )
    for index, (label, pts) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        canvas.polyline(
            [(axes.px(x), axes.py(y)) for x, y in pts], color=color
        )
        last_x, last_y = pts[-1]
        canvas.text(
            min(axes.px(last_x) + 4, canvas.width - 60),
            axes.py(last_y), label, size=10, color=color,
        )
    for x, label in (markers or {}).items():
        canvas.line(
            axes.px(x), axes.py(axes.y0), axes.px(x), axes.py(axes.y1),
            color="#d62728", width=1.0, dash="4,3",
        )
        canvas.text(axes.px(x) + 3, axes.py(axes.y1) + 12, label, size=9,
                    color="#d62728")
    return canvas.render()


def save_svg(text: str, path) -> None:
    """Write an SVG document to disk."""
    import pathlib

    pathlib.Path(path).write_text(text)
