"""Fault scenarios of the paper's evaluation (Sec. III-A).

Each :class:`Scenario` bundles an application factory, a fault campaign
(with random injection times and, for System S, random target PEs), and
the per-application context pieces the schemes need. System S target PEs
are drawn from the loaded middle/sink stages (PE2, PE3, PE6, PE7), where
the injected degradations reliably breach the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


from repro.apps.base import Application
from repro.apps.hadoop import MAPS, HadoopApplication
from repro.apps.rubis import DB, WEB, RubisApplication
from repro.apps.systems import SystemSApplication
from repro.faults.injector import FaultCampaign
from repro.faults.library import (
    BottleneckFault,
    CpuHogFault,
    DiskHogFault,
    InfiniteLoopFault,
    LBBugFault,
    MemLeakFault,
    NetHogFault,
    OffloadBugFault,
    WorkloadSurge,
)

#: System S PEs eligible as random fault targets.
SYSTEMS_TARGETS = ("PE2", "PE3", "PE6", "PE7")


@dataclass(frozen=True)
class Scenario:
    """One fault scenario: an application plus a repeatable campaign.

    Attributes:
        name: Scenario id, e.g. ``"rubis/cpuhog"``.
        app_name: Which benchmark application (``rubis``/``systems``/
            ``hadoop``).
        make_app: Application factory taking the run seed.
        campaign: The fault campaign injected once per run.
        slo_component: Component at which the SLO is observed.
        look_back_window: ``W`` override (the Hadoop DiskHog uses 500 s).
        max_wait: Longest post-injection wait for an SLO violation before
            the run is discarded (some load-dependent faults need a
            workload peak to bite).
    """

    name: str
    app_name: str
    make_app: Callable[[object], Application]
    campaign: FaultCampaign
    slo_component: str
    look_back_window: Optional[int] = None
    max_wait: int = 600

    def __str__(self) -> str:
        return self.name


def _rubis(seed: object) -> RubisApplication:
    return RubisApplication(seed=seed, duration=2400)


def _systems(seed: object) -> SystemSApplication:
    return SystemSApplication(seed=seed, duration=2400)


def _hadoop(seed: object) -> HadoopApplication:
    return HadoopApplication(seed=seed)


#: Injection window: late enough for the online models to have trained,
#: early enough that a violation fits into the run.
RUBIS_WINDOW = (1100, 1500)
SYSTEMS_WINDOW = (1100, 1500)
HADOOP_WINDOW = (800, 1100)


def rubis_scenarios() -> List[Scenario]:
    """RUBiS faults: three single-component, two concurrent (Sec. III-A)."""
    return [
        Scenario(
            "rubis/memleak",
            "rubis",
            _rubis,
            FaultCampaign(
                "rubis/memleak",
                lambda t, rng: [MemLeakFault(t, DB)],
                RUBIS_WINDOW,
            ),
            slo_component=WEB,
        ),
        Scenario(
            "rubis/cpuhog",
            "rubis",
            _rubis,
            FaultCampaign(
                "rubis/cpuhog",
                lambda t, rng: [CpuHogFault(t, DB)],
                RUBIS_WINDOW,
            ),
            slo_component=WEB,
        ),
        Scenario(
            "rubis/nethog",
            "rubis",
            _rubis,
            FaultCampaign(
                "rubis/nethog",
                lambda t, rng: [NetHogFault(t, WEB)],
                RUBIS_WINDOW,
            ),
            slo_component=WEB,
        ),
        Scenario(
            "rubis/offload_bug",
            "rubis",
            _rubis,
            FaultCampaign(
                "rubis/offload_bug",
                lambda t, rng: [OffloadBugFault(t)],
                RUBIS_WINDOW,
            ),
            slo_component=WEB,
        ),
        Scenario(
            "rubis/lb_bug",
            "rubis",
            _rubis,
            FaultCampaign(
                "rubis/lb_bug",
                lambda t, rng: [LBBugFault(t)],
                RUBIS_WINDOW,
            ),
            slo_component=WEB,
        ),
    ]


def systems_scenarios() -> List[Scenario]:
    """System S faults: random target PEs, single and concurrent."""

    def one(fault_cls):
        def factory(t, rng):
            return [fault_cls(t, str(rng.choice(SYSTEMS_TARGETS)))]

        return factory

    def two(fault_cls):
        def factory(t, rng):
            picks = rng.choice(SYSTEMS_TARGETS, size=2, replace=False)
            return [fault_cls(t, str(target)) for target in picks]

        return factory

    return [
        Scenario(
            "systems/memleak",
            "systems",
            _systems,
            FaultCampaign("systems/memleak", one(MemLeakFault), SYSTEMS_WINDOW),
            slo_component="PE7",
        ),
        Scenario(
            "systems/cpuhog",
            "systems",
            _systems,
            FaultCampaign("systems/cpuhog", one(CpuHogFault), SYSTEMS_WINDOW),
            slo_component="PE7",
        ),
        Scenario(
            "systems/bottleneck",
            "systems",
            _systems,
            FaultCampaign(
                "systems/bottleneck", one(BottleneckFault), SYSTEMS_WINDOW
            ),
            slo_component="PE7",
        ),
        Scenario(
            "systems/conc_memleak",
            "systems",
            _systems,
            FaultCampaign(
                "systems/conc_memleak", two(MemLeakFault), SYSTEMS_WINDOW
            ),
            slo_component="PE7",
        ),
        Scenario(
            "systems/conc_cpuhog",
            "systems",
            _systems,
            FaultCampaign(
                "systems/conc_cpuhog", two(CpuHogFault), SYSTEMS_WINDOW
            ),
            slo_component="PE7",
        ),
    ]


def hadoop_scenarios() -> List[Scenario]:
    """Hadoop faults: concurrent faults in all three map nodes."""
    return [
        Scenario(
            "hadoop/conc_memleak",
            "hadoop",
            _hadoop,
            FaultCampaign(
                "hadoop/conc_memleak",
                lambda t, rng: [MemLeakFault(t, m) for m in MAPS],
                HADOOP_WINDOW,
            ),
            slo_component="red1",
        ),
        Scenario(
            "hadoop/conc_cpuhog",
            "hadoop",
            _hadoop,
            FaultCampaign(
                "hadoop/conc_cpuhog",
                lambda t, rng: [InfiniteLoopFault(t, m) for m in MAPS],
                HADOOP_WINDOW,
            ),
            slo_component="red1",
        ),
        Scenario(
            "hadoop/conc_diskhog",
            "hadoop",
            _hadoop,
            FaultCampaign(
                "hadoop/conc_diskhog",
                lambda t, rng: [DiskHogFault(t, list(MAPS))],
                HADOOP_WINDOW,
            ),
            slo_component="red1",
            look_back_window=500,
        ),
    ]


def external_scenarios() -> List[Scenario]:
    """External-factor scenario: a workload surge, empty ground truth."""
    return [
        Scenario(
            "rubis/workload_surge",
            "rubis",
            _rubis,
            FaultCampaign(
                "rubis/workload_surge",
                lambda t, rng: [WorkloadSurge(t)],
                RUBIS_WINDOW,
            ),
            slo_component=WEB,
        )
    ]


def all_scenarios() -> List[Scenario]:
    """Every scenario of the paper's evaluation plus the surge check."""
    return (
        rubis_scenarios()
        + systems_scenarios()
        + hadoop_scenarios()
        + external_scenarios()
    )


def scenario_by_name(name: str) -> Scenario:
    """Look a scenario up by its full name (e.g. ``"rubis/cpuhog"``)."""
    for scenario in all_scenarios():
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}")
