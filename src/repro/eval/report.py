"""Plain-text reporting of the paper's tables and figures.

The benchmarks print, for every figure, the precision/recall of every
scheme per fault (the paper's ROC points) and, for the tables, the same
rows the paper reports. Absolute numbers differ from the paper — the
substrate is a simulator, not the authors' Xen testbed — but the shape
(which scheme wins, by how much, where it breaks) is the reproduction
target; EXPERIMENTS.md records both side by side.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.eval.metrics import PrecisionRecall, RocPoint


def format_scheme_table(
    title: str,
    per_fault: Mapping[str, Mapping[str, PrecisionRecall]],
) -> str:
    """Render one figure's data: rows = schemes, columns = faults.

    Args:
        title: Figure caption.
        per_fault: ``{fault: {scheme: PrecisionRecall}}``.
    """
    faults = list(per_fault)
    schemes: List[str] = []
    for results in per_fault.values():
        for scheme in results:
            if scheme not in schemes:
                schemes.append(scheme)
    lines = [title, "=" * len(title)]
    header = f"{'scheme':<16}" + "".join(f"{fault:>24}" for fault in faults)
    lines.append(header)
    for scheme in schemes:
        cells = []
        for fault in faults:
            pr = per_fault[fault].get(scheme)
            cells.append(
                f"P={pr.precision:.2f} R={pr.recall:.2f}".rjust(24)
                if pr
                else "-".rjust(24)
            )
        lines.append(f"{scheme:<16}" + "".join(cells))
    return "\n".join(lines)


def format_roc_series(
    title: str, series: Mapping[str, Sequence[RocPoint]]
) -> str:
    """Render threshold-swept ROC series (Fixed-Filtering, Histogram...)."""
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"{name}:")
        for point in points:
            lines.append(
                f"  threshold={point.threshold:<8g} "
                f"P={point.precision:.2f} R={point.recall:.2f}"
            )
    return "\n".join(lines)


def format_sensitivity_table(
    rows: Sequence[Tuple[str, str, PrecisionRecall]],
) -> str:
    """Render Table I: parameter setting x fault -> P/R."""
    lines = [
        "Table I — sensitivity to look-back window and concurrency threshold",
        f"{'parameter':<28}{'fault':<24}{'P':>8}{'R':>8}",
    ]
    for parameter, fault, pr in rows:
        lines.append(
            f"{parameter:<28}{fault:<24}{pr.precision:>8.2f}{pr.recall:>8.2f}"
        )
    return "\n".join(lines)
