"""Seeded telemetry-corruption harness for chaos testing.

The resilience layer (:mod:`repro.monitoring.quality`) promises graceful
degradation on broken telemetry; this module manufactures the breakage.
:func:`corrupt_store` replays a clean recorded :class:`MetricStore`
through the tolerant timestamped ingestion path while injecting the
defect classes a production collector produces:

* random sample loss (``gap_fraction``),
* NaN readings (``nan_fraction``),
* constant per-series clock skew (``max_skew``),
* delayed out-of-order delivery (``delay_fraction`` / ``delay_max``),
* VM churn — components silent for a contiguous interval (``churn``).

Everything is driven by one :class:`numpy.random.Generator` seeded from
``ChaosSpec.seed`` and iterated in sorted series order, so a given
``(store, spec, policy)`` triple always yields the same corrupted store
— the chaos suite asserts determinism per seed on exactly this
property.

:class:`CorruptedFeed` applies the same defect processes to a *live*
feed of the online service loop (:mod:`repro.service`), so degraded
telemetry is exercised in continuous operation, not only in batch
replay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.store import MetricStore


@dataclass(frozen=True)
class ChaosSpec:
    """One reproducible corruption recipe.

    Attributes:
        seed: Seeds every random choice the corruption makes.
        gap_fraction: Per-sample probability of the sample never being
            delivered (a missing tick).
        nan_fraction: Per-sample probability of the delivered value being
            NaN (a broken reading; the ingest policy decides its fate).
        max_skew: Per-series constant clock offset drawn uniformly from
            ``[-max_skew, max_skew]`` ticks and added to every timestamp
            of the series.
        delay_fraction: Per-sample probability of delayed delivery: the
            sample arrives ``1..delay_max`` ticks late, out of order.
        delay_max: Upper bound on the delivery delay in ticks.
        churn: Number of components that go silent (VM churn) for one
            contiguous interval each.
        churn_max: Longest silence interval in ticks.
    """

    seed: int
    gap_fraction: float = 0.0
    nan_fraction: float = 0.0
    max_skew: int = 0
    delay_fraction: float = 0.0
    delay_max: int = 5
    churn: int = 0
    churn_max: int = 40


def corrupt_store(
    source: MetricStore,
    spec: ChaosSpec,
    policy: Optional[DataQualityPolicy] = None,
) -> MetricStore:
    """Replay a clean store through tolerant ingestion with faults injected.

    The first tick of every series is always delivered intact so the
    per-series skew offset is learnable (a real collector's registration
    handshake anchors the clock the same way); all later samples are
    subject to the spec's loss, NaN, delay and churn processes. Delayed
    samples are delivered in timestamp-sorted batches after each tick,
    and any still pending at the end of the run are flushed in order.

    Args:
        source: The clean recorded store to corrupt (read-only).
        spec: The corruption recipe.
        policy: Data-quality policy of the corrupted store (defaults to
            :data:`~repro.monitoring.quality.DEFAULT_POLICY` semantics
            via ``DataQualityPolicy()``).

    Returns:
        A new policy-enabled store covering the same time span.
    """
    policy = policy or DataQualityPolicy()
    rng = np.random.default_rng(spec.seed)
    out = MetricStore(start=source.start, policy=policy)
    keys = [
        (component, metric)
        for component in source.components
        for metric in source.metrics_for(component)
    ]
    values = {key: source.series(*key).values for key in keys}
    skews = {
        key: (
            int(rng.integers(-spec.max_skew, spec.max_skew + 1))
            if spec.max_skew
            else 0
        )
        for key in keys
    }
    absent = _churn_intervals(source, spec, rng)
    pending: Dict[int, List[Tuple]] = {}
    for t in range(source.start, source.end):
        for key in keys:
            component, metric = key
            interval = absent.get(component)
            if interval and interval[0] <= t < interval[1]:
                continue
            value = float(values[key][t - source.start])
            if t > source.start:
                if spec.gap_fraction and rng.random() < spec.gap_fraction:
                    continue
                if spec.nan_fraction and rng.random() < spec.nan_fraction:
                    value = math.nan
                if spec.delay_fraction and rng.random() < spec.delay_fraction:
                    deliver = t + 1 + int(rng.integers(0, spec.delay_max))
                    pending.setdefault(deliver, []).append(
                        (component, metric, t + skews[key], value)
                    )
                    continue
            out.ingest(component, metric, t + skews[key], value)
        for late in pending.pop(t, ()):
            out.ingest(*late)
    for deliver in sorted(pending):
        for late in pending[deliver]:
            out.ingest(*late)
    out.advance_to(source.end)
    return out


class CorruptedFeed:
    """Wrap a live feed with the seeded corruption processes of a spec.

    Mirrors :func:`corrupt_store` sample for sample, but online: each
    :class:`~repro.service.sources.TickBatch` flowing through is
    subjected to the spec's loss, NaN, skew and delay processes before
    it reaches the pipeline. As in the batch harness, the first sample
    of every series is delivered intact so the ingest policy can learn
    the series' clock offset, and delayed samples re-enter in later
    batches (any still pending when the upstream feed ends are flushed
    in extra trailing batches). The churn process needs to know the run
    length up front and is batch-only — use :func:`corrupt_store` for
    it.

    Determinism: a given ``(feed, spec)`` pair always produces the same
    corrupted stream — the RNG is seeded from ``spec.seed`` and consumed
    in the feed's own sample order.
    """

    def __init__(self, feed, spec: ChaosSpec) -> None:
        self.feed = iter(feed)
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self._skews: Dict[Tuple[str, object], int] = {}
        self._pending: Dict[int, List] = {}
        self._exhausted = False

    def __iter__(self) -> "CorruptedFeed":
        return self

    def __next__(self):
        from repro.service.sources import TickBatch

        if self._exhausted:
            if not self._pending:
                raise StopIteration
            deliver = min(self._pending)
            return TickBatch(
                time=deliver, samples=self._pending.pop(deliver)
            )
        try:
            batch = next(self.feed)
        except StopIteration:
            self._exhausted = True
            return self.__next__()
        spec, rng = self.spec, self._rng
        samples = []
        for sample in batch.samples:
            key = (sample.component, sample.metric)
            skew = self._skews.get(key)
            if skew is None:
                skew = (
                    int(rng.integers(-spec.max_skew, spec.max_skew + 1))
                    if spec.max_skew
                    else 0
                )
                self._skews[key] = skew
                samples.append(
                    _resample(sample, sample.time + skew, sample.value)
                )
                continue
            if spec.gap_fraction and rng.random() < spec.gap_fraction:
                continue
            value = sample.value
            if spec.nan_fraction and rng.random() < spec.nan_fraction:
                value = math.nan
            corrupted = _resample(sample, sample.time + skew, value)
            if spec.delay_fraction and rng.random() < spec.delay_fraction:
                deliver = batch.time + 1 + int(rng.integers(0, spec.delay_max))
                self._pending.setdefault(deliver, []).append(corrupted)
                continue
            samples.append(corrupted)
        samples.extend(self._pending.pop(batch.time, ()))
        return TickBatch(
            time=batch.time, samples=samples, performance=batch.performance
        )


def _resample(sample, time: int, value: float):
    """A copy of a frozen :class:`MetricSample` with new time/value."""
    from repro.common.types import MetricSample

    return MetricSample(sample.component, sample.metric, time, value)


def _churn_intervals(
    source: MetricStore, spec: ChaosSpec, rng: np.random.Generator
) -> Dict[str, Tuple[int, int]]:
    """Draw one silence interval per churned component (never tick 0)."""
    if not spec.churn or source.length <= 2:
        return {}
    components = source.components
    picked = rng.choice(
        len(components), size=min(spec.churn, len(components)), replace=False
    )
    intervals: Dict[str, Tuple[int, int]] = {}
    for index in sorted(int(i) for i in picked):
        component = components[index]
        length = int(rng.integers(1, spec.churn_max + 1))
        offset = int(rng.integers(1, max(2, source.length - length)))
        intervals[component] = (
            source.start + offset,
            source.start + offset + length,
        )
    return intervals


__all__ = ["ChaosSpec", "CorruptedFeed", "corrupt_store"]
