"""Precision / recall accounting (paper Sec. III-A, Eq. 1).

True positive: a faulty component correctly pinpointed. False negative: a
faulty component missed. False positive: a normal component pinpointed.
The ROC curves in the paper plot recall (x) against precision (y).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from repro.common.types import ComponentId


@dataclass
class PrecisionRecall:
    """Accumulates confusion counts across runs.

    Attributes:
        true_positives: Correctly pinpointed faulty components.
        false_positives: Normal components pinpointed as faulty.
        false_negatives: Faulty components missed.
        runs: Number of runs accumulated.
    """

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    runs: int = 0

    def update(
        self,
        pinpointed: Iterable[ComponentId],
        ground_truth: Iterable[ComponentId],
    ) -> None:
        """Score one run's pinpointing against its ground truth."""
        pin: Set[ComponentId] = set(pinpointed)
        truth: Set[ComponentId] = set(ground_truth)
        self.true_positives += len(pin & truth)
        self.false_positives += len(pin - truth)
        self.false_negatives += len(truth - pin)
        self.runs += 1

    @property
    def precision(self) -> float:
        """``tp / (tp + fp)``; defined as 0 with no pinpointings at all."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """``tp / (tp + fn)``; defined as 0 with no faulty components."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def merged(self, other: "PrecisionRecall") -> "PrecisionRecall":
        """Combine two accumulators."""
        return PrecisionRecall(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
            self.runs + other.runs,
        )

    def __str__(self) -> str:
        return (
            f"P={self.precision:.2f} R={self.recall:.2f} "
            f"(tp={self.true_positives} fp={self.false_positives} "
            f"fn={self.false_negatives}, {self.runs} runs)"
        )


@dataclass(frozen=True)
class RocPoint:
    """One point of a threshold-swept ROC curve."""

    threshold: float
    precision: float
    recall: float
