"""Experiment harness regenerating the paper's evaluation.

:mod:`repro.eval.scenarios` defines every fault scenario of Sec. III-A;
:mod:`repro.eval.runner` executes repeated fault-injection runs and feeds
the identical recorded data to every localization scheme;
:mod:`repro.eval.metrics` implements the precision/recall accounting; and
:mod:`repro.eval.report` prints the rows/series of each table and figure.
"""

from repro.eval.chaos import ChaosSpec, corrupt_store
from repro.eval.metrics import PrecisionRecall, RocPoint
from repro.eval.plotting import sparkline, strip_chart
from repro.eval.runner import (
    FChainLocalizer,
    FChainValidatedLocalizer,
    RunRecord,
    dependency_graph_for,
    evaluate_schemes,
    execute_run,
    sweep_thresholds,
)
from repro.eval.scenarios import (
    Scenario,
    all_scenarios,
    hadoop_scenarios,
    rubis_scenarios,
    scenario_by_name,
    systems_scenarios,
)

__all__ = [
    "FChainLocalizer",
    "sparkline",
    "strip_chart",
    "FChainValidatedLocalizer",
    "PrecisionRecall",
    "RocPoint",
    "RunRecord",
    "ChaosSpec",
    "Scenario",
    "all_scenarios",
    "corrupt_store",
    "dependency_graph_for",
    "evaluate_schemes",
    "execute_run",
    "hadoop_scenarios",
    "rubis_scenarios",
    "scenario_by_name",
    "sweep_thresholds",
    "systems_scenarios",
]
