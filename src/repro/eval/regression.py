"""Benchmark regression gating against committed baselines.

The CI ``bench-regression`` job (and ``repro bench --check`` locally)
regenerates the ``BENCH_*.json`` payloads and compares them against the
committed baselines under ``benchmarks/baselines/``. A *regression* is:

* throughput (any ``ops_per_second`` field) dropping below
  ``(1 - tolerance)`` of the baseline, or
* tail latency (any ``p99_ms`` field) rising above
  ``(1 + p99_tolerance)`` times the baseline.

The tolerance band is deliberately generous by default — CI runners are
noisy and heterogeneous — so the gate catches the erosion of order-of-
magnitude speedups (the warm-engine diagnosis win and the >= 10x ring
store ingest win), not single-digit-percent jitter. Comparisons are refused outright (not failed
softly) when the payloads are not comparable: a missing or mismatched
``schema_version`` (stale format) or different workload parameters
(samples / components / metrics).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.eval.bench import BENCH_SCHEMA_VERSION

#: Default fraction of baseline throughput a run may lose before the
#: gate fails (0.5 == fail below half the baseline ops/s).
DEFAULT_OPS_TOLERANCE = 0.5

#: Default fractional p99 rise allowed (1.5 == fail above 2.5x baseline).
DEFAULT_P99_TOLERANCE = 1.5

#: Workload parameters that must match for numbers to be comparable.
_PARAM_FIELDS = ("benchmark", "samples", "components", "metrics")


class BaselineMismatch(ValueError):
    """The two payloads cannot be meaningfully compared."""


@dataclass(frozen=True)
class RegressionCheck:
    """One compared number.

    Attributes:
        metric: Dotted path of the compared field (``"ingest.batched.ops_per_second"``).
        kind: ``"throughput"`` (higher is better) or ``"latency"``
            (lower is better).
        current: The freshly measured value.
        baseline: The committed baseline value.
        limit: The tolerance-adjusted bound the current value had to stay
            on the right side of.
        ok: Whether the check passed.
    """

    metric: str
    kind: str
    current: float
    baseline: float
    limit: float
    ok: bool

    @property
    def ratio(self) -> float:
        """Current over baseline (1.0 == identical)."""
        return self.current / self.baseline if self.baseline else float("inf")


def _require_comparable(current: Dict, baseline: Dict) -> None:
    for payload, who in ((current, "current"), (baseline, "baseline")):
        version = payload.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise BaselineMismatch(
                f"{who} payload has schema_version={version!r}, expected "
                f"{BENCH_SCHEMA_VERSION} — regenerate it with "
                "`repro bench --json` (stale formats are not compared)"
            )
    for field in _PARAM_FIELDS:
        if current.get(field) != baseline.get(field):
            raise BaselineMismatch(
                f"workload parameter {field!r} differs: current "
                f"{current.get(field)!r} vs baseline {baseline.get(field)!r} "
                "— rerun the benchmark with the baseline's parameters or "
                "regenerate the baseline"
            )


def compare_report(
    current: Dict,
    baseline: Dict,
    *,
    ops_tolerance: float = DEFAULT_OPS_TOLERANCE,
    p99_tolerance: float = DEFAULT_P99_TOLERANCE,
) -> List[RegressionCheck]:
    """Compare one benchmark payload against its baseline.

    Walks every section of the payload that carries an
    ``ops_per_second`` (throughput, higher is better) or ``p99_ms``
    (latency, lower is better) field and checks it against the
    tolerance-adjusted baseline.

    Raises:
        BaselineMismatch: When schema versions or workload parameters
            make the payloads incomparable.
    """
    _require_comparable(current, baseline)
    name = current.get("benchmark", "bench")
    checks: List[RegressionCheck] = []
    for section, entry in sorted(current.items()):
        if not isinstance(entry, dict):
            continue
        base_entry = baseline.get(section)
        if not isinstance(base_entry, dict):
            continue
        if "ops_per_second" in entry and "ops_per_second" in base_entry:
            base = float(base_entry["ops_per_second"])
            cur = float(entry["ops_per_second"])
            limit = base * (1.0 - ops_tolerance)
            checks.append(
                RegressionCheck(
                    metric=f"{name}.{section}.ops_per_second",
                    kind="throughput",
                    current=cur,
                    baseline=base,
                    limit=limit,
                    ok=cur >= limit,
                )
            )
        if "p99_ms" in entry and "p99_ms" in base_entry:
            base = float(base_entry["p99_ms"])
            cur = float(entry["p99_ms"])
            limit = base * (1.0 + p99_tolerance)
            checks.append(
                RegressionCheck(
                    metric=f"{name}.{section}.p99_ms",
                    kind="latency",
                    current=cur,
                    baseline=base,
                    limit=limit,
                    ok=cur <= limit,
                )
            )
    return checks


def load_baseline(path: Union[str, pathlib.Path]) -> Dict:
    """Read one committed baseline payload."""
    with open(path) as handle:
        return json.load(handle)


def check_against_baselines(
    reports: Dict[str, Dict],
    baseline_dir: Union[str, pathlib.Path],
    *,
    ops_tolerance: float = DEFAULT_OPS_TOLERANCE,
    p99_tolerance: float = DEFAULT_P99_TOLERANCE,
) -> Tuple[List[RegressionCheck], List[str]]:
    """Compare fresh reports to the committed baseline directory.

    Args:
        reports: ``{file name: payload}`` of freshly produced benchmark
            JSON payloads (the names ``repro bench --json`` writes, e.g.
            ``BENCH_ingest.json``).
        baseline_dir: Directory holding baselines under the same file
            names.

    Returns:
        ``(checks, missing)`` — every comparison performed, plus the
        report names that had no committed baseline (surfaced so a new
        benchmark cannot silently bypass the gate).
    """
    baseline_dir = pathlib.Path(baseline_dir)
    checks: List[RegressionCheck] = []
    missing: List[str] = []
    for filename, payload in sorted(reports.items()):
        baseline_path = baseline_dir / filename
        if not baseline_path.exists():
            missing.append(filename)
            continue
        checks.extend(
            compare_report(
                payload,
                load_baseline(baseline_path),
                ops_tolerance=ops_tolerance,
                p99_tolerance=p99_tolerance,
            )
        )
    return checks, missing


def format_checks(checks: List[RegressionCheck]) -> str:
    """Human-readable regression gate table."""
    if not checks:
        return "no comparable benchmark numbers found"
    width = max(len(c.metric) for c in checks)
    lines = []
    for check in checks:
        verdict = "ok  " if check.ok else "FAIL"
        bound = "min" if check.kind == "throughput" else "max"
        lines.append(
            f"{verdict} {check.metric:<{width}} "
            f"current {check.current:12.2f} vs baseline {check.baseline:12.2f} "
            f"({check.ratio:6.2f}x, {bound} allowed {check.limit:.2f})"
        )
    failed = sum(1 for c in checks if not c.ok)
    lines.append(
        f"{len(checks) - failed}/{len(checks)} checks passed"
        + (f" — {failed} REGRESSION(S)" if failed else "")
    )
    return "\n".join(lines)


__all__ = [
    "BaselineMismatch",
    "DEFAULT_OPS_TOLERANCE",
    "DEFAULT_P99_TOLERANCE",
    "RegressionCheck",
    "check_against_baselines",
    "compare_report",
    "format_checks",
    "load_baseline",
]
