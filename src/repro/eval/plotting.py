"""Terminal-friendly plotting helpers for series and markers.

The evaluation prints its figures as text; these helpers render a time
series as an ASCII strip chart with optional event markers (change
points, onsets, the SLO violation) so the regenerated Fig. 3 / Fig. 4
outputs are actually inspectable in a terminal or a text file.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.common.timeseries import TimeSeries

#: Glyphs from low to high.
_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 80) -> str:
    """One-line density sparkline of a series, resampled to ``width``."""
    values = np.asarray(list(values), dtype=float)
    if len(values) == 0:
        return ""
    idx = np.linspace(0, len(values) - 1, min(width, len(values))).astype(int)
    sampled = values[idx]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo
    if span <= 0:
        return _LEVELS[0] * len(sampled)
    chars = []
    for v in sampled:
        level = int((v - lo) / span * (len(_LEVELS) - 1))
        chars.append(_LEVELS[level])
    return "".join(chars)


def strip_chart(
    series: TimeSeries,
    *,
    height: int = 8,
    width: int = 80,
    markers: Optional[Dict[int, str]] = None,
    title: str = "",
) -> str:
    """Multi-line ASCII chart of a series with labelled time markers.

    Args:
        series: The series to draw.
        height: Chart rows.
        width: Chart columns (the series is resampled).
        markers: ``{timestamp: glyph}`` annotations drawn under the x axis
            (e.g. ``{onset: '^'}``).
        title: Optional caption.

    Returns:
        The rendered chart.
    """
    values = series.values
    if len(values) == 0:
        return title
    columns = min(width, len(values))
    idx = np.linspace(0, len(values) - 1, columns).astype(int)
    sampled = values[idx]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo if hi > lo else 1.0

    grid = [[" "] * columns for _ in range(height)]
    for col, value in enumerate(sampled):
        row = int((value - lo) / span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.1f} ┐")
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{lo:10.1f} ┘")

    marker_row = [" "] * columns
    legend = []
    for time, glyph in (markers or {}).items():
        if not series.start <= time < series.end:
            continue
        position = int(
            (time - series.start) / max(1, len(values) - 1) * (columns - 1)
        )
        marker_row[position] = glyph[0]
        legend.append(f"{glyph[0]}=t{time}")
    if legend:
        lines.append(" " * 12 + "".join(marker_row))
        lines.append(" " * 12 + "markers: " + ", ".join(sorted(legend)))
    lines.append(
        " " * 12 + f"t=[{series.start}, {series.end}) "
        f"({len(values)} samples)"
    )
    return "\n".join(lines)
