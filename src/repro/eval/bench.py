"""Diagnosis-latency benchmarking on synthetic long-history stores.

The paper cares about *online* diagnosis latency (Sec. III-G): FChain
must localize within seconds of the SLO violation even after hours of
recorded history. This module builds deterministic synthetic stores of
arbitrary length and times the two diagnosis engines against each other:

* **replay** (``incremental=False``) — the original engine; every
  diagnosis replays the full per-metric history through fresh Markov
  models, so latency grows with the recorded history;
* **incremental** — the warm engine; the persistent slave's models and
  error streams are already caught up, so a diagnosis costs only the
  look-back-window analysis.

Shared by the ``repro bench`` CLI subcommand and
``benchmarks/bench_incremental_engine.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

import numpy as np

from repro.common.types import METRIC_NAMES, ComponentId
from repro.core.config import FChainConfig
from repro.core.fchain import FChainMaster
from repro.monitoring.store import MetricStore


def synthetic_store(
    *,
    samples: int = 10_000,
    components: int = 8,
    metrics: int = 3,
    seed: int = 7,
    fault_component: int = 0,
    fault_lead: int = 40,
) -> MetricStore:
    """A deterministic long-history store with one step fault at the end.

    Every series is a workload-like signal (slow sinusoid + diurnal drift
    + Gaussian noise + occasional flash bursts). One component receives a
    clear level shift ``fault_lead`` ticks before the end, so a diagnosis
    at ``store.end - 1`` has a genuine abnormal change to select.

    Args:
        samples: Ticks of recorded history.
        components: Number of components (``c0`` … ``c{n-1}``).
        metrics: Monitored metrics per component (first ``metrics``
            entries of the canonical metric order).
        seed: Deterministic RNG seed.
        fault_component: Index of the component that receives the fault.
        fault_lead: Ticks before the end at which the fault manifests.
    """
    if metrics < 1 or metrics > len(METRIC_NAMES):
        raise ValueError(f"metrics must be in [1, {len(METRIC_NAMES)}]")
    rng = np.random.default_rng(seed)
    t = np.arange(samples, dtype=float)
    data = {}
    for c in range(components):
        per_metric = {}
        for m, metric in enumerate(METRIC_NAMES[:metrics]):
            base = 40.0 + 6.0 * c + 3.0 * m
            signal = (
                base
                + 8.0 * np.sin(2 * np.pi * t / (240.0 + 15.0 * c))
                + 3.0 * np.sin(2 * np.pi * t / 1900.0)
                + rng.normal(0.0, 1.1, samples)
            )
            # Sparse benign flash bursts so the burst extractor has
            # realistic high-frequency content to calibrate against.
            bursts = rng.random(samples) < 0.004
            signal[bursts] += rng.uniform(5.0, 12.0, int(bursts.sum()))
            if c == fault_component and m == 0:
                signal[samples - fault_lead :] += 30.0
            per_metric[metric] = signal
        data[f"c{c}"] = per_metric
    return MetricStore.from_arrays(data)


@dataclass
class LatencyReport:
    """Outcome of one replay-vs-incremental latency comparison.

    Attributes:
        samples: History length of the benchmarked store.
        components: Component count.
        metrics: Metrics per component.
        replay_seconds: Per-diagnosis latencies of the replay engine.
        incremental_seconds: Per-diagnosis latencies of the warm
            incremental engine (warm-up sync excluded — it models the
            slave having streamed the history at 1 Hz).
        warmup_seconds: Cost of the one-time catch-up sync.
        faulty: Components both engines pinpointed.
        results_match: Whether the engines produced identical faulty
            sets, chains and external-factor verdicts on every repeat.
    """

    samples: int
    components: int
    metrics: int
    replay_seconds: List[float]
    incremental_seconds: List[float]
    warmup_seconds: float
    faulty: FrozenSet[ComponentId]
    results_match: bool

    @property
    def replay_best(self) -> float:
        return min(self.replay_seconds)

    @property
    def incremental_best(self) -> float:
        return min(self.incremental_seconds)

    @property
    def speedup(self) -> float:
        """Replay latency over warm incremental latency (best-of-N)."""
        return self.replay_best / max(self.incremental_best, 1e-12)

    def summary(self) -> str:
        lines = [
            f"history: {self.samples} samples x {self.components} "
            f"components x {self.metrics} metrics",
            f"replay diagnosis:      best {self.replay_best * 1e3:9.1f} ms "
            f"over {len(self.replay_seconds)} repeats",
            f"incremental diagnosis: best {self.incremental_best * 1e3:9.1f} ms "
            f"over {len(self.incremental_seconds)} repeats "
            f"(one-time warm-up sync {self.warmup_seconds * 1e3:.1f} ms)",
            f"speedup: {self.speedup:.1f}x",
            f"pinpointed: {sorted(self.faulty)} "
            f"(results {'identical' if self.results_match else 'DIVERGED'})",
        ]
        return "\n".join(lines)


def _result_key(result):
    return (result.faulty, result.chain.links, result.external_factor)


def measure_latency(
    store: MetricStore,
    *,
    config: Optional[FChainConfig] = None,
    repeats: int = 3,
    jobs: Optional[int] = None,
    seed: object = 0,
    violation_times: Optional[Sequence[int]] = None,
) -> LatencyReport:
    """Time replay vs warm incremental diagnosis on one store.

    Each repeat diagnoses a slightly different violation time (so the
    incremental engine cannot trivially serve every repeat from its
    per-window cache); both engines see the same times and their results
    are compared for equality.

    Args:
        store: The store to diagnose.
        config: FChain configuration (defaults to the paper defaults).
        repeats: Timed diagnoses per engine.
        jobs: Fan-out width for the incremental engine's slave pool.
        seed: Deterministic seed label shared by both engines.
        violation_times: Explicit violation times; defaults to the last
            ``repeats`` ticks that keep the analysis grace inside the
            recorded history.
    """
    config = (config or FChainConfig()).validate()
    if violation_times is None:
        last = store.end - config.analysis_grace - 1
        violation_times = [last - i for i in range(repeats)]
    metrics = len(store.metrics_for(store.components[0]))

    replay = FChainMaster(config, seed=seed, incremental=False)
    replay_seconds = []
    replay_results = []
    for t_v in violation_times:
        started = time.perf_counter()
        replay_results.append(replay.diagnose(store, t_v))
        replay_seconds.append(time.perf_counter() - started)

    incremental = FChainMaster(config, seed=seed, jobs=jobs, incremental=True)
    started = time.perf_counter()
    incremental.slave.sync_with_store(store, store.end)
    warmup_seconds = time.perf_counter() - started
    incremental_seconds = []
    incremental_results = []
    for t_v in violation_times:
        started = time.perf_counter()
        incremental_results.append(incremental.diagnose(store, t_v))
        incremental_seconds.append(time.perf_counter() - started)

    results_match = all(
        _result_key(a) == _result_key(b)
        for a, b in zip(replay_results, incremental_results)
    )
    return LatencyReport(
        samples=store.length,
        components=len(store.components),
        metrics=metrics,
        replay_seconds=replay_seconds,
        incremental_seconds=incremental_seconds,
        warmup_seconds=warmup_seconds,
        faulty=incremental_results[0].faulty,
        results_match=results_match,
    )


def run_benchmark(
    *,
    samples: int = 10_000,
    components: int = 8,
    metrics: int = 3,
    repeats: int = 3,
    jobs: Optional[int] = None,
    seed: int = 7,
) -> LatencyReport:
    """Build a synthetic store and run the latency comparison on it."""
    store = synthetic_store(
        samples=samples, components=components, metrics=metrics, seed=seed
    )
    return measure_latency(store, repeats=repeats, jobs=jobs, seed=seed)
