"""Diagnosis-latency benchmarking on synthetic long-history stores.

The paper cares about *online* diagnosis latency (Sec. III-G): FChain
must localize within seconds of the SLO violation even after hours of
recorded history. This module builds deterministic synthetic stores of
arbitrary length and times the two diagnosis engines against each other:

* **replay** (``incremental=False``) — the original engine; every
  diagnosis replays the full per-metric history through fresh Markov
  models, so latency grows with the recorded history;
* **incremental** — the warm engine; the persistent slave's models and
  error streams are already caught up, so a diagnosis costs only the
  look-back-window analysis.

Shared by the ``repro bench`` CLI subcommand and
``benchmarks/bench_incremental_engine.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.common.errors import ReproError
from repro.common.types import METRIC_NAMES, ComponentId
from repro.core.config import FChainConfig
from repro.core.fchain import FChainMaster
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.store import IngestBatch, IngestRun, MetricStore


#: Version of the ``BENCH_*.json`` payload layout. Bump when fields are
#: renamed or re-scaled; the CI regression gate
#: (:mod:`repro.eval.regression`) rejects payloads from other versions
#: rather than comparing incomparable numbers.
BENCH_SCHEMA_VERSION = 3

#: Single-thread ingest throughput (samples/s) recorded by the
#: schema-v2 ``BENCH_ingest.json`` baseline immediately before the ring
#: store rewrite. The rewrite's acceptance bar is >= 10x this figure on
#: the batched path; the constant is frozen here so the comparison
#: survives baseline regeneration.
PRE_REWRITE_INGEST_OPS = 152_953.37


def _json_header(benchmark: str) -> Dict:
    """Common envelope of every benchmark JSON payload."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "benchmark": benchmark,
    }


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    """One percentile of a latency list, in milliseconds."""
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def synthetic_store(
    *,
    samples: int = 10_000,
    components: int = 8,
    metrics: int = 3,
    seed: int = 7,
    fault_component: int = 0,
    fault_lead: int = 40,
) -> MetricStore:
    """A deterministic long-history store with one step fault at the end.

    Every series is a workload-like signal (slow sinusoid + diurnal drift
    + Gaussian noise + occasional flash bursts). One component receives a
    clear level shift ``fault_lead`` ticks before the end, so a diagnosis
    at ``store.end - 1`` has a genuine abnormal change to select.

    Args:
        samples: Ticks of recorded history.
        components: Number of components (``c0`` … ``c{n-1}``).
        metrics: Monitored metrics per component (first ``metrics``
            entries of the canonical metric order).
        seed: Deterministic RNG seed.
        fault_component: Index of the component that receives the fault.
        fault_lead: Ticks before the end at which the fault manifests.
    """
    if metrics < 1 or metrics > len(METRIC_NAMES):
        raise ValueError(f"metrics must be in [1, {len(METRIC_NAMES)}]")
    rng = np.random.default_rng(seed)
    t = np.arange(samples, dtype=float)
    data = {}
    for c in range(components):
        per_metric = {}
        for m, metric in enumerate(METRIC_NAMES[:metrics]):
            base = 40.0 + 6.0 * c + 3.0 * m
            signal = (
                base
                + 8.0 * np.sin(2 * np.pi * t / (240.0 + 15.0 * c))
                + 3.0 * np.sin(2 * np.pi * t / 1900.0)
                + rng.normal(0.0, 1.1, samples)
            )
            # Sparse benign flash bursts so the burst extractor has
            # realistic high-frequency content to calibrate against.
            bursts = rng.random(samples) < 0.004
            signal[bursts] += rng.uniform(5.0, 12.0, int(bursts.sum()))
            if c == fault_component and m == 0:
                signal[samples - fault_lead :] += 30.0
            per_metric[metric] = signal
        data[f"c{c}"] = per_metric
    return MetricStore.from_arrays(data)


@dataclass
class LatencyReport:
    """Outcome of one replay-vs-incremental latency comparison.

    Attributes:
        samples: History length of the benchmarked store.
        components: Component count.
        metrics: Metrics per component.
        replay_seconds: Per-diagnosis latencies of the replay engine.
        incremental_seconds: Per-diagnosis latencies of the warm
            incremental engine (warm-up sync excluded — it models the
            slave having streamed the history at 1 Hz).
        warmup_seconds: Cost of the one-time catch-up sync.
        faulty: Components both engines pinpointed.
        results_match: Whether the engines produced identical faulty
            sets, chains and external-factor verdicts on every repeat.
    """

    samples: int
    components: int
    metrics: int
    replay_seconds: List[float]
    incremental_seconds: List[float]
    warmup_seconds: float
    faulty: FrozenSet[ComponentId]
    results_match: bool

    @property
    def replay_best(self) -> float:
        return min(self.replay_seconds)

    @property
    def incremental_best(self) -> float:
        return min(self.incremental_seconds)

    @property
    def speedup(self) -> float:
        """Replay latency over warm incremental latency (best-of-N)."""
        return self.replay_best / max(self.incremental_best, 1e-12)

    def summary(self) -> str:
        lines = [
            f"history: {self.samples} samples x {self.components} "
            f"components x {self.metrics} metrics",
            f"replay diagnosis:      best {self.replay_best * 1e3:9.1f} ms "
            f"over {len(self.replay_seconds)} repeats",
            f"incremental diagnosis: best {self.incremental_best * 1e3:9.1f} ms "
            f"over {len(self.incremental_seconds)} repeats "
            f"(one-time warm-up sync {self.warmup_seconds * 1e3:.1f} ms)",
            f"speedup: {self.speedup:.1f}x",
            f"pinpointed: {sorted(self.faulty)} "
            f"(results {'identical' if self.results_match else 'DIVERGED'})",
        ]
        return "\n".join(lines)

    def to_json(self) -> Dict:
        """Machine-readable payload (``repro bench --json``, CI artifact)."""
        return {
            **_json_header("incremental_engine"),
            "samples": self.samples,
            "components": self.components,
            "metrics": self.metrics,
            "replay": {
                "ops_per_second": 1.0 / max(self.replay_best, 1e-12),
                "p50_ms": _percentile_ms(self.replay_seconds, 50),
                "p99_ms": _percentile_ms(self.replay_seconds, 99),
                "best_ms": self.replay_best * 1e3,
            },
            "incremental": {
                "ops_per_second": 1.0 / max(self.incremental_best, 1e-12),
                "p50_ms": _percentile_ms(self.incremental_seconds, 50),
                "p99_ms": _percentile_ms(self.incremental_seconds, 99),
                "best_ms": self.incremental_best * 1e3,
                "warmup_ms": self.warmup_seconds * 1e3,
            },
            "speedup": self.speedup,
            "results_match": self.results_match,
            "faulty": sorted(self.faulty),
        }


def _result_key(result):
    return (result.faulty, result.chain.links, result.external_factor)


def measure_latency(
    store: MetricStore,
    *,
    config: Optional[FChainConfig] = None,
    repeats: int = 3,
    jobs: Optional[int] = None,
    seed: object = 0,
    violation_times: Optional[Sequence[int]] = None,
) -> LatencyReport:
    """Time replay vs warm incremental diagnosis on one store.

    Each repeat diagnoses a slightly different violation time (so the
    incremental engine cannot trivially serve every repeat from its
    per-window cache); both engines see the same times and their results
    are compared for equality.

    Args:
        store: The store to diagnose.
        config: FChain configuration (defaults to the paper defaults).
        repeats: Timed diagnoses per engine.
        jobs: Fan-out width for the incremental engine's slave pool.
        seed: Deterministic seed label shared by both engines.
        violation_times: Explicit violation times; defaults to the last
            ``repeats`` ticks that keep the analysis grace inside the
            recorded history.
    """
    config = (config or FChainConfig()).validate()
    if violation_times is None:
        last = store.end - config.analysis_grace - 1
        violation_times = [last - i for i in range(repeats)]
    metrics = len(store.metrics_for(store.components[0]))

    replay = FChainMaster(config, seed=seed, incremental=False)
    replay_seconds = []
    replay_results = []
    for t_v in violation_times:
        started = time.perf_counter()
        replay_results.append(replay.diagnose(store, t_v))
        replay_seconds.append(time.perf_counter() - started)

    incremental = FChainMaster(config, seed=seed, jobs=jobs, incremental=True)
    started = time.perf_counter()
    incremental.slave.sync_with_store(store, store.end)
    warmup_seconds = time.perf_counter() - started
    incremental_seconds = []
    incremental_results = []
    for t_v in violation_times:
        started = time.perf_counter()
        incremental_results.append(incremental.diagnose(store, t_v))
        incremental_seconds.append(time.perf_counter() - started)

    results_match = all(
        _result_key(a) == _result_key(b)
        for a, b in zip(replay_results, incremental_results)
    )
    return LatencyReport(
        samples=store.length,
        components=len(store.components),
        metrics=metrics,
        replay_seconds=replay_seconds,
        incremental_seconds=incremental_seconds,
        warmup_seconds=warmup_seconds,
        faulty=incremental_results[0].faulty,
        results_match=results_match,
    )


def run_benchmark(
    *,
    samples: int = 10_000,
    components: int = 8,
    metrics: int = 3,
    repeats: int = 3,
    jobs: Optional[int] = None,
    seed: int = 7,
    config: Optional[FChainConfig] = None,
) -> LatencyReport:
    """Build a synthetic store and run the latency comparison on it."""
    store = synthetic_store(
        samples=samples, components=components, metrics=metrics, seed=seed
    )
    return measure_latency(
        store, repeats=repeats, jobs=jobs, seed=seed, config=config
    )


@dataclass
class IngestReport:
    """Outcome of one per-sample-vs-batched store-ingest comparison.

    Attributes:
        samples: History length (ticks) of the benchmarked data.
        components: Component count.
        metrics: Metrics per component.
        chunk: Chunk size (ticks) used by the batched feed.
        scalar_seconds: Wall time of the per-sample tolerant
            ``ingest(component, metric, t, value)`` feed.
        batched_seconds: Wall time of the chunked
            ``ingest(IngestBatch(runs=...))`` feed.
        scalar_tick_latencies: Per-tick latencies of the scalar feed (one
            tick = one sample per monitored series plus the watermark).
        batched_call_latencies: Per-call latencies of the chunked feed.
        stores_match: Whether both feeds produced bit-identical stored
            series (values and start) for every series.
    """

    samples: int
    components: int
    metrics: int
    chunk: int
    scalar_seconds: float
    batched_seconds: float
    scalar_tick_latencies: List[float]
    batched_call_latencies: List[float]
    stores_match: bool

    @property
    def total_samples(self) -> int:
        return self.samples * self.components * self.metrics

    @property
    def scalar_ops(self) -> float:
        """Samples ingested per second by the per-sample path."""
        return self.total_samples / max(self.scalar_seconds, 1e-12)

    @property
    def batched_ops(self) -> float:
        """Samples ingested per second by the batched path."""
        return self.total_samples / max(self.batched_seconds, 1e-12)

    @property
    def speedup(self) -> float:
        return self.scalar_seconds / max(self.batched_seconds, 1e-12)

    @property
    def speedup_vs_pre_rewrite(self) -> float:
        """Batched ring throughput over the frozen pre-rewrite figure."""
        return self.batched_ops / PRE_REWRITE_INGEST_OPS

    def summary(self) -> str:
        lines = [
            f"store ingest: {self.samples} samples x {self.components} "
            f"components x {self.metrics} metrics "
            f"({self.total_samples} total samples)",
            f"per-sample ingest():   {self.scalar_ops:12.0f} samples/s "
            f"(tick p50 {_percentile_ms(self.scalar_tick_latencies, 50):.3f} ms, "
            f"p99 {_percentile_ms(self.scalar_tick_latencies, 99):.3f} ms)",
            f"batched runs({self.chunk}): {self.batched_ops:14.0f} samples/s "
            f"(call p50 {_percentile_ms(self.batched_call_latencies, 50):.3f} ms, "
            f"p99 {_percentile_ms(self.batched_call_latencies, 99):.3f} ms)",
            f"speedup: {self.speedup:.1f}x over per-sample, "
            f"{self.speedup_vs_pre_rewrite:.1f}x over the pre-rewrite store "
            f"(stores {'identical' if self.stores_match else 'DIVERGED'})",
        ]
        return "\n".join(lines)

    def to_json(self) -> Dict:
        """Machine-readable payload (``repro bench --json``, CI artifact)."""
        return {
            **_json_header("ingest"),
            "samples": self.samples,
            "components": self.components,
            "metrics": self.metrics,
            "chunk": self.chunk,
            "total_samples": self.total_samples,
            "scalar": {
                "ops_per_second": self.scalar_ops,
                "p50_ms": _percentile_ms(self.scalar_tick_latencies, 50),
                "p99_ms": _percentile_ms(self.scalar_tick_latencies, 99),
                "total_seconds": self.scalar_seconds,
            },
            "batched": {
                "ops_per_second": self.batched_ops,
                "p50_ms": _percentile_ms(self.batched_call_latencies, 50),
                "p99_ms": _percentile_ms(self.batched_call_latencies, 99),
                "total_seconds": self.batched_seconds,
            },
            "speedup": self.speedup,
            "pre_rewrite_ops_per_second": PRE_REWRITE_INGEST_OPS,
            "speedup_vs_pre_rewrite": self.speedup_vs_pre_rewrite,
            "stores_match": self.stores_match,
        }


def measure_ingest(
    store: MetricStore,
    *,
    config: Optional[FChainConfig] = None,
    chunk: int = 512,
) -> IngestReport:
    """Time per-sample vs batched *store* ingest of a whole store's data.

    Replays every (component, metric) series of ``store`` into two fresh
    ring-backed stores: one sample at a time through the tolerant
    ``ingest(component, metric, t, value)`` path (the 1 Hz streaming
    shape, one watermark per tick) and in ``chunk``-tick
    :class:`~repro.monitoring.store.IngestRun` batches (the collector
    shape). Both feeds must leave bit-identical stored series — the
    speedup is pure batching, not an approximation.

    ``config`` is accepted for signature compatibility with
    :func:`measure_latency`; store ingest does not consult it.
    """
    del config  # store ingest has no engine configuration
    series = {
        (component, metric): store.series(component, metric).values
        for component in store.components
        for metric in store.metrics_for(component)
    }
    ticks = store.length
    start = store.start

    scalar = MetricStore(start=start, policy=DataQualityPolicy())
    tick_latencies = []
    scalar_started = time.perf_counter()
    for i in range(ticks):
        tick_started = time.perf_counter()
        t = start + i
        for (component, metric), values in series.items():
            scalar.ingest(component, metric, t, float(values[i]))
        scalar.advance_to(t + 1)
        tick_latencies.append(time.perf_counter() - tick_started)
    scalar_seconds = time.perf_counter() - scalar_started

    batched = MetricStore(start=start)
    call_latencies = []
    batched_started = time.perf_counter()
    for lo in range(0, ticks, chunk):
        hi = min(lo + chunk, ticks)
        call_started = time.perf_counter()
        batched.ingest(
            IngestBatch(
                runs=[
                    IngestRun(component, metric, start + lo, values[lo:hi])
                    for (component, metric), values in series.items()
                ],
                watermark=start + hi,
            )
        )
        call_latencies.append(time.perf_counter() - call_started)
    batched_seconds = time.perf_counter() - batched_started

    def _same(key):
        left = scalar.series(*key)
        right = batched.series(*key)
        return left.start == right.start and np.array_equal(
            left.values, right.values, equal_nan=True
        )

    stores_match = all(_same(key) for key in series)
    return IngestReport(
        samples=ticks,
        components=len(store.components),
        metrics=len(store.metrics_for(store.components[0])),
        chunk=chunk,
        scalar_seconds=scalar_seconds,
        batched_seconds=batched_seconds,
        scalar_tick_latencies=tick_latencies,
        batched_call_latencies=call_latencies,
        stores_match=stores_match,
    )


def run_ingest_benchmark(
    *,
    samples: int = 10_000,
    components: int = 8,
    metrics: int = 3,
    chunk: int = 512,
    seed: int = 7,
    config: Optional[FChainConfig] = None,
) -> IngestReport:
    """Build a synthetic store and run the ingest comparison on it."""
    store = synthetic_store(
        samples=samples, components=components, metrics=metrics, seed=seed
    )
    return measure_ingest(store, config=config, chunk=chunk)


@dataclass
class ServiceLoopReport:
    """Steady-state throughput of the online service loop.

    Measures the per-tick cost of the loop's hot path — tolerant
    ingest, warm-model sync and SLO evaluation — on a violation-free
    replay, i.e. what the loop burns per second when nothing is wrong.

    Attributes:
        samples: Ticks replayed through the loop.
        components: Component count of the synthetic store.
        metrics: Metrics per component.
        tick_seconds: Per-tick processing latencies.
        total_seconds: Wall time of the whole replay.
        incidents: Incidents produced (must be 0 — the SLO never trips).
    """

    samples: int
    components: int
    metrics: int
    tick_seconds: List[float]
    total_seconds: float
    incidents: int

    @property
    def ticks_per_second(self) -> float:
        return self.samples / max(self.total_seconds, 1e-12)

    def summary(self) -> str:
        return "\n".join(
            [
                f"service loop: {self.samples} ticks x {self.components} "
                f"components x {self.metrics} metrics",
                f"steady state: {self.ticks_per_second:10.0f} ticks/s "
                f"(tick p50 {_percentile_ms(self.tick_seconds, 50):.3f} ms, "
                f"p99 {_percentile_ms(self.tick_seconds, 99):.3f} ms)",
                f"incidents: {self.incidents} (expected 0 — no violation)",
            ]
        )

    def to_json(self) -> Dict:
        """Machine-readable payload (``repro bench --json``, CI artifact)."""
        return {
            **_json_header("service_loop"),
            "samples": self.samples,
            "components": self.components,
            "metrics": self.metrics,
            "steady_state": {
                "ops_per_second": self.ticks_per_second,
                "p50_ms": _percentile_ms(self.tick_seconds, 50),
                "p99_ms": _percentile_ms(self.tick_seconds, 99),
                "total_seconds": self.total_seconds,
            },
            "incidents": self.incidents,
        }


def run_service_loop_benchmark(
    *,
    samples: int = 10_000,
    components: int = 8,
    metrics: int = 3,
    seed: int = 7,
    config: Optional[FChainConfig] = None,
    retention: Optional[int] = None,
) -> ServiceLoopReport:
    """Replay a violation-free synthetic store through the online loop.

    The SLO threshold is set far above the constant performance signal,
    so no diagnosis is ever dispatched — the measured figure is the
    loop's pure steady-state overhead (ingest + warm sync + SLO eval)
    per tick.

    ``retention`` bounds the loop's ring store; pass a value smaller
    than ``samples`` to measure the wraparound steady state, where every
    tick overwrites the oldest retained slot.
    """
    from repro.monitoring.slo import LatencySLO
    from repro.service.pipeline import OnlinePipeline
    from repro.service.sources import StoreReplayFeed

    config = (config or FChainConfig()).validate()
    store = synthetic_store(
        samples=samples, components=components, metrics=metrics, seed=seed
    )
    performance = {t: 0.010 for t in range(store.start, store.end)}
    feed = StoreReplayFeed(store, performance=performance)
    loop_store = None
    if retention is not None:
        loop_store = MetricStore(
            start=store.start,
            policy=DataQualityPolicy(),
            retention=retention,
        )
    pipeline = OnlinePipeline(
        feed,
        LatencySLO(1e6, sustain=10),
        config=config,
        seed=seed,
        store=loop_store,
    )
    tick_seconds: List[float] = []
    started = time.perf_counter()
    for batch in feed:
        tick_started = time.perf_counter()
        pipeline.process(batch)
        tick_seconds.append(time.perf_counter() - tick_started)
    total_seconds = time.perf_counter() - started
    pipeline.close()
    return ServiceLoopReport(
        samples=len(tick_seconds),
        components=components,
        metrics=metrics,
        tick_seconds=tick_seconds,
        total_seconds=total_seconds,
        incidents=len(pipeline.incidents),
    )


@dataclass
class FleetReport:
    """Fleet-scale throughput and isolation of the multi-tenant layer.

    Two runs of the same fleet back the report:

    * **quiescent** — no tenant ever violates its SLO; measures the
      fleet's pure routing + per-tenant tick cost at scale (the 1 Hz
      sustained-throughput target);
    * **storm** — one tenant's SLO flaps continuously with a zero
      cooldown, hammering its shard's diagnosis dispatcher; the other
      tenants' per-tick latency must stay within the fairness bound of
      quiescent (the per-tenant isolation target).

    Attributes:
        tenants: Fleet size (tenant count).
        samples: Ticks streamed per run (named ``samples`` so the
            regression gate's workload-parameter match applies).
        components: Components per tenant.
        metrics: Metrics per component.
        shards: Shard workers backing the fleet.
        warmup: Leading ticks excluded from every latency figure
            (first-tick ring/model allocation is not steady state).
        route_tick_seconds: Post-warmup wall time of each fleet-wide
            tick (route every tenant's batch once) in the quiescent run.
        total_seconds: Wall time of the quiescent run's routed ticks.
        quiescent_tenant_p99_ms: Pooled post-warmup p99 of per-tenant
            tick latency, quiescent run.
        storm_tenant_p99_ms: Same figure over the *non-storming*
            tenants of the storm run.
        storm_incidents: Incidents the storming tenant produced.
        storm_shed: Diagnosis triggers shed by the storm tenant's budget.
        dropped: Ingest batches shed by routing backpressure (both runs).
    """

    tenants: int
    samples: int
    components: int
    metrics: int
    shards: int
    warmup: int
    route_tick_seconds: List[float]
    total_seconds: float
    quiescent_tenant_p99_ms: float
    storm_tenant_p99_ms: float
    storm_incidents: int
    storm_shed: int
    dropped: int

    #: Non-storming tenants' p99 may rise at most this much under storm.
    FAIRNESS_BOUND = 2.0

    #: Absolute rise always tolerated, regardless of the ratio. A
    #: relative bound on a sub-millisecond baseline (tiny smoke-test
    #: fleets) gates scheduler noise, not interference; at benchmark
    #: scale the quiescent p99 is hundreds of ms and the slack is
    #: negligible next to the 2x bound.
    FAIRNESS_SLACK_MS = 5.0

    @property
    def ticks_per_second(self) -> float:
        return len(self.route_tick_seconds) / max(self.total_seconds, 1e-12)

    @property
    def sustained(self) -> bool:
        """1 Hz target: every tenant ticked once per second, p99 bounded."""
        return (
            self.ticks_per_second >= 1.0
            and _percentile_ms(self.route_tick_seconds, 99) < 1000.0
        )

    @property
    def fairness_ratio(self) -> float:
        return self.storm_tenant_p99_ms / max(
            self.quiescent_tenant_p99_ms, 1e-9
        )

    @property
    def fairness_ok(self) -> bool:
        rise = self.storm_tenant_p99_ms - self.quiescent_tenant_p99_ms
        return (
            self.fairness_ratio <= self.FAIRNESS_BOUND
            or rise <= self.FAIRNESS_SLACK_MS
        )

    def summary(self) -> str:
        verdict = "ok" if self.sustained else "NOT SUSTAINED"
        fairness = "ok" if self.fairness_ok else "UNFAIR"
        return "\n".join(
            [
                f"fleet: {self.tenants} tenants x {self.components} "
                f"components x {self.metrics} metrics on {self.shards} "
                f"shards, {self.samples} ticks",
                f"steady state: {self.ticks_per_second:10.2f} fleet ticks/s "
                f"(tick p50 {_percentile_ms(self.route_tick_seconds, 50):.1f} ms, "
                f"p99 {_percentile_ms(self.route_tick_seconds, 99):.1f} ms) "
                f"— 1 Hz target {verdict}",
                f"isolation: tenant tick p99 "
                f"{self.quiescent_tenant_p99_ms:.3f} ms quiescent vs "
                f"{self.storm_tenant_p99_ms:.3f} ms under storm "
                f"({self.fairness_ratio:.2f}x, bound "
                f"{self.FAIRNESS_BOUND:.1f}x) — {fairness}",
                f"storm tenant: {self.storm_incidents} incidents, "
                f"{self.storm_shed} triggers shed by budget; "
                f"routing drops: {self.dropped}",
            ]
        )

    def to_json(self) -> Dict:
        """Machine-readable payload (``repro bench --json``, CI artifact)."""
        return {
            **_json_header("fleet"),
            "tenants": self.tenants,
            "samples": self.samples,
            "components": self.components,
            "metrics": self.metrics,
            "shards": self.shards,
            "steady_state": {
                "ops_per_second": self.ticks_per_second,
                "p50_ms": _percentile_ms(self.route_tick_seconds, 50),
                "p99_ms": _percentile_ms(self.route_tick_seconds, 99),
                "total_seconds": self.total_seconds,
            },
            # Deliberately *not* named p99_ms/ops_per_second: the
            # fairness verdict is the ratio below, gated structurally
            # via ``fairness_ok`` — gating the raw microsecond-scale
            # absolutes against a baseline would only gate noise.
            "storm_fairness": {
                "quiescent_tenant_p99_ms": self.quiescent_tenant_p99_ms,
                "storm_tenant_p99_ms": self.storm_tenant_p99_ms,
                "ratio": self.fairness_ratio,
                "bound": self.FAIRNESS_BOUND,
                "slack_ms": self.FAIRNESS_SLACK_MS,
                "storm_incidents": self.storm_incidents,
                "storm_shed": self.storm_shed,
            },
            "sustained": self.sustained,
            "fairness_ok": self.fairness_ok,
            "dropped": self.dropped,
        }


def _tenant_tick_p99_ms(tenant_stats, *, warmup: int, exclude=()) -> float:
    """Pooled p99 of per-tenant tick latencies, skipping warm-up ticks."""
    pooled: List[float] = []
    for tenant, stats in tenant_stats.items():
        if tenant in exclude:
            continue
        pooled.extend(stats.get("tick_seconds", [])[warmup:])
    return _percentile_ms(pooled, 99)


def run_fleet_benchmark(
    *,
    tenants: int = 1000,
    components: int = 8,
    metrics: int = 1,
    ticks: int = 40,
    warmup: int = 8,
    shards: int = 4,
    seed: int = 7,
) -> FleetReport:
    """Benchmark the multi-tenant fleet layer at scale.

    See :class:`FleetReport` for the two measured runs. The storming
    tenant runs a zero-cooldown, short-grace configuration with a
    flapping SLO signal, and — where fork is available — diagnoses on
    the process executor, exactly the escape hatch a real noisy tenant
    would be given.
    """
    from dataclasses import replace

    from repro.core.engine import fork_available
    from repro.fleet.manifest import FleetFeed, FleetManifest, run_manifest
    from repro.fleet.supervisor import FleetSupervisor
    from repro.monitoring.slo import LatencySLO

    if ticks <= warmup:
        raise ValueError("ticks must exceed warmup")
    manifest = FleetManifest(
        tenants=tuple(f"tenant-{i:04d}" for i in range(tenants)),
        shards=shards,
        components=components,
        metrics=metrics,
        seed=seed,
    ).validate()

    # --- quiescent run: nothing ever violates ---
    quiescent = run_manifest(manifest, ticks)
    route_tick_seconds = quiescent.tick_seconds[warmup:]
    total_seconds = float(sum(route_tick_seconds))
    quiescent_p99 = _tenant_tick_p99_ms(
        quiescent.supervisor.tenant_stats, warmup=warmup
    )
    dropped = quiescent.dropped

    # --- storm run: one tenant flaps, the rest must not notice ---
    storm_tenant = manifest.tenants[0]
    storm_config = FChainConfig(
        look_back_window=30,
        analysis_grace=2,
        service_cooldown=0,
        executor="process" if fork_available() else "thread",
    )
    supervisor = FleetSupervisor(manifest.fleet_config())
    try:
        for spec in manifest.tenant_specs():
            if spec.tenant == storm_tenant:
                spec = replace(
                    spec,
                    config=storm_config,
                    detector=LatencySLO(0.1, sustain=1),
                    jobs=2 if fork_available() else None,
                )
            supervisor.add_tenant(spec)
        feed = FleetFeed(manifest, ticks)
        for t in range(ticks):
            for tenant in manifest.tenants:
                batch = feed.batch(tenant, t)
                if tenant == storm_tenant:
                    # Two ticks violating, two healthy: a rising edge
                    # (= a fresh diagnosis trigger) every four ticks.
                    batch.performance = 0.5 if (t // 2) % 2 == 0 else 0.01
                if not supervisor.ingest(tenant, batch):
                    dropped += 1
    finally:
        supervisor.close()
    storm_p99 = _tenant_tick_p99_ms(
        supervisor.tenant_stats, warmup=warmup, exclude={storm_tenant}
    )
    storm_stats = supervisor.tenant_stats.get(storm_tenant, {})

    return FleetReport(
        tenants=tenants,
        samples=ticks,
        components=components,
        metrics=metrics,
        shards=shards,
        warmup=warmup,
        route_tick_seconds=route_tick_seconds,
        total_seconds=total_seconds,
        quiescent_tenant_p99_ms=quiescent_p99,
        storm_tenant_p99_ms=storm_p99,
        storm_incidents=storm_stats.get("incidents", 0),
        storm_shed=storm_stats.get("shed", 0),
        dropped=dropped,
    )


@dataclass
class HttpIngestReport:
    """Push throughput of the HTTP edge, measured over a real socket.

    A loopback :class:`~repro.edge.server.EdgeServer` fronts a
    violation-free pipeline; a blocking client pushes the synthetic
    store's telemetry in per-chunk JSON requests and the clock stops
    when the pipeline has consumed every tick. The figure therefore
    includes everything a production push pays: HTTP parse, validation,
    coalescing, queue hand-off and the pipeline's ingest itself.

    Attributes:
        samples: Ticks pushed through the edge.
        components: Component count of the synthetic store.
        metrics: Metrics per component.
        pushed_samples: Metric samples pushed in total.
        requests: HTTP push requests issued.
        sheds: Pushes shed with 429 and retried.
        request_seconds: Per-request wall latencies (the 429 retries'
            time is inside the surrounding request's latency).
        total_seconds: First push until the pipeline drained.
    """

    samples: int
    components: int
    metrics: int
    pushed_samples: int
    requests: int
    sheds: int
    request_seconds: List[float]
    total_seconds: float

    @property
    def samples_per_second(self) -> float:
        return self.pushed_samples / max(self.total_seconds, 1e-12)

    def summary(self) -> str:
        return "\n".join(
            [
                f"http ingest: {self.samples} ticks x {self.components} "
                f"components x {self.metrics} metrics over loopback HTTP",
                f"push throughput: {self.samples_per_second:10.0f} "
                f"samples/s end-to-end "
                f"({self.requests} requests, {self.sheds} shed+retried)",
                f"request latency: "
                f"p50 {_percentile_ms(self.request_seconds, 50):.3f} ms, "
                f"p99 {_percentile_ms(self.request_seconds, 99):.3f} ms",
            ]
        )

    def to_json(self) -> Dict:
        """Machine-readable payload (``repro bench --json``, CI artifact)."""
        return {
            **_json_header("http_ingest"),
            "samples": self.samples,
            "components": self.components,
            "metrics": self.metrics,
            "push": {
                "ops_per_second": self.samples_per_second,
                "p50_ms": _percentile_ms(self.request_seconds, 50),
                "p99_ms": _percentile_ms(self.request_seconds, 99),
                "total_seconds": self.total_seconds,
                "requests": self.requests,
                "sheds": self.sheds,
            },
        }


def run_http_ingest_benchmark(
    *,
    samples: int = 10_000,
    components: int = 8,
    metrics: int = 3,
    seed: int = 7,
    chunk_ticks: int = 20,
    queue_depth: int = 256,
    config: Optional[FChainConfig] = None,
) -> HttpIngestReport:
    """Measure end-to-end push throughput against a loopback edge server.

    The SLO never trips (threshold far above the signal), so the figure
    is the edge's pure ingest path: socket → parse → validate →
    coalesce → bounded queue → pipeline tick. 429 sheds are honoured
    with retries, exactly like a well-behaved collector.
    """
    from repro.edge.client import EdgeClient
    from repro.edge.server import EdgeConfig, EdgeServer
    from repro.monitoring.slo import LatencySLO
    from repro.service.sources import StoreReplayFeed

    config = (config or FChainConfig()).validate()
    store = synthetic_store(
        samples=samples, components=components, metrics=metrics, seed=seed
    )
    performance = {t: 0.010 for t in range(store.start, store.end)}
    batches = list(StoreReplayFeed(store, performance=performance))

    server = EdgeServer(EdgeConfig(port=0, queue_depth=queue_depth))
    server.attach_pipeline(
        LatencySLO(1e6, sustain=10), fchain_config=config, seed=seed
    )
    server.start()
    client = EdgeClient("127.0.0.1", server.port)
    request_seconds: List[float] = []
    pushed_samples = 0
    sheds_before = 0
    try:
        started = time.perf_counter()
        for offset in range(0, len(batches), chunk_ticks):
            chunk = batches[offset : offset + chunk_ticks]
            payload = [
                {
                    "component": s.component,
                    "metric": s.metric.value,
                    "time": s.time,
                    "value": s.value,
                }
                for batch in chunk
                for s in batch.samples
            ]
            points = [
                {"time": batch.time, "value": batch.performance}
                for batch in chunk
                if batch.performance is not None
            ]
            request_started = time.perf_counter()
            response = client.push_json_retrying(
                payload, performance=points
            )
            request_seconds.append(time.perf_counter() - request_started)
            if response.status != 202:
                raise ReproError(
                    f"push failed with {response.status}: "
                    f"{response.body[:200]!r}"
                )
            pushed_samples += len(payload)
        client.wait_drained(len(batches), timeout=600.0)
        total_seconds = time.perf_counter() - started
        sheds_before = server.shed_batches
    finally:
        client.close()
        server.close()
    return HttpIngestReport(
        samples=len(batches),
        components=components,
        metrics=metrics,
        pushed_samples=pushed_samples,
        requests=len(request_seconds),
        sheds=sheds_before,
        request_seconds=request_seconds,
        total_seconds=total_seconds,
    )


@dataclass
class TopologyReport:
    """Topology-guided vs full-fan-out diagnosis on a generated mesh.

    One mesh run backs both measurements: a
    :class:`~repro.apps.mesh.MeshApplication` warms up, a capacity
    bottleneck is injected on the canonical layer-1 target, and an
    :class:`~repro.core.topology.OnlineTopology` learns the dependency
    graph from the live per-edge traffic. The same violation is then
    diagnosed ``repeats`` times by each engine:

    * **full** — every service analysed (``topology_mode="full"``, the
      paper's fan-out);
    * **scoped** — only the learned top-K neighborhood of the SLO
      origin (``topology_mode="neighborhood"``).

    The acceptance bar is *correctness first*: the scoped diagnosis
    must analyse a strict subset of the services, name exactly the
    same culprits as full fan-out without escalating, and land the
    :attr:`SPEEDUP_TARGET` latency win.

    Attributes:
        components: Mesh size in services (workload parameter).
        samples: Simulated ticks driven before diagnosis.
        metrics: Metrics monitored per service.
        repeats: Diagnoses timed per engine.
        top_k: Neighborhood size of the scoped engine.
        violation_tick: The diagnosed SLO violation ``t_v``.
        full_seconds: Wall time of each full-fan-out diagnosis.
        scoped_seconds: Wall time of each scoped diagnosis.
        full_faulty: Culprits named by full fan-out.
        scoped_faulty: Culprits named by the scoped engine.
        analyzed: Services the scoped engine examined.
        escalated: Whether the scoped engine widened to full fan-out.
        learned_edges: Edges in the learned topology at diagnosis time.
    """

    components: int
    samples: int
    metrics: int
    repeats: int
    top_k: int
    violation_tick: int
    full_seconds: List[float]
    scoped_seconds: List[float]
    full_faulty: FrozenSet[ComponentId]
    scoped_faulty: FrozenSet[ComponentId]
    analyzed: int
    escalated: bool
    learned_edges: int

    #: Scoped diagnosis must be at least this many times faster than
    #: full fan-out (the PR's headline acceptance target).
    SPEEDUP_TARGET = 2.0

    @property
    def speedup(self) -> float:
        full = float(np.mean(self.full_seconds)) if self.full_seconds else 0.0
        scoped = (
            float(np.mean(self.scoped_seconds)) if self.scoped_seconds else 0.0
        )
        return full / max(scoped, 1e-12)

    @property
    def subset_ok(self) -> bool:
        """Scoped analysis covered a strict subset without escalating."""
        return 0 < self.analyzed < self.components and not self.escalated

    @property
    def culprit_match(self) -> bool:
        """Both engines named the same (non-empty) culprit set."""
        return bool(self.full_faulty) and (
            self.scoped_faulty == self.full_faulty
        )

    @property
    def speedup_ok(self) -> bool:
        return self.speedup >= self.SPEEDUP_TARGET

    @property
    def gate_ok(self) -> bool:
        return self.subset_ok and self.culprit_match and self.speedup_ok

    def summary(self) -> str:
        subset = "ok" if self.subset_ok else "NOT A STRICT SUBSET"
        match = "ok" if self.culprit_match else "CULPRIT MISMATCH"
        win = "ok" if self.speedup_ok else "BELOW TARGET"
        return "\n".join(
            [
                f"topology: {self.components} services, violation at "
                f"t={self.violation_tick}s, {self.learned_edges} learned "
                f"edges, top-{self.top_k} neighborhood",
                f"full fan-out: mean "
                f"{float(np.mean(self.full_seconds)) * 1e3:10.1f} ms "
                f"(p99 {_percentile_ms(self.full_seconds, 99):.1f} ms), "
                f"faulty={sorted(self.full_faulty)}",
                f"scoped:       mean "
                f"{float(np.mean(self.scoped_seconds)) * 1e3:10.1f} ms "
                f"(p99 {_percentile_ms(self.scoped_seconds, 99):.1f} ms), "
                f"faulty={sorted(self.scoped_faulty)}, analysed "
                f"{self.analyzed}/{self.components}, "
                f"escalated={self.escalated} — {subset}, {match}",
                f"speedup: {self.speedup:.1f}x (target "
                f">= {self.SPEEDUP_TARGET:.1f}x) — {win}",
            ]
        )

    def to_json(self) -> Dict:
        """Machine-readable payload (``repro bench --json``, CI artifact)."""
        return {
            **_json_header("topology"),
            "samples": self.samples,
            "components": self.components,
            "metrics": self.metrics,
            "repeats": self.repeats,
            "top_k": self.top_k,
            "violation_tick": self.violation_tick,
            "learned_edges": self.learned_edges,
            "full_diagnosis": {
                "mean_ms": float(np.mean(self.full_seconds)) * 1e3,
                "p99_ms": _percentile_ms(self.full_seconds, 99),
                "faulty": sorted(self.full_faulty),
            },
            "scoped_diagnosis": {
                "mean_ms": float(np.mean(self.scoped_seconds)) * 1e3,
                "p99_ms": _percentile_ms(self.scoped_seconds, 99),
                "faulty": sorted(self.scoped_faulty),
                "analyzed": self.analyzed,
                "escalated": self.escalated,
            },
            # The speedup rides the gate's throughput semantics
            # (higher is better): at the default 0.5 ops tolerance a
            # halving of the committed topology win fails `--check`,
            # independent of the structural >= 2x bar in `gate_ok`.
            "speedup": {"ops_per_second": self.speedup},
            "subset_ok": self.subset_ok,
            "culprit_match": self.culprit_match,
            "speedup_ok": self.speedup_ok,
        }


def run_topology_benchmark(
    *,
    services: int = 100,
    ticks: int = 700,
    fault_at: int = 600,
    repeats: int = 3,
    top_k: int = 15,
    halflife: float = 300.0,
    seed: int = 7,
) -> TopologyReport:
    """Measure topology-guided vs full-fan-out diagnosis on one mesh.

    Drives a generated :class:`~repro.apps.mesh.MeshApplication` tick
    by tick (feeding the per-edge traffic into an
    :class:`~repro.core.topology.OnlineTopology`), injects a capacity
    bottleneck on the canonical layer-1 target, and times both engines
    against the resulting SLO violation.

    Raises:
        ReproError: When the mesh run produces no SLO violation — the
            benchmark would silently measure nothing.
    """
    from repro.apps.mesh import MeshApplication
    from repro.core.fchain import FChain
    from repro.core.topology import OnlineTopology
    from repro.faults.library import BottleneckFault

    # NB: the generated trace depends on the *total* duration, so the
    # trace length is pinned relative to the driven ticks — changing it
    # changes the workload noise and thereby the measured violation.
    app = MeshApplication(seed=seed, services=services, duration=ticks + 500)
    target = app.default_fault_target()
    app.inject(BottleneckFault(fault_at, target, cap=app.bottleneck_cap(target)))
    topology = OnlineTopology(halflife=halflife)
    for t in range(ticks):
        app.tick(t)
        app.time += 1
        topology.observe_traffic(t, app.edge_traffic())
    violation = app.slo.first_violation_after(fault_at)
    if violation is None:
        raise ReproError(
            f"mesh run (seed {seed}, {services} services) produced no SLO "
            f"violation after t={fault_at} — pick a seed that does"
        )

    full_config = FChainConfig(topology_mode="full")
    scoped_config = FChainConfig(
        topology_mode="neighborhood", topology_top_k=top_k
    )

    full_seconds: List[float] = []
    full_faulty: FrozenSet[ComponentId] = frozenset()
    for _ in range(repeats):
        fchain = FChain(full_config, seed=seed)
        started = time.perf_counter()
        diagnosis = fchain.localize(app.store, violation_time=violation)
        full_seconds.append(time.perf_counter() - started)
        full_faulty = diagnosis.faulty

    scoped_seconds: List[float] = []
    scoped_faulty: FrozenSet[ComponentId] = frozenset()
    analyzed = 0
    escalated = False
    for _ in range(repeats):
        fchain = FChain(scoped_config, seed=seed, topology=topology)
        started = time.perf_counter()
        diagnosis = fchain.localize(
            app.store, violation_time=violation, origin=app.gateway
        )
        scoped_seconds.append(time.perf_counter() - started)
        scoped_faulty = diagnosis.faulty
        analyzed = len(diagnosis.analyzed or ())
        escalated = diagnosis.escalated

    sample_component = app.gateway
    return TopologyReport(
        components=services,
        samples=ticks,
        metrics=len(app.store.metrics_for(sample_component)),
        repeats=repeats,
        top_k=top_k,
        violation_tick=violation,
        full_seconds=full_seconds,
        scoped_seconds=scoped_seconds,
        full_faulty=full_faulty,
        scoped_faulty=scoped_faulty,
        analyzed=analyzed,
        escalated=escalated,
        learned_edges=topology.graph().number_of_edges(),
    )


def write_benchmark_json(path, report) -> None:
    """Write one report's ``to_json()`` payload to ``path``."""
    with open(path, "w") as handle:
        json.dump(report.to_json(), handle, indent=2)
        handle.write("\n")
