"""Fluid queueing model of one application component.

Each component runs inside one guest VM (FChain's unit of diagnosis). Work
is modelled as a fluid: fractional *items* (requests, tuples, blocks) arrive
in an input queue with finite capacity, are processed at an effective rate
derived from the resources the VM is granted, and are emitted downstream.
Finite buffers produce the *back-pressure* effect that is central to the
paper's argument against purely dependency-based localization: a slow
component fills its buffer and forces its upstream neighbours to stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import SimulationError


@dataclass
class ComponentSpec:
    """Static description of a component's behaviour and resource profile.

    Attributes:
        name: Component id (also the guest VM name).
        capacity: Items/s the component completes when its VM receives its
            full CPU allocation.
        service_time: Nominal per-item processing time in seconds at full
            speed; the latency floor used in sojourn estimates.
        buffer_limit: Maximum queued items; arrivals beyond it are refused
            (upstream back-pressure) or dropped at the application entry.
        kb_in_per_item: Network bytes received per input item (KB).
        kb_out_per_item: Network bytes sent per emitted item (KB).
        disk_read_kb_per_item: Disk read volume per processed item (KB).
        disk_write_kb_per_item: Disk write volume per processed item (KB).
        base_memory_mb: Resident memory with an empty queue.
        memory_per_item_mb: Additional working memory per queued item.
        disk_bound: Whether the processing rate scales with the VM's disk
            bandwidth share in addition to CPU (true for Hadoop map tasks).
        output_amplification: Items emitted per item processed.
    """

    name: str
    capacity: float
    service_time: float = 0.005
    buffer_limit: float = 400.0
    kb_in_per_item: float = 4.0
    kb_out_per_item: float = 4.0
    disk_read_kb_per_item: float = 0.0
    disk_write_kb_per_item: float = 0.0
    base_memory_mb: float = 300.0
    memory_per_item_mb: float = 0.2
    disk_bound: bool = False
    output_amplification: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulationError(f"{self.name}: capacity must be positive")
        if self.buffer_limit <= 0:
            raise SimulationError(f"{self.name}: buffer_limit must be positive")


class QueueComponent:
    """Runtime state of one component.

    The owning application wires components together with
    :meth:`connect` and drives them once per tick via :meth:`process`.
    """

    def __init__(self, spec: ComponentSpec) -> None:
        self.spec = spec
        self.queue: float = 0.0
        self.backlog: float = 0.0
        #: Downstream edges as (component, routing weight) pairs. Weights are
        #: renormalized at processing time so faults may rebalance them.
        self.outputs: List[Tuple["QueueComponent", float]] = []
        # --- fault hooks -------------------------------------------------
        #: Multiplier on the effective service rate (< 1 slows the
        #: component; used by application-level bugs like infinite loops).
        self.speed_multiplier: float = 1.0
        #: Memory leaked by an injected bug, in MB (grows over time).
        self.leaked_mb: float = 0.0
        #: Extra per-tick routing weight overrides {downstream name: weight}.
        self.weight_overrides: Dict[str, float] = {}
        # --- per-tick observations (consumed by metric synthesis) --------
        self.arrived: float = 0.0
        self.processed: float = 0.0
        self.emitted: float = 0.0
        self.dropped: float = 0.0
        self.blocked: bool = False
        self.effective_rate: float = 0.0
        self.cpu_share_granted: float = 1.0
        self.disk_share_granted: float = 1.0
        self.memory_penalty: float = 1.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    def connect(self, downstream: "QueueComponent", weight: float = 1.0) -> None:
        """Route a fraction of this component's output to ``downstream``."""
        if weight <= 0:
            raise SimulationError("routing weight must be positive")
        self.outputs.append((downstream, weight))

    def routing(self) -> List[Tuple["QueueComponent", float]]:
        """Current normalized routing table, honouring fault overrides."""
        if not self.outputs:
            return []
        weights = [
            self.weight_overrides.get(comp.name, weight)
            for comp, weight in self.outputs
        ]
        total = sum(weights)
        if total <= 0:
            return [(comp, 0.0) for comp, _ in self.outputs]
        return [
            (comp, w / total) for (comp, _), w in zip(self.outputs, weights)
        ]

    # ------------------------------------------------------------------
    # Per-tick dynamics
    # ------------------------------------------------------------------
    def begin_tick(self) -> None:
        """Reset per-tick observation fields."""
        self.arrived = 0.0
        self.processed = 0.0
        self.emitted = 0.0
        self.dropped = 0.0
        self.blocked = False

    def enqueue(self, items: float, *, drop_overflow: bool = True) -> float:
        """Add arrivals to the input queue.

        Args:
            items: Item count to enqueue (fluid, may be fractional).
            drop_overflow: Drop items beyond the buffer limit (entry
                components) instead of raising.

        Returns:
            The number of items actually accepted.
        """
        accepted = min(items, self.free_space())
        self.queue += accepted
        self.arrived += accepted
        overflow = items - accepted
        if overflow > 1e-12:
            if not drop_overflow:
                raise SimulationError(f"{self.name}: buffer overflow")
            self.dropped += overflow
        return accepted

    def free_space(self) -> float:
        """Remaining congestion headroom for back-pressure checks.

        Measured against the *backlog* (work still unserved after a full
        service tick) rather than the raw queue, which between ticks also
        holds the pipeline's ordinary one-tick input batch. The buffer
        limit therefore expresses how much congestion a component absorbs
        before stalling its upstream neighbours.
        """
        return max(0.0, self.spec.buffer_limit - self.backlog)

    def desired_cpu_demand(self) -> float:
        """Fraction of the VM's full allocation this component wants now.

        Used by the host scheduler to apportion CPU before processing.
        """
        desired_items = min(self.queue, self.spec.capacity)
        return min(1.0, desired_items / self.spec.capacity)

    def process(
        self,
        dt: float = 1.0,
        *,
        cpu_share: float = 1.0,
        disk_share: float = 1.0,
        memory_penalty: float = 1.0,
    ) -> float:
        """Process queued items for one tick and emit downstream.

        The effective rate is the nominal capacity scaled by the CPU share
        the VM scheduler granted, the disk share for disk-bound components,
        the memory-pressure penalty (thrashing), and any fault-injected
        speed multiplier. Emission is limited by downstream buffer space;
        when space runs out the component stalls (back-pressure) and the
        unprocessed work remains queued.

        Returns:
            The number of items processed this tick.
        """
        self.cpu_share_granted = cpu_share
        self.disk_share_granted = disk_share
        self.memory_penalty = memory_penalty
        rate = (
            self.spec.capacity
            * max(0.0, cpu_share)
            * max(0.0, memory_penalty)
            * max(0.0, self.speed_multiplier)
        )
        if self.spec.disk_bound:
            rate *= max(0.0, disk_share)
        self.effective_rate = rate

        processable = min(self.queue, rate * dt)
        routing = self.routing()
        if routing:
            # Honour downstream buffer space: the component cannot emit more
            # than its neighbours can absorb, which throttles processing.
            amplification = self.spec.output_amplification
            limit = processable
            for downstream, fraction in routing:
                if fraction <= 0:
                    continue
                per_item_out = fraction * amplification
                if per_item_out > 0:
                    limit = min(limit, downstream.free_space() / per_item_out)
            if limit < processable - 1e-9:
                self.blocked = True
            processable = max(0.0, limit)

        self.queue -= processable
        self.processed = processable
        # Backlog is the work left over after a full tick of service —
        # the true congestion signal. Deliveries from upstream components
        # later in the same tick refill ``queue`` but are not backlog:
        # they simply have not had their service tick yet.
        self.backlog = self.queue
        if routing:
            out_items = processable * self.spec.output_amplification
            for downstream, fraction in routing:
                if fraction > 0:
                    downstream.enqueue(out_items * fraction)
            self.emitted = out_items
        return processable

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def memory_mb(self) -> float:
        """Current resident memory: base + queue working set + leaks."""
        return (
            self.spec.base_memory_mb
            + self.queue * self.spec.memory_per_item_mb
            + self.leaked_mb
        )

    def sojourn_time(self) -> float:
        """Estimated time a newly arriving item spends in this component.

        Uses the post-service backlog (congestion) rather than the raw
        queue, which between ticks also holds the ordinary one-tick input
        batch of the pipeline.
        """
        if self.effective_rate <= 0:
            return float("inf")
        slowdown = self.spec.capacity / self.effective_rate
        return self.backlog / self.effective_rate + self.spec.service_time * slowdown

    def __repr__(self) -> str:
        return f"QueueComponent({self.name!r}, queue={self.queue:.1f})"
