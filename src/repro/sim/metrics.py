"""Synthesis of the six per-VM system metrics from component state.

This is the "guest OS / hypervisor view" of the simulation: at every tick
the Domain-0 monitor asks the synthesizer for the six metric values of one
VM, derived from what its component actually did that tick plus realistic
measurement texture — sensor noise, benign transient spikes (the random
peaks visible in the paper's Fig. 3), and slow sawtooth patterns such as
garbage-collection cycles. The benign texture recurs throughout a run, so
FChain's online prediction model can learn it; fault manifestations push
metrics into regimes the model has never seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cloud.host import Host
from repro.cloud.vm import VirtualMachine
from repro.common.rng import spawn_rng
from repro.common.types import Metric
from repro.sim.component import QueueComponent


@dataclass
class NoiseProfile:
    """Measurement texture of one metric.

    Attributes:
        relative_sigma: Std-dev of multiplicative gaussian noise.
        spike_prob: Per-tick probability of starting a benign spike.
        spike_scale: Maximum multiplicative amplitude of a spike.
        floor: Additive noise floor so idle metrics are not exactly zero.
    """

    relative_sigma: float = 0.03
    spike_prob: float = 0.008
    spike_scale: float = 2.0
    floor: float = 0.5


#: Default texture per metric. Disk metrics are intentionally the noisiest
#: (cf. the Hadoop DiskWrite series in Fig. 3); memory is the smoothest.
DEFAULT_PROFILES: Dict[Metric, NoiseProfile] = {
    Metric.CPU_USAGE: NoiseProfile(0.04, 0.010, 1.6, 0.8),
    Metric.MEMORY_USAGE: NoiseProfile(0.004, 0.002, 1.05, 0.0),
    Metric.NETWORK_IN: NoiseProfile(0.08, 0.010, 2.0, 1.0),
    Metric.NETWORK_OUT: NoiseProfile(0.08, 0.010, 2.0, 1.0),
    Metric.DISK_READ: NoiseProfile(0.15, 0.015, 2.5, 0.5),
    Metric.DISK_WRITE: NoiseProfile(0.20, 0.020, 3.0, 0.5),
}


class MetricSynthesizer:
    """Produces the six metric samples of one VM each tick.

    Args:
        component_name: Used to derive an independent noise stream.
        seed: Base seed label so different runs differ deterministically.
        profiles: Optional per-metric noise overrides.
        gc_period: Period (ticks) of the memory sawtooth; 0 disables it.
    """

    def __init__(
        self,
        component_name: str,
        seed: object = 0,
        profiles: Dict[Metric, NoiseProfile] = None,
        gc_period: int = 150,
    ) -> None:
        self._rng = spawn_rng("metrics", component_name, seed)
        self.profiles = dict(DEFAULT_PROFILES)
        if profiles:
            self.profiles.update(profiles)
        self.gc_period = gc_period
        # Remaining spike ticks and amplitude, per metric.
        self._spike_left: Dict[Metric, int] = {m: 0 for m in self.profiles}
        self._spike_amp: Dict[Metric, float] = {m: 1.0 for m in self.profiles}
        self._gc_phase = int(self._rng.integers(0, max(1, gc_period)))

    # ------------------------------------------------------------------
    def _textured(self, metric: Metric, base: float) -> float:
        """Apply noise, spikes and the floor to a raw metric value."""
        prof = self.profiles[metric]
        if self._spike_left[metric] > 0:
            self._spike_left[metric] -= 1
        elif self._rng.random() < prof.spike_prob:
            self._spike_left[metric] = int(self._rng.integers(1, 4))
            self._spike_amp[metric] = 1.0 + self._rng.random() * (
                prof.spike_scale - 1.0
            )
        amp = self._spike_amp[metric] if self._spike_left[metric] > 0 else 1.0
        noisy = base * amp * (1.0 + self._rng.normal(0.0, prof.relative_sigma))
        noisy += self._rng.random() * prof.floor
        return max(0.0, noisy)

    def _gc_sawtooth(self, t: int) -> float:
        """Slow repeating memory sawtooth (MB), a learnable benign pattern."""
        if self.gc_period <= 0:
            return 0.0
        phase = (t + self._gc_phase) % self.gc_period
        return 12.0 * phase / self.gc_period

    # ------------------------------------------------------------------
    def sample(
        self, t: int, component: QueueComponent, vm: VirtualMachine, host: Host
    ) -> Dict[Metric, float]:
        """Compute the six metric values for tick ``t``.

        Returns:
            Metric values: CPU in percent of the VM allocation, memory in
            MB, network and disk rates in KB/s.
        """
        spec = component.spec
        # CPU: cores the component actually burned plus any in-VM hog load
        # the host grant covered, as a percentage of the VM's current size.
        # A fault-injected speed multiplier models software inefficiency
        # (retry storms, broken lookups, infinite loops): the component
        # burns the cycles without the throughput, so the *demand* side of
        # the division shrinks accordingly.
        effective_capacity = spec.capacity * max(component.speed_multiplier, 1e-3)
        comp_cores = (
            component.processed / effective_capacity * vm.vcpus_baseline
        )
        hog_cores = vm.hog_cpu_cores()
        cpu_pct = 100.0 * min(vm.vcpus, comp_cores + hog_cores) / vm.vcpus

        memory = (
            component.memory_mb() + vm.extra_memory_mb + self._gc_sawtooth(t)
        )
        swap = vm.swap_rate_kbps(memory)

        net_in = component.arrived * spec.kb_in_per_item + vm.extra_net_in_kbps
        net_out = component.emitted * spec.kb_out_per_item
        disk_read = (
            component.processed * spec.disk_read_kb_per_item
            + 0.5 * swap
            + 0.5 * vm.extra_disk_kbps
        )
        disk_write = (
            component.processed * spec.disk_write_kb_per_item
            + 0.5 * swap
            + 0.5 * vm.extra_disk_kbps
        )

        return {
            Metric.CPU_USAGE: min(
                100.0, self._textured(Metric.CPU_USAGE, cpu_pct)
            ),
            Metric.MEMORY_USAGE: min(
                vm.memory_limit_mb, self._textured(Metric.MEMORY_USAGE, memory)
            ),
            Metric.NETWORK_IN: self._textured(Metric.NETWORK_IN, net_in),
            Metric.NETWORK_OUT: self._textured(Metric.NETWORK_OUT, net_out),
            Metric.DISK_READ: self._textured(Metric.DISK_READ, disk_read),
            Metric.DISK_WRITE: self._textured(Metric.DISK_WRITE, disk_write),
        }
