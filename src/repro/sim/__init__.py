"""Discrete-time simulation substrate.

The paper evaluates FChain on a Xen-based cloud testbed. This package is the
laptop-scale stand-in: a 1-second-tick queueing simulation of distributed
applications whose components run inside guest VMs on shared hosts. It emits
exactly the signals FChain consumes — the six per-VM system metrics at 1 Hz —
with realistic saturation, propagation and back-pressure behaviour.
"""

from repro.sim.component import ComponentSpec, QueueComponent
from repro.sim.engine import SimulationEngine, Tickable
from repro.sim.metrics import MetricSynthesizer
from repro.sim.queueing import mm1_sojourn, utilization

__all__ = [
    "ComponentSpec",
    "MetricSynthesizer",
    "QueueComponent",
    "SimulationEngine",
    "Tickable",
    "mm1_sojourn",
    "utilization",
]
