"""Small queueing-theory helpers used by the component model.

The simulation advances in 1-second ticks with fluid (fractional) items, so
per-request latency is estimated analytically from the queue state rather
than by tracking individual requests. These helpers keep that math in one
place and well tested.
"""

from __future__ import annotations


def utilization(arrival_rate: float, service_rate: float) -> float:
    """Offered utilization ``rho = lambda / mu``, clamped to ``[0, inf)``.

    Args:
        arrival_rate: Items arriving per second.
        service_rate: Items the server can complete per second.

    Returns:
        The utilization. A saturated or stopped server yields ``inf``.
    """
    if arrival_rate < 0 or service_rate < 0:
        raise ValueError("rates must be non-negative")
    if service_rate == 0:
        return float("inf") if arrival_rate > 0 else 0.0
    return arrival_rate / service_rate


def mm1_sojourn(arrival_rate: float, service_rate: float) -> float:
    """Mean M/M/1 sojourn time ``1 / (mu - lambda)`` in seconds.

    Saturated servers (``lambda >= mu``) return ``inf``; callers combine this
    with the explicit backlog term instead.
    """
    if service_rate <= arrival_rate:
        return float("inf")
    return 1.0 / (service_rate - arrival_rate)


def queue_sojourn(
    backlog: float, service_rate: float, service_time: float
) -> float:
    """Estimated sojourn for a new item given the current backlog.

    The item waits for ``backlog`` items to drain at ``service_rate`` and is
    then served, taking ``service_time`` itself. This is the latency formula
    the applications use to produce their SLO signal (response time or
    per-tuple processing time).

    Args:
        backlog: Items currently queued.
        service_rate: Current effective throughput (items/s).
        service_time: Nominal per-item processing time (seconds) at the
            current effective speed.

    Returns:
        Sojourn time in seconds (``inf`` when the server is fully stopped).
    """
    if backlog < 0:
        raise ValueError("backlog must be non-negative")
    if service_rate <= 0:
        return float("inf")
    return backlog / service_rate + service_time
