"""The discrete-time simulation engine.

A deliberately thin 1-second-tick loop: applications, fault injectors and
monitors register as tickables and are advanced in registration order. The
engine supports *forking* — a deep copy of the entire simulation state —
which is what FChain's online pinpointing validation uses to try a resource
adjustment and observe its effect without disturbing the primary run
(standing in for the paper's live resource scaling on the testbed).
"""

from __future__ import annotations

import copy
from typing import Callable, List, Protocol, runtime_checkable

from repro.common.errors import SimulationError


@runtime_checkable
class Tickable(Protocol):
    """Anything the engine can advance one second at a time."""

    def tick(self, t: int) -> None:
        """Advance to simulated second ``t``."""
        ...


class SimulationEngine:
    """Advances registered tickables one simulated second per step."""

    def __init__(self, start: int = 0) -> None:
        self.time = start
        self._tickables: List[Tickable] = []

    def add(self, tickable: Tickable) -> None:
        """Register a tickable; order of registration is execution order."""
        if not isinstance(tickable, Tickable):
            raise SimulationError(f"{tickable!r} does not implement tick()")
        self._tickables.append(tickable)

    def step(self) -> int:
        """Advance the whole simulation by one second.

        Returns:
            The tick that was just executed.
        """
        t = self.time
        for tickable in self._tickables:
            tickable.tick(t)
        self.time += 1
        return t

    def run(self, seconds: int) -> None:
        """Advance ``seconds`` ticks."""
        if seconds < 0:
            raise SimulationError("cannot run a negative duration")
        for _ in range(seconds):
            self.step()

    def run_until(
        self, predicate: Callable[[int], bool], max_seconds: int
    ) -> int:
        """Advance until ``predicate(t)`` is true after a step, or time out.

        Args:
            predicate: Checked after every step with the executed tick.
            max_seconds: Upper bound on the number of steps.

        Returns:
            The tick at which the predicate first held, or ``-1`` on
            timeout.
        """
        for _ in range(max_seconds):
            t = self.step()
            if predicate(t):
                return t
        return -1

    def fork(self) -> "SimulationEngine":
        """Deep-copy the entire simulation state.

        The fork shares nothing with the original: queue states, RNG
        streams, fault state and recorded metrics all diverge independently
        from this point on. Used by online pinpointing validation.
        """
        return copy.deepcopy(self)
