"""Hand-rolled HTTP/1.1 primitives on asyncio streams.

The edge server deliberately does not pull in an HTTP framework — the
runtime dependency set stays numpy/scipy/networkx — and it does not use
``http.server`` either (thread-per-request blocking I/O is exactly the
wrong shape for an ingest endpoint that must shed instead of stall).
What it needs from HTTP is small and fixed:

* request line + headers + ``Content-Length`` bodies (no chunked
  transfer encoding, no trailers, no upgrades);
* keep-alive connections (``Connection: close`` honoured);
* byte-bounded reads everywhere, so a slow or malicious client can
  never buffer unbounded data into the process.

:class:`Router` maps ``METHOD /path/{param}`` templates to handlers.
Handlers are plain callables ``handler(request, **params) ->
HttpResponse`` and must not block: anything slow or stateful is handed
to the pipeline thread through a bounded queue (see
:mod:`repro.edge.server`), which is what keeps the event loop — and
therefore ``/healthz`` — responsive under ingest floods.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 16 * 1024

#: Default upper bound on request bodies (overridable per server).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A request the server refuses at the HTTP layer.

    Attributes:
        status: The response status the refusal maps to.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request.

    Attributes:
        method: Upper-cased request method.
        path: Decoded path component of the request target.
        query: Query parameters (first value wins for repeats).
        headers: Header map with lower-cased names.
        body: Raw request body bytes (empty when none was sent).
    """

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def content_type(self) -> str:
        """Media type of the body, without parameters, lower-cased."""
        return self.headers.get("content-type", "").split(";")[0].strip().lower()

    def json(self):
        """Decode the body as JSON, raising :class:`ProtocolError` on 400s."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"invalid JSON body: {error}") from error

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class HttpResponse:
    """One response to serialize back onto the stream."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self, *, keep_alive: bool = True) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + self.body


def json_response(payload, status: int = 200, **headers) -> HttpResponse:
    """A JSON-encoded response (the edge API's lingua franca)."""
    body = (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
    return HttpResponse(status=status, body=body, headers=dict(headers))


def text_response(
    text: str, status: int = 200, content_type: str = "text/plain; version=0.0.4"
) -> HttpResponse:
    return HttpResponse(
        status=status, body=text.encode("utf-8"), content_type=content_type
    )


def error_response(status: int, message: str, **headers) -> HttpResponse:
    return json_response({"error": message, "status": status}, status, **headers)


_REQUEST_LINE_RE = re.compile(r"^([A-Z]+) (\S+) HTTP/1\.[01]$")
_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = DEFAULT_MAX_BODY_BYTES
) -> Optional[HttpRequest]:
    """Read and parse one request off the stream.

    Returns None on a cleanly closed connection (EOF before any bytes).

    Raises:
        ProtocolError: On malformed requests, oversized headers (431 is
            folded into 400) or bodies beyond ``max_body`` (413).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(400, "truncated request head") from error
    except asyncio.LimitOverrunError as error:
        raise ProtocolError(400, "request head too large") from error
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(400, "request head too large")

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise ProtocolError(400, "undecodable request head") from error
    lines = text.split("\r\n")
    match = _REQUEST_LINE_RE.match(lines[0])
    if match is None:
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target = match.group(1), match.group(2)

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = {
        key: values[0]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as error:
            raise ProtocolError(400, "bad Content-Length") from error
        if length < 0:
            raise ProtocolError(400, "bad Content-Length")
        if length > max_body:
            raise ProtocolError(
                413, f"body of {length} bytes exceeds the {max_body} byte cap"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise ProtocolError(400, "truncated request body") from error
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "chunked transfer encoding is not supported")

    return HttpRequest(
        method=method,
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


class Route:
    """One ``METHOD /template`` registration."""

    def __init__(self, method: str, template: str, handler: Callable) -> None:
        self.method = method.upper()
        self.template = template
        self.handler = handler
        pattern = ""
        for part in re.split(r"(\{[a-zA-Z_][a-zA-Z0-9_]*\})", template):
            if _PARAM_RE.fullmatch(part):
                pattern += f"(?P<{part[1:-1]}>[^/]+)"
            else:
                pattern += re.escape(part)
        self.pattern = re.compile(f"^{pattern}$")

    def match(self, path: str) -> Optional[Dict[str, str]]:
        found = self.pattern.match(path)
        return found.groupdict() if found else None


class Router:
    """Match ``(method, path)`` to a handler and its path parameters."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(self, method: str, template: str, handler: Callable) -> None:
        self._routes.append(Route(method, template, handler))

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Optional[Route], Dict[str, str], List[str]]:
        """Returns ``(route, params, methods_allowed_on_path)``."""
        allowed: List[str] = []
        for route in self._routes:
            params = route.match(path)
            if params is None:
                continue
            if route.method == method.upper():
                return route, params, allowed
            allowed.append(route.method)
        return None, {}, allowed

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Resolve and invoke the handler, mapping errors to responses."""
        route, params, allowed = self.resolve(request.method, request.path)
        if route is None:
            if allowed:
                return error_response(
                    405,
                    f"{request.method} not allowed on {request.path}",
                    Allow=", ".join(sorted(set(allowed))),
                )
            return error_response(404, f"no route for {request.path}")
        try:
            return route.handler(request, **params)
        except ProtocolError as error:
            return error_response(error.status, str(error))


__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "HttpRequest",
    "HttpResponse",
    "MAX_HEADER_BYTES",
    "ProtocolError",
    "Route",
    "Router",
    "error_response",
    "json_response",
    "read_request",
    "text_response",
]
