"""Decoding and validation of ``POST /v1/ingest`` payloads.

External collectors push telemetry in one of two wire formats:

* **JSON** (``application/json``) — an object with a ``samples`` list
  (each ``{"component", "metric", "time", "value"}``), an optional
  ``performance`` list of ``{"time", "value"}`` SLO-signal points, and
  an optional ``tenant`` string for fleet routing. A bare top-level
  list is accepted as shorthand for ``{"samples": [...]}``.
* **CSV** (``text/csv``) — the long metric format the rest of the repo
  speaks (``time,component,metric,value`` with a header row). Rows
  whose component is :data:`PERFORMANCE_COMPONENT` carry the
  application performance signal instead of a metric sample.

Either format is *coalesced* into per-tick
:class:`~repro.service.sources.TickBatch`\\ es, sorted by time — the
exact objects an in-process feed would have produced, which is what
makes an HTTP replay of a recorded trace bit-identical to the
in-process ``repro replay`` of the same trace. Validation is strict at
the boundary (unknown fields, non-numeric times/values and NaN/inf
*timestamps* are 400s); *value* weirdness like NaN readings is let
through on purpose, because downstream the tolerant
:class:`~repro.monitoring.quality.DataQualityPolicy` is the component
that decides how defective telemetry is handled.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.types import Metric, MetricSample
from repro.edge.http import HttpRequest, ProtocolError
from repro.service.sources import TickBatch

#: CSV component name whose rows carry the SLO performance signal.
PERFORMANCE_COMPONENT = "@performance"

#: Fields accepted on a JSON sample object.
_SAMPLE_FIELDS = {"component", "metric", "time", "value"}

#: Fields accepted on the JSON push envelope.
_ENVELOPE_FIELDS = {"samples", "performance", "tenant"}


@dataclass
class Push:
    """One decoded ingest payload, coalesced and ready to route.

    Attributes:
        batches: Per-tick batches, sorted by tick time.
        tenant: Fleet tenant the push belongs to (empty = single-tenant
            pipeline mode).
        samples: Total metric samples across the batches.
    """

    batches: List[TickBatch] = field(default_factory=list)
    tenant: str = ""
    samples: int = 0


def _bad(message: str) -> ProtocolError:
    return ProtocolError(400, message)


def _as_time(value, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(f"{where}: time must be a number, got {value!r}")
    if isinstance(value, float):
        if not math.isfinite(value) or value != int(value):
            raise _bad(f"{where}: time must be an integral tick, got {value!r}")
    return int(value)


def _as_value(value, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(f"{where}: value must be a number, got {value!r}")
    return float(value)


def _as_name(value, what: str, where: str) -> str:
    if not isinstance(value, str) or not value:
        raise _bad(f"{where}: {what} must be a non-empty string, got {value!r}")
    return value


def _as_metric(name: str, where: str) -> Metric:
    # The store is keyed by the Metric enum, not by raw strings — an
    # unconverted name would land in a series no diagnosis ever reads.
    try:
        return Metric(name)
    except ValueError:
        raise _bad(
            f"{where}: unknown metric {name!r}; monitored metrics are "
            f"{[m.value for m in Metric]}"
        ) from None


def coalesce(
    samples: List[MetricSample],
    performance: Dict[int, float],
) -> List[TickBatch]:
    """Group samples and performance points into per-tick batches."""
    by_tick: Dict[int, List[MetricSample]] = {}
    for sample in samples:
        by_tick.setdefault(sample.time, []).append(sample)
    ticks = sorted(set(by_tick) | set(performance))
    return [
        TickBatch(
            time=t,
            samples=by_tick.get(t, []),
            performance=performance.get(t),
        )
        for t in ticks
    ]


def decode_json_push(payload) -> Push:
    """Decode the JSON wire format into a :class:`Push`."""
    if isinstance(payload, list):
        payload = {"samples": payload}
    if not isinstance(payload, dict):
        raise _bad("push must be a JSON object or a list of samples")
    unknown = set(payload) - _ENVELOPE_FIELDS
    if unknown:
        raise _bad(f"unknown push fields: {sorted(unknown)}")

    tenant = payload.get("tenant", "")
    if not isinstance(tenant, str):
        raise _bad(f"tenant must be a string, got {tenant!r}")

    raw_samples = payload.get("samples", [])
    if not isinstance(raw_samples, list):
        raise _bad("samples must be a list")
    samples: List[MetricSample] = []
    for index, entry in enumerate(raw_samples):
        where = f"samples[{index}]"
        if not isinstance(entry, dict):
            raise _bad(f"{where}: each sample must be an object")
        unknown = set(entry) - _SAMPLE_FIELDS
        if unknown:
            raise _bad(f"{where}: unknown fields {sorted(unknown)}")
        missing = _SAMPLE_FIELDS - set(entry)
        if missing:
            raise _bad(f"{where}: missing fields {sorted(missing)}")
        samples.append(
            MetricSample(
                component=_as_name(entry["component"], "component", where),
                metric=_as_metric(
                    _as_name(entry["metric"], "metric", where), where
                ),
                time=_as_time(entry["time"], where),
                value=_as_value(entry["value"], where),
            )
        )

    raw_performance = payload.get("performance", [])
    if not isinstance(raw_performance, list):
        raise _bad("performance must be a list of {time, value} points")
    performance: Dict[int, float] = {}
    for index, entry in enumerate(raw_performance):
        where = f"performance[{index}]"
        if not isinstance(entry, dict) or set(entry) != {"time", "value"}:
            raise _bad(f"{where}: each point must be {{time, value}}")
        performance[_as_time(entry["time"], where)] = _as_value(
            entry["value"], where
        )

    if not samples and not performance:
        raise _bad("empty push: no samples and no performance points")
    return Push(
        batches=coalesce(samples, performance),
        tenant=tenant,
        samples=len(samples),
    )


def decode_csv_push(body: bytes, tenant: str = "") -> Push:
    """Decode the CSV wire format into a :class:`Push`."""
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as error:
        raise _bad(f"CSV body is not UTF-8: {error}") from error
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or [cell.strip() for cell in header] != [
        "time",
        "component",
        "metric",
        "value",
    ]:
        raise _bad(
            "CSV push needs the header time,component,metric,value "
            f"(got {header!r})"
        )
    samples: List[MetricSample] = []
    performance: Dict[int, float] = {}
    for line_number, row in enumerate(reader, start=2):
        if not row or not any(cell.strip() for cell in row):
            continue
        where = f"csv line {line_number}"
        if len(row) != 4:
            raise _bad(f"{where}: expected 4 columns, got {len(row)}")
        try:
            time = int(row[0])
            value = float(row[3])
        except ValueError as error:
            raise _bad(f"{where}: {error}") from error
        component = row[1].strip()
        metric = row[2].strip()
        if not component:
            raise _bad(f"{where}: empty component")
        if component == PERFORMANCE_COMPONENT:
            performance[time] = value
            continue
        if not metric:
            raise _bad(f"{where}: empty metric")
        samples.append(
            MetricSample(component, _as_metric(metric, where), time, value)
        )
    if not samples and not performance:
        raise _bad("empty push: no samples and no performance points")
    return Push(
        batches=coalesce(samples, performance),
        tenant=tenant,
        samples=len(samples),
    )


def decode_push(request: HttpRequest) -> Push:
    """Decode one ``POST /v1/ingest`` request body by content type.

    A ``?tenant=`` query parameter routes the push in fleet mode; a JSON
    body may name the tenant inline instead (the body wins when both
    are present and agree; disagreement is a 400).
    """
    query_tenant = request.query.get("tenant", "")
    content_type = request.content_type
    if content_type in ("", "application/json"):
        push = decode_json_push(request.json())
    elif content_type in ("text/csv", "application/csv"):
        push = decode_csv_push(request.body, tenant=query_tenant)
    else:
        raise ProtocolError(
            415,
            f"unsupported content type {content_type!r}: "
            "push application/json or text/csv",
        )
    if query_tenant:
        if push.tenant and push.tenant != query_tenant:
            raise _bad(
                f"tenant mismatch: body says {push.tenant!r}, "
                f"query says {query_tenant!r}"
            )
        push.tenant = query_tenant
    return push


def store_csv_text(samples: List[Tuple[int, str, str, float]]) -> str:
    """Render rows back to the CSV wire format (load-generator helper)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time", "component", "metric", "value"])
    writer.writerows(samples)
    return out.getvalue()


__all__ = [
    "PERFORMANCE_COMPONENT",
    "Push",
    "coalesce",
    "decode_csv_push",
    "decode_json_push",
    "decode_push",
    "store_csv_text",
]
