"""The network edge: async push-ingest API + REST query surface.

:class:`EdgeServer` is the process boundary the ROADMAP's "heavy
traffic" north star needs: external collectors push batched telemetry at
``POST /v1/ingest`` and query diagnoses back out of ``GET
/v1/incidents``, while the existing online machinery —
:class:`~repro.service.pipeline.OnlinePipeline` in single-tenant mode or
a :class:`~repro.fleet.supervisor.FleetSupervisor` in multi-tenant mode
— runs unchanged behind it.

Threading model (three lanes, two bounded hand-offs)::

    HTTP clients ──> asyncio event loop ──> bounded queue ──> pipeline
                     (parse + validate,     (put_nowait,      thread
                      never blocks)          429 on full)     (ingest,
                                                              SLO, dispatch)
                                                 │
                     diagnosis worker ──> sinks: IncidentStore, webhooks

The backpressure invariant extends the service loop's "ingest never
blocks on diagnosis" outward: *the event loop never blocks on the
pipeline*. Ingest hand-off is ``put_nowait`` only — a full queue sheds
the push with a counted ``429`` + ``Retry-After`` instead of stalling
the reactor, so ``/healthz``, ``/v1/metrics`` and incident queries stay
responsive under any flood.

Every endpoint is observable: ``fchain_edge_requests_total``,
``fchain_edge_request_seconds``, ingest/shed counters, and (when
telemetry is on) an ``edge_request`` span per request.
"""

from __future__ import annotations

import asyncio
import contextlib
import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError, ReproError
from repro.edge.http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpRequest,
    HttpResponse,
    ProtocolError,
    Router,
    error_response,
    json_response,
    read_request,
    text_response,
)
from repro.edge.ingest import Push, decode_push
from repro.edge.store import (
    IncidentStore,
    IncidentStoreSink,
    MemoryIncidentStore,
    StoredIncident,
)
from repro.obs.trace import STAGE_EDGE_REQUEST, make_tracer
from repro.service.sources import TickBatch

#: Queue item that ends the pipeline feed.
_SENTINEL = None


@dataclass
class EdgeConfig:
    """Knobs of the HTTP edge itself (the engines keep their own).

    Attributes:
        host: Bind address.
        port: Bind port (0 = ephemeral; see ``EdgeServer.port``).
        queue_depth: Bounded in-flight batches between the event loop
            and the pipeline thread; the backpressure knob.
        max_body_bytes: Reject larger request bodies with 413.
        retry_after_seconds: Advisory ``Retry-After`` on 429 sheds.
        allow_shutdown: Expose ``POST /v1/shutdown`` (CI and operators;
            disable on exposed deployments).
        telemetry: ``repro.obs`` tracing level for request spans.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    queue_depth: int = 256
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    retry_after_seconds: float = 1.0
    allow_shutdown: bool = True
    telemetry: str = "off"

    def validate(self) -> "EdgeConfig":
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        if self.max_body_bytes < 1:
            raise ConfigurationError("max_body_bytes must be >= 1")
        return self


class QueueFeed:
    """A bounded, thread-safe feed the HTTP side pushes into.

    The pipeline thread blocks on :meth:`__next__`; the event loop only
    ever calls :meth:`put_nowait`, which raises ``queue.Full`` instead
    of waiting — the caller turns that into a 429.
    """

    def __init__(self, maxsize: int) -> None:
        self._queue: "queue.Queue" = queue.Queue(maxsize=maxsize)
        self._closed = False

    def put_nowait(self, batch: TickBatch) -> None:
        if self._closed:
            raise ReproError("the feed is closed")
        self._queue.put_nowait(batch)

    def qsize(self) -> int:
        return self._queue.qsize()

    def close(self, timeout: float = 10.0) -> None:
        """End the feed: the consumer sees StopIteration after the tail."""
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._queue.put_nowait(_SENTINEL)
                return
            except queue.Full:
                if time.monotonic() >= deadline:
                    # Consumer is gone or wedged; drop one queued batch to
                    # make room so shutdown still terminates.
                    with contextlib.suppress(queue.Empty):
                        self._queue.get_nowait()
                time.sleep(0.01)

    def __iter__(self) -> "QueueFeed":
        return self

    def __next__(self) -> TickBatch:
        item = self._queue.get()
        if item is _SENTINEL:
            raise StopIteration
        return item


class _EdgeMetrics:
    """Request/ingest counters every endpoint reports into."""

    def __init__(self, registry=None) -> None:
        if registry is None:
            from repro.obs.registry import default_registry

            registry = default_registry()
        self.requests = registry.counter(
            "fchain_edge_requests_total",
            "HTTP requests served by the edge, by route and status",
            ("route", "method", "status"),
        )
        self.request_seconds = registry.histogram(
            "fchain_edge_request_seconds",
            "Wall-clock seconds per edge request",
            ("route",),
        )
        self.ingest_samples = registry.counter(
            "fchain_edge_ingest_samples_total",
            "Metric samples accepted through POST /v1/ingest",
        )
        self.ingest_batches = registry.counter(
            "fchain_edge_ingest_batches_total",
            "Tick batches accepted through POST /v1/ingest",
        )
        self.shed_batches = registry.counter(
            "fchain_edge_shed_batches_total",
            "Tick batches shed with 429 because the ingest queue was full",
        )


class EdgeServer:
    """HTTP front end over one pipeline or one fleet.

    Build it, attach an engine (:meth:`attach_pipeline` or
    :meth:`attach_fleet`), then :meth:`start` / :meth:`serve_forever`.

    Args:
        config: Edge knobs (bind address, queue depth, limits).
        incident_store: Durable store the REST surface reads and the
            engine's sink writes (defaults to in-memory).
        registry: Metrics registry (defaults to the process-wide one).
    """

    def __init__(
        self,
        config: Optional[EdgeConfig] = None,
        *,
        incident_store: Optional[IncidentStore] = None,
        registry=None,
    ) -> None:
        self.config = (config or EdgeConfig()).validate()
        self.store = incident_store or MemoryIncidentStore()
        self._registry = registry
        self.metrics = _EdgeMetrics(registry)
        self.tracer = make_tracer(self.config.telemetry, registry=registry)

        self.router = Router()
        self._register_routes()

        self._feed: Optional[QueueFeed] = None
        self.pipeline = None
        self.supervisor = None
        self._webhooks: List = []
        self._pipeline_thread: Optional[threading.Thread] = None
        self.pipeline_error: Optional[str] = None

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._shutdown = threading.Event()
        self._stopped = False

        self.port: Optional[int] = None
        self.enqueued_batches = 0
        self.shed_batches = 0
        self.accepted_samples = 0

    # ------------------------------------------------------------------
    # Engine attachment
    # ------------------------------------------------------------------
    def attach_pipeline(
        self,
        detector,
        *,
        fchain_config=None,
        seed: object = 0,
        jobs: Optional[int] = None,
        slave_timeout: Optional[float] = None,
        policy=None,
        sinks=(),
    ) -> None:
        """Single-tenant mode: pushes feed one online pipeline."""
        from repro.service.pipeline import OnlinePipeline

        if self.pipeline is not None or self.supervisor is not None:
            raise ConfigurationError("an engine is already attached")
        self._feed = QueueFeed(self.config.queue_depth)
        self._webhooks = [s for s in sinks if hasattr(s, "breaker_state")]
        self.pipeline = OnlinePipeline(
            self._feed,
            detector,
            config=fchain_config,
            seed=seed,
            jobs=jobs,
            slave_timeout=slave_timeout,
            policy=policy,
            sinks=[IncidentStoreSink(self.store), *sinks],
            registry=self._registry,
        )

    def attach_fleet(self, supervisor, *, sinks=()) -> None:
        """Multi-tenant mode: pushes route by tenant into a fleet.

        The supervisor must have been built with its sinks including
        ``IncidentStoreSink(self.store)`` — the server checks and adds
        one when missing so incidents always reach the REST surface.
        """
        if self.pipeline is not None or self.supervisor is not None:
            raise ConfigurationError("an engine is already attached")
        self.supervisor = supervisor
        self._webhooks = [s for s in sinks if hasattr(s, "breaker_state")]
        wired = any(
            isinstance(sink, IncidentStoreSink) and sink.store is self.store
            for sink in supervisor.sinks
        )
        if not wired:
            supervisor.sinks.append(IncidentStoreSink(self.store))
        for sink in sinks:
            if sink not in supervisor.sinks:
                supervisor.sinks.append(sink)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind, start serving, start the pipeline thread; returns bound."""
        if self.pipeline is None and self.supervisor is None:
            raise ConfigurationError(
                "attach_pipeline(...) or attach_fleet(...) before start()"
            )
        if self._loop_thread is not None:
            raise ConfigurationError("the server is already started")
        if self.pipeline is not None:
            self._pipeline_thread = threading.Thread(
                target=self._pipeline_loop,
                name="fchain-edge-pipeline",
                daemon=True,
            )
            self._pipeline_thread.start()
        self._loop_thread = threading.Thread(
            target=self._serve_loop, name="fchain-edge-http", daemon=True
        )
        self._loop_thread.start()
        if not self._started.wait(timeout=10.0):
            raise ReproError("the edge server did not start within 10s")
        if self._start_error is not None:
            raise ReproError(
                f"the edge server failed to bind: {self._start_error!r}"
            )

    def serve_forever(self) -> None:
        """Start (if needed) and block until shutdown is requested."""
        if self._loop_thread is None:
            self.start()
        try:
            self._shutdown.wait()
        except KeyboardInterrupt:
            pass
        self.stop()

    def request_shutdown(self) -> None:
        """Ask ``serve_forever`` to unwind (idempotent, non-blocking)."""
        self._shutdown.set()

    def stop(self) -> None:
        """Graceful teardown: stop accepting, drain the engine, flush."""
        if self._stopped:
            return
        self._stopped = True
        self._shutdown.set()
        # 1. Stop the HTTP side: no new pushes can arrive.
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._begin_loop_shutdown)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
        # 2. End the feed; the pipeline drains the queued tail, then its
        #    run() closes the pipeline (pending triggers, sinks).
        if self._feed is not None:
            self._feed.close()
        if self._pipeline_thread is not None:
            self._pipeline_thread.join(timeout=60.0)
        if self.supervisor is not None and not getattr(
            self.supervisor, "_closed", False
        ):
            self.supervisor.close()
        for webhook in self._webhooks:
            close = getattr(webhook, "close", None)
            if callable(close):
                close()
        self.store.flush()

    def close(self) -> None:
        self.stop()
        self.store.close()

    def __enter__(self) -> "EdgeServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def ready(self) -> bool:
        """Whether pushes currently have a live engine behind them."""
        if self.pipeline is not None:
            return (
                self._pipeline_thread is not None
                and self._pipeline_thread.is_alive()
                and self.pipeline_error is None
            )
        if self.supervisor is not None:
            return not getattr(self.supervisor, "_closed", False)
        return False

    # ------------------------------------------------------------------
    # Pipeline thread
    # ------------------------------------------------------------------
    def _pipeline_loop(self) -> None:
        try:
            self.pipeline.run()
        except Exception as error:  # noqa: BLE001 - surfaced via /readyz
            self.pipeline_error = repr(error)

    # ------------------------------------------------------------------
    # Event-loop thread
    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection, self.config.host, self.config.port
                )
            )
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._start_error = error
            self._started.set()
            loop.close()
            return
        self._asyncio_server = server
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def _begin_loop_shutdown(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
        self._loop.stop()

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body_bytes
                    )
                except ProtocolError as error:
                    writer.write(
                        error_response(error.status, str(error)).encode(
                            keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                response = self._respond(request)
                keep_alive = request.keep_alive
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.TimeoutError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancelled this connection; absorb so the
            # task finishes clean instead of logging at shutdown.
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    def _respond(self, request: HttpRequest) -> HttpResponse:
        started = time.perf_counter()
        route, params, allowed = self.router.resolve(
            request.method, request.path
        )
        label = route.template if route is not None else "unmatched"
        tracer = self.tracer
        with tracer.span(
            STAGE_EDGE_REQUEST, route=label, method=request.method
        ) as span:
            if route is None:
                if allowed:
                    response = error_response(
                        405,
                        f"{request.method} not allowed on {request.path}",
                        Allow=", ".join(sorted(set(allowed))),
                    )
                else:
                    response = error_response(
                        404, f"no route for {request.path}"
                    )
            else:
                try:
                    response = route.handler(request, **params)
                except ProtocolError as error:
                    response = error_response(error.status, str(error))
                except Exception as error:  # noqa: BLE001 - 500, keep serving
                    response = error_response(
                        500, f"internal error: {type(error).__name__}: {error}"
                    )
            span.tag(status=response.status)
        if tracer.enabled:
            tracer.observe(span)
        self.metrics.requests.inc(
            1, route=label, method=request.method, status=str(response.status)
        )
        self.metrics.request_seconds.observe(
            time.perf_counter() - started, route=label
        )
        return response

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _register_routes(self) -> None:
        add = self.router.add
        add("POST", "/v1/ingest", self._handle_ingest)
        add("GET", "/v1/incidents", self._handle_incident_list)
        add("GET", "/v1/incidents/{incident_id}", self._handle_incident_get)
        add("GET", "/v1/diagnoses/{incident_id}", self._handle_diagnosis_get)
        add("GET", "/v1/metrics", self._handle_metrics)
        add("GET", "/v1/stats", self._handle_stats)
        add("GET", "/healthz", self._handle_healthz)
        add("GET", "/readyz", self._handle_readyz)
        add("POST", "/v1/shutdown", self._handle_shutdown)

    def _handle_ingest(self, request: HttpRequest) -> HttpResponse:
        push = decode_push(request)
        if self.supervisor is None and push.tenant:
            raise ProtocolError(
                400,
                "tenant-routed pushes need fleet mode "
                "(this edge fronts a single pipeline)",
            )
        if self.supervisor is not None and not push.tenant:
            raise ProtocolError(
                400,
                "fleet mode: name the tenant in the push body or "
                "?tenant= query parameter",
            )
        if not self.ready():
            return error_response(
                503,
                "the ingest engine is not running"
                + (f": {self.pipeline_error}" if self.pipeline_error else ""),
            )
        accepted = self._route_batches(push)
        rejected = len(push.batches) - accepted
        accepted_samples = sum(
            len(batch.samples) for batch in push.batches[:accepted]
        )
        self.enqueued_batches += accepted
        self.accepted_samples += accepted_samples
        if accepted:
            self.metrics.ingest_batches.inc(accepted)
        if accepted_samples:
            self.metrics.ingest_samples.inc(accepted_samples)
        if rejected:
            self.shed_batches += rejected
            self.metrics.shed_batches.inc(rejected)
            return json_response(
                {
                    "error": "ingest queue full",
                    "accepted_batches": accepted,
                    "rejected_batches": rejected,
                    "retry_after_seconds": self.config.retry_after_seconds,
                },
                429,
                **{"Retry-After": str(max(1, int(self.config.retry_after_seconds)))},
            )
        return json_response(
            {
                "accepted_batches": accepted,
                "accepted_samples": accepted_samples,
                "tenant": push.tenant,
            },
            202,
        )

    def _route_batches(self, push: Push) -> int:
        """Enqueue batches in tick order; returns how many were accepted.

        Pipeline mode is **all-or-nothing**: a push either fits in the
        queue's free space or is shed whole, so a client that retries a
        429'd push verbatim never double-ingests the accepted prefix.
        The check-then-put is race-free because the event loop is the
        queue's only producer and the consumer only frees space.

        Fleet mode routes per batch into per-shard queues (no global
        free-space check exists); it stops at the first shed so the
        rejected tail stays contiguous, and reports the accepted count
        for the client to trim its retry.
        """
        if self.supervisor is not None:
            accepted = 0
            for batch in push.batches:
                try:
                    if not self.supervisor.ingest(push.tenant, batch):
                        break
                except ConfigurationError as error:
                    raise ProtocolError(404, str(error)) from error
                accepted += 1
            return accepted
        if len(push.batches) > self.config.queue_depth:
            raise ProtocolError(
                413,
                f"push of {len(push.batches)} ticks exceeds the ingest "
                f"queue capacity of {self.config.queue_depth}: split "
                "the push",
            )
        if len(push.batches) > self.config.queue_depth - self._feed.qsize():
            return 0
        for batch in push.batches:
            self._feed.put_nowait(batch)
        return len(push.batches)

    # -- query surface -------------------------------------------------
    @staticmethod
    def _summary(record: StoredIncident) -> Dict:
        return {
            "id": record.id,
            "tenant": record.tenant,
            "created_at": record.created_at,
            "violation_tick": record.violation_tick,
            "faulty": record.incident.get("faulty", []),
            "external_factor": record.incident.get("external_factor", False),
            "quality": record.incident.get("quality", ""),
        }

    def _handle_incident_list(self, request: HttpRequest) -> HttpResponse:
        def _int_param(name: str) -> Optional[int]:
            raw = request.query.get(name)
            if raw is None or raw == "":
                return None
            try:
                return int(raw)
            except ValueError:
                raise ProtocolError(
                    400, f"query parameter {name} must be an integer"
                ) from None

        records = self.store.query(
            tenant=request.query.get("tenant"),
            since=_int_param("since"),
            until=_int_param("until"),
            limit=_int_param("limit"),
        )
        return json_response(
            {
                "incidents": [self._summary(record) for record in records],
                "count": len(records),
            }
        )

    def _get_record(self, incident_id: str) -> StoredIncident:
        try:
            numeric = int(incident_id)
        except ValueError:
            raise ProtocolError(
                400, f"incident id must be an integer, got {incident_id!r}"
            ) from None
        record = self.store.get(numeric)
        if record is None:
            raise ProtocolError(404, f"no incident {numeric}")
        return record

    def _handle_incident_get(
        self, request: HttpRequest, incident_id: str
    ) -> HttpResponse:
        return json_response(self._get_record(incident_id).to_dict())

    def _handle_diagnosis_get(
        self, request: HttpRequest, incident_id: str
    ) -> HttpResponse:
        record = self._get_record(incident_id)
        return json_response(
            {
                "id": record.id,
                "tenant": record.tenant,
                "diagnosis": record.diagnosis,
            }
        )

    def _handle_metrics(self, request: HttpRequest) -> HttpResponse:
        from repro.obs.registry import default_registry

        registry = self._registry or default_registry()
        return text_response(registry.render_prometheus())

    def _handle_stats(self, request: HttpRequest) -> HttpResponse:
        stats: Dict = {
            "mode": "fleet" if self.supervisor is not None else "pipeline",
            "ready": self.ready(),
            "enqueued_batches": self.enqueued_batches,
            "shed_batches": self.shed_batches,
            "accepted_samples": self.accepted_samples,
            "queue_depth": self._feed.qsize() if self._feed else 0,
            "queue_capacity": self.config.queue_depth,
            "incidents": self.store.count(),
            "store_backend": self.store.backend,
        }
        if self.pipeline is not None:
            pipeline = self.pipeline
            stats["pipeline"] = {
                "ticks": pipeline.ticks,
                "triggered": pipeline.triggered,
                "dropped": pipeline.dropped,
                "inflight_triggers": (
                    pipeline.triggered
                    - pipeline.dropped
                    - len(pipeline.incidents)
                    - len(pipeline.failures)
                ),
                "warm_sync_skipped": pipeline.warm_sync_skipped,
                "error": self.pipeline_error,
            }
        if self.supervisor is not None:
            supervisor = self.supervisor
            stats["fleet"] = {
                "tenants": len(getattr(supervisor, "_specs", {})),
                "incidents": sum(
                    len(v) for v in supervisor.incidents.values()
                ),
                "ingest_dropped": sum(
                    supervisor.ingest_dropped.values()
                ),
                "failures": len(supervisor.failures),
            }
        if self._webhooks:
            stats["webhooks"] = [
                {
                    "endpoints": {
                        url: sink.breaker_state(url) for url in sink.endpoints
                    },
                    "delivered": sink.stats.delivered,
                    "dead_lettered": sink.stats.dead_lettered,
                }
                for sink in self._webhooks
            ]
        return json_response(stats)

    def _handle_healthz(self, request: HttpRequest) -> HttpResponse:
        return json_response({"status": "ok"})

    def _handle_readyz(self, request: HttpRequest) -> HttpResponse:
        if self.ready():
            return json_response({"status": "ready"})
        return error_response(
            503,
            "not ready"
            + (f": {self.pipeline_error}" if self.pipeline_error else ""),
        )

    def _handle_shutdown(self, request: HttpRequest) -> HttpResponse:
        if not self.config.allow_shutdown:
            raise ProtocolError(404, "shutdown endpoint is disabled")
        self.request_shutdown()
        return json_response({"status": "shutting down"}, 202)


__all__ = ["EdgeConfig", "EdgeServer", "QueueFeed"]
