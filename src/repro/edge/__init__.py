"""The network edge: HTTP push-ingest, durable incidents, webhooks.

This package puts a process boundary in front of the online machinery:

* :mod:`repro.edge.http` — hand-rolled HTTP/1.1 on asyncio streams
  (no new runtime dependencies);
* :mod:`repro.edge.ingest` — wire-format decoding of ``POST
  /v1/ingest`` pushes into per-tick batches;
* :mod:`repro.edge.store` — the durable :class:`IncidentStore`
  interface with JSONL-segment and SQLite backends;
* :mod:`repro.edge.webhook` — async incident callbacks with retry,
  circuit breaking and a dead-letter file;
* :mod:`repro.edge.server` — :class:`EdgeServer`, tying it together
  over an :class:`~repro.service.pipeline.OnlinePipeline` or a
  :class:`~repro.fleet.supervisor.FleetSupervisor`;
* :mod:`repro.edge.client` — a blocking stdlib client for tests,
  benchmarks and the CI load script.
"""

from repro.edge.client import EdgeClient, EdgeResponse
from repro.edge.http import HttpRequest, HttpResponse, ProtocolError, Router
from repro.edge.ingest import Push, decode_push
from repro.edge.server import EdgeConfig, EdgeServer, QueueFeed
from repro.edge.store import (
    BACKENDS,
    IncidentStore,
    IncidentStoreSink,
    JsonlIncidentStore,
    MemoryIncidentStore,
    SqliteIncidentStore,
    StoredIncident,
    open_incident_store,
)
from repro.edge.webhook import WebhookSink, WebhookStats

__all__ = [
    "BACKENDS",
    "EdgeClient",
    "EdgeConfig",
    "EdgeResponse",
    "EdgeServer",
    "HttpRequest",
    "HttpResponse",
    "IncidentStore",
    "IncidentStoreSink",
    "JsonlIncidentStore",
    "MemoryIncidentStore",
    "ProtocolError",
    "Push",
    "QueueFeed",
    "Router",
    "SqliteIncidentStore",
    "StoredIncident",
    "WebhookSink",
    "WebhookStats",
    "decode_push",
    "open_incident_store",
]
