"""Durable incident stores behind one pluggable interface.

An :class:`IncidentStore` persists every diagnosed
:class:`~repro.service.incident.Incident` so the REST surface can serve
``GET /v1/incidents`` after the pipeline — or the process — that
produced them is gone. Two backends implement the same five-method
interface and are contract-tested to return *identical* results for the
same append sequence (``tests/edge/test_store.py``):

* :class:`JsonlIncidentStore` — append-only JSON-lines segments in a
  directory, rotated at a byte threshold, every append fsync'd through
  the shared :class:`~repro.common.jsonl.JsonlWriter`. Crash-safe by
  construction: a torn final line is dropped on recovery, everything
  before it survives.
* :class:`SqliteIncidentStore` — a stdlib ``sqlite3`` database in WAL
  mode with ``synchronous=FULL``, indexed by tenant and violation tick
  so time-range queries stay cheap as history grows.

:class:`MemoryIncidentStore` is the in-process null backend (tests,
``--store memory``). :class:`IncidentStoreSink` adapts any backend into
a pipeline or fleet incident sink.

Record identity: ids are assigned by the store, sequentially from 1, in
append order — the contract tests pin that both durable backends hand
out the same ids for the same sequence.
"""

from __future__ import annotations

import json
import pathlib
import re
import sqlite3
import threading
import time as time_module
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.common.errors import ConfigurationError
from repro.common.jsonl import JsonlWriter, read_jsonl

PathLike = Union[str, pathlib.Path]

#: Rotate a JSONL segment once it holds this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^incidents-(\d{8})\.jsonl$")


def diagnosis_payload(diagnosis) -> Dict:
    """JSON-safe detail view of a diagnosis (``GET /v1/diagnoses/{id}``).

    Built defensively with ``getattr`` so sinks fed by stubbed engines
    (tests) or future diagnosis shapes still store something useful.
    """
    if diagnosis is None:
        return {}
    payload: Dict = {
        "faulty": sorted(getattr(diagnosis, "faulty", ()) or ()),
        "external_factor": bool(getattr(diagnosis, "external_factor", False)),
        "skipped": sorted(getattr(diagnosis, "skipped", ()) or ()),
        "confidence": getattr(diagnosis, "confidence", "full"),
        "latency_seconds": float(getattr(diagnosis, "latency_seconds", 0.0)),
        "violation_time": getattr(diagnosis, "violation_time", None),
        "validated": bool(getattr(diagnosis, "validated", False)),
    }
    reasons = getattr(diagnosis, "skipped_reasons", None)
    if reasons:
        payload["skipped_reasons"] = dict(reasons)
    chain = getattr(diagnosis, "chain", None)
    links = getattr(chain, "links", None)
    if links:
        payload["chain"] = [
            {"component": component, "onset": int(onset)}
            for component, onset in links
        ]
    summary = getattr(diagnosis, "summary", None)
    if callable(summary):
        try:
            payload["summary"] = summary()
        except Exception:  # noqa: BLE001 - stub diagnoses may half-exist
            pass
    return payload


@dataclass
class StoredIncident:
    """One persisted incident.

    Attributes:
        id: Store-assigned sequence number (1-based, append order).
        tenant: Owning tenant (empty in single-pipeline mode).
        created_at: Unix timestamp the record was appended.
        incident: The ``Incident.to_dict()`` summary payload.
        diagnosis: The :func:`diagnosis_payload` detail payload.
    """

    id: int
    tenant: str
    created_at: float
    incident: Dict = field(default_factory=dict)
    diagnosis: Dict = field(default_factory=dict)

    @property
    def violation_tick(self) -> int:
        return int(self.incident.get("violation_tick", 0))

    def to_dict(self) -> Dict:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "created_at": self.created_at,
            "incident": self.incident,
            "diagnosis": self.diagnosis,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "StoredIncident":
        return cls(
            id=int(payload["id"]),
            tenant=payload.get("tenant", ""),
            created_at=float(payload.get("created_at", 0.0)),
            incident=payload.get("incident", {}),
            diagnosis=payload.get("diagnosis", {}),
        )


class IncidentStore:
    """The pluggable durable-store interface.

    Appends are crash-safe (each backend defines how); queries filter by
    tenant and by *violation tick* range — the time axis diagnoses live
    on — newest first, with an optional limit.
    """

    backend = "abstract"

    def __init__(self) -> None:
        # Serializes id assignment against the append that consumes it;
        # backends layer their own storage lock underneath.
        self._append_mutex = threading.Lock()

    def append(
        self, incident, *, tenant: str = "", created_at: Optional[float] = None
    ) -> StoredIncident:
        """Persist one incident; returns the stored record with its id."""
        with self._append_mutex:
            record = self._make_record(incident, tenant, created_at)
            self._append(record)
        return record

    def get(self, incident_id: int) -> Optional[StoredIncident]:
        raise NotImplementedError

    def query(
        self,
        *,
        tenant: Optional[str] = None,
        since: Optional[int] = None,
        until: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[StoredIncident]:
        """Newest-first records, filtered by tenant and violation tick.

        ``since``/``until`` bound the violation tick inclusively.
        """
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    def flush(self) -> None:
        """Make every completed append durable (no-op where implicit)."""

    def close(self) -> None:
        """Release file handles/connections; the store stays readable."""

    def _append(self, record: StoredIncident) -> None:
        raise NotImplementedError

    def _make_record(
        self, incident, tenant: str, created_at: Optional[float]
    ) -> StoredIncident:
        if isinstance(incident, StoredIncident):
            raise ConfigurationError(
                "append takes a service Incident, not a StoredIncident"
            )
        payload = incident.to_dict()
        return StoredIncident(
            id=self._next_id(),
            tenant=tenant,
            created_at=(
                time_module.time() if created_at is None else float(created_at)
            ),
            incident=payload,
            diagnosis=diagnosis_payload(getattr(incident, "diagnosis", None)),
        )

    def _next_id(self) -> int:
        raise NotImplementedError

    def __enter__(self) -> "IncidentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _match(
    record: StoredIncident,
    tenant: Optional[str],
    since: Optional[int],
    until: Optional[int],
) -> bool:
    if tenant is not None and record.tenant != tenant:
        return False
    tick = record.violation_tick
    if since is not None and tick < since:
        return False
    if until is not None and tick > until:
        return False
    return True


class MemoryIncidentStore(IncidentStore):
    """Volatile in-process backend (the contract-test reference)."""

    backend = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._records: List[StoredIncident] = []
        self._lock = threading.Lock()

    def _next_id(self) -> int:
        return len(self._records) + 1

    def _append(self, record: StoredIncident) -> None:
        with self._lock:
            self._records.append(record)

    def get(self, incident_id: int) -> Optional[StoredIncident]:
        with self._lock:
            if 1 <= incident_id <= len(self._records):
                return self._records[incident_id - 1]
        return None

    def query(self, *, tenant=None, since=None, until=None, limit=None):
        with self._lock:
            matched = [
                record
                for record in reversed(self._records)
                if _match(record, tenant, since, until)
            ]
        return matched[:limit] if limit is not None else matched

    def count(self) -> int:
        with self._lock:
            return len(self._records)


class JsonlIncidentStore(IncidentStore):
    """Append-only JSONL segments with rotation and fsync'd appends.

    Args:
        directory: Segment directory (created if missing).
        fsync: fsync every append (default True — this is the durable
            backend; switch off only for benchmarks).
        segment_bytes: Rotate to a fresh segment once the active one
            reaches this many bytes.

    Recovery: on open, every segment is read in name order; a truncated
    final line (crash mid-append) is dropped by
    :func:`~repro.common.jsonl.read_jsonl` and the next id continues
    after the last complete record.
    """

    backend = "jsonl"

    def __init__(
        self,
        directory: PathLike,
        *,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        super().__init__()
        if segment_bytes < 1:
            raise ConfigurationError("segment_bytes must be >= 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        self._lock = threading.Lock()
        self._records: List[StoredIncident] = []
        self._writer: Optional[JsonlWriter] = None
        self._segment_index = 0
        self._recover()

    # -- recovery ------------------------------------------------------
    def segments(self) -> List[pathlib.Path]:
        """Existing segment files, oldest first."""
        found = [
            path
            for path in self.directory.iterdir()
            if _SEGMENT_RE.match(path.name)
        ]
        return sorted(found)

    def _recover(self) -> None:
        for path in self.segments():
            self._segment_index = int(_SEGMENT_RE.match(path.name).group(1))
            for payload in read_jsonl(path):
                self._records.append(StoredIncident.from_dict(payload))
        if self._segment_index == 0:
            self._segment_index = 1
        self._open_writer()

    def _segment_path(self, index: int) -> pathlib.Path:
        return self.directory / f"incidents-{index:08d}.jsonl"

    def _open_writer(self) -> None:
        self._writer = JsonlWriter(
            self._segment_path(self._segment_index), fsync=self.fsync
        )

    # -- the interface -------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            return len(self._records) + 1

    def _append(self, record: StoredIncident) -> None:
        with self._lock:
            if self._writer is None or self._writer.closed:
                raise ConfigurationError("the incident store is closed")
            if self._writer.bytes_written >= self.segment_bytes:
                self._writer.close()
                self._segment_index += 1
                self._open_writer()
            self._writer.write(record.to_dict())
            self._records.append(record)

    def get(self, incident_id: int) -> Optional[StoredIncident]:
        with self._lock:
            if 1 <= incident_id <= len(self._records):
                return self._records[incident_id - 1]
        return None

    def query(self, *, tenant=None, since=None, until=None, limit=None):
        with self._lock:
            matched = [
                record
                for record in reversed(self._records)
                if _match(record, tenant, since, until)
            ]
        return matched[:limit] if limit is not None else matched

    def count(self) -> int:
        with self._lock:
            return len(self._records)

    def flush(self) -> None:
        with self._lock:
            if self._writer is not None:
                self._writer.flush()

    def close(self) -> None:
        with self._lock:
            if self._writer is not None:
                self._writer.close()


class SqliteIncidentStore(IncidentStore):
    """Stdlib SQLite backend behind the same interface.

    WAL journaling with ``synchronous=FULL`` makes each committed append
    durable; indexes on ``(tenant)`` and ``(violation_tick)`` keep the
    REST queries from scanning history. The connection is shared across
    the appending (diagnosis worker) and querying (event loop) threads
    under one lock — sqlite serializes at the file level anyway, and the
    lock keeps ``lastrowid`` reads race-free.
    """

    backend = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS incidents (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            tenant TEXT NOT NULL DEFAULT '',
            created_at REAL NOT NULL,
            violation_tick INTEGER NOT NULL,
            incident TEXT NOT NULL,
            diagnosis TEXT NOT NULL
        );
        CREATE INDEX IF NOT EXISTS idx_incidents_tenant
            ON incidents (tenant);
        CREATE INDEX IF NOT EXISTS idx_incidents_tick
            ON incidents (violation_tick);
    """

    def __init__(self, path: PathLike) -> None:
        super().__init__()
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()

    def _next_id(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(id), 0) + 1 FROM incidents"
            ).fetchone()
        return int(row[0])

    def _append(self, record: StoredIncident) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO incidents "
                "(id, tenant, created_at, violation_tick, incident, diagnosis)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    record.id,
                    record.tenant,
                    record.created_at,
                    record.violation_tick,
                    json.dumps(record.incident, separators=(",", ":")),
                    json.dumps(record.diagnosis, separators=(",", ":")),
                ),
            )
            self._conn.commit()

    @staticmethod
    def _row_to_record(row) -> StoredIncident:
        return StoredIncident(
            id=int(row[0]),
            tenant=row[1],
            created_at=float(row[2]),
            incident=json.loads(row[4]),
            diagnosis=json.loads(row[5]),
        )

    def get(self, incident_id: int) -> Optional[StoredIncident]:
        with self._lock:
            row = self._conn.execute(
                "SELECT id, tenant, created_at, violation_tick, incident, "
                "diagnosis FROM incidents WHERE id = ?",
                (incident_id,),
            ).fetchone()
        return self._row_to_record(row) if row else None

    def query(self, *, tenant=None, since=None, until=None, limit=None):
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if since is not None:
            clauses.append("violation_tick >= ?")
            params.append(int(since))
        if until is not None:
            clauses.append("violation_tick <= ?")
            params.append(int(until))
        sql = (
            "SELECT id, tenant, created_at, violation_tick, incident, "
            "diagnosis FROM incidents"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [self._row_to_record(row) for row in rows]

    def count(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM incidents").fetchone()
        return int(row[0])

    def flush(self) -> None:
        with self._lock:
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()


#: Backend name -> constructor; the ``--store`` CLI flag's vocabulary.
BACKENDS = {
    "memory": lambda path: MemoryIncidentStore(),
    "jsonl": JsonlIncidentStore,
    "sqlite": SqliteIncidentStore,
}


def open_incident_store(backend: str, path: Optional[PathLike] = None) -> IncidentStore:
    """Open a store by backend name (``memory`` needs no path)."""
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown incident store backend {backend!r}; "
            f"choose from {sorted(BACKENDS)}"
        )
    if backend != "memory" and path is None:
        raise ConfigurationError(f"backend {backend!r} needs a --store-path")
    return BACKENDS[backend](path)


class IncidentStoreSink:
    """Adapt an :class:`IncidentStore` into a pipeline or fleet sink.

    As a pipeline sink it is called ``sink(incident)``; as a fleet sink
    ``sink(tenant, incident)`` — both shapes funnel into
    :meth:`IncidentStore.append`.
    """

    def __init__(self, store: IncidentStore, *, tenant: str = "") -> None:
        self.store = store
        self.tenant = tenant

    def __call__(self, *args) -> None:
        if len(args) == 1:
            self.store.append(args[0], tenant=self.tenant)
        elif len(args) == 2:
            tenant, incident = args
            self.store.append(incident, tenant=str(tenant))
        else:
            raise TypeError(
                "IncidentStoreSink takes (incident) or (tenant, incident)"
            )

    def flush(self) -> None:
        self.store.flush()

    def close(self) -> None:
        # The server owns the store's lifetime; a sink close only flushes,
        # so draining a pipeline never yanks the REST surface's backend.
        self.store.flush()


__all__ = [
    "BACKENDS",
    "DEFAULT_SEGMENT_BYTES",
    "IncidentStore",
    "IncidentStoreSink",
    "JsonlIncidentStore",
    "MemoryIncidentStore",
    "SqliteIncidentStore",
    "StoredIncident",
    "diagnosis_payload",
    "open_incident_store",
]
