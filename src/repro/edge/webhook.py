"""Webhook incident notifications: retry, circuit breaking, dead letter.

A :class:`WebhookSink` POSTs every finished incident as JSON to one or
more HTTP endpoints. Delivery is fully asynchronous: the sink's
``__call__`` (invoked from the pipeline's diagnosis worker or the fleet
collector) only enqueues — the actual network I/O runs on a dedicated
thread driving its own asyncio event loop, so a slow or dead endpoint
can never back up into diagnosis.

Per-delivery state machine::

    queued -> attempt -> 2xx ........................ delivered
                      -> failure -> backoff sleep -> attempt (retry)
                      -> breaker open -> counted as a failed attempt
    attempts exhausted .............................. dead letter (JSONL)

Failures back off exponentially (``backoff_base * 2**attempt``, capped
at ``backoff_cap``). Each endpoint owns a circuit breaker: after
``breaker_threshold`` *consecutive* failures the breaker opens and every
attempt short-circuits (no connection is even tried) until
``breaker_reset`` seconds pass, at which point one half-open probe is
allowed through; success closes the breaker, failure re-opens it.
Deliveries that exhaust their attempts are appended — fsync'd — to the
dead-letter JSONL file with the terminal error, so no acknowledged
incident notification is ever silently dropped.
"""

from __future__ import annotations

import asyncio
import ssl as ssl_module
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union
from urllib.parse import urlsplit

from repro.common.errors import ConfigurationError
from repro.common.jsonl import JsonlWriter
from repro.edge.http import json_response

#: Outcome labels used on the ``fchain_webhook_deliveries_total`` counter.
OUTCOME_DELIVERED = "delivered"
OUTCOME_DEAD_LETTERED = "dead_lettered"


class _CircuitBreaker:
    """Consecutive-failure breaker guarding one endpoint."""

    def __init__(self, threshold: int, reset_seconds: float) -> None:
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None

    def allow(self, now: float) -> bool:
        """Whether an attempt may try the network right now."""
        if self.opened_at is None:
            return True
        if now - self.opened_at >= self.reset_seconds:
            return True  # half-open: let one probe through
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            if self.opened_at is None:
                self.trips += 1
            self.opened_at = now


@dataclass
class WebhookStats:
    """Aggregate delivery counters (mirrored onto ``repro.obs``)."""

    enqueued: int = 0
    delivered: int = 0
    retried: int = 0
    dead_lettered: int = 0
    breaker_trips: int = 0
    short_circuited: int = 0


async def _post_json(
    url: str, body: bytes, timeout: float
) -> int:
    """POST ``body`` to ``url`` over a raw asyncio stream; returns status."""
    split = urlsplit(url)
    if split.scheme not in ("http", "https"):
        raise ConfigurationError(f"unsupported webhook scheme in {url!r}")
    host = split.hostname
    if not host:
        raise ConfigurationError(f"webhook URL {url!r} has no host")
    port = split.port or (443 if split.scheme == "https" else 80)
    ssl_context = (
        ssl_module.create_default_context() if split.scheme == "https" else None
    )
    path = split.path or "/"
    if split.query:
        path += f"?{split.query}"

    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port, ssl=ssl_context), timeout
    )
    try:
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {split.netloc}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await asyncio.wait_for(writer.drain(), timeout)
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1", "replace").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise OSError(f"malformed status line {status_line!r}")
        return int(parts[1])
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ssl_module.SSLError):  # pragma: no cover - teardown
            pass


class WebhookSink:
    """Async HTTP callback sink with retry, breaker and dead letter.

    Args:
        endpoints: Webhook URL or list of URLs; every incident goes to
            every endpoint independently.
        max_attempts: Total tries per delivery per endpoint (>= 1).
        backoff_base: First retry delay in seconds; doubles per attempt.
        backoff_cap: Upper bound on a single backoff sleep.
        breaker_threshold: Consecutive failures that open the breaker.
        breaker_reset: Seconds an open breaker blocks attempts before a
            half-open probe is allowed.
        timeout: Per-request network timeout in seconds.
        dead_letter_path: JSONL file for exhausted deliveries (fsync'd).
            None disables persistence (exhausted deliveries still count).
        registry: Metrics registry (defaults to the process-wide one).
    """

    def __init__(
        self,
        endpoints: Union[str, Sequence[str]],
        *,
        max_attempts: int = 5,
        backoff_base: float = 0.25,
        backoff_cap: float = 30.0,
        breaker_threshold: int = 5,
        breaker_reset: float = 30.0,
        timeout: float = 5.0,
        dead_letter_path=None,
        registry=None,
    ) -> None:
        if isinstance(endpoints, str):
            endpoints = [endpoints]
        self.endpoints = list(endpoints)
        if not self.endpoints:
            raise ConfigurationError("WebhookSink needs at least one endpoint")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.timeout = float(timeout)
        self.stats = WebhookStats()
        self._breakers: Dict[str, _CircuitBreaker] = {
            url: _CircuitBreaker(breaker_threshold, breaker_reset)
            for url in self.endpoints
        }
        self._dead_letter: Optional[JsonlWriter] = (
            JsonlWriter(dead_letter_path, fsync=True)
            if dead_letter_path is not None
            else None
        )
        self._metrics = _WebhookMetrics(registry)
        self._lock = threading.Lock()
        self._pending = 0
        self._drained = threading.Condition(self._lock)
        self._closed = False

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="fchain-webhook", daemon=True
        )
        self._thread.start()

    # -- sink surface --------------------------------------------------
    def __call__(self, *args) -> None:
        """Enqueue one incident — ``(incident)`` or ``(tenant, incident)``."""
        if len(args) == 1:
            tenant, incident = "", args[0]
        elif len(args) == 2:
            tenant, incident = str(args[0]), args[1]
        else:
            raise TypeError("WebhookSink takes (incident) or (tenant, incident)")
        if self._closed:
            raise ConfigurationError("the webhook sink is closed")
        payload = {"tenant": tenant, **incident.to_dict()}
        body = json_response(payload).body
        with self._lock:
            self._pending += len(self.endpoints)
            self.stats.enqueued += len(self.endpoints)
        for url in self.endpoints:
            self._loop.call_soon_threadsafe(
                lambda u=url, b=body, p=payload: self._loop.create_task(
                    self._deliver(u, b, p)
                )
            )

    def breaker_state(self, url: str) -> Dict:
        """Operator view of one endpoint's breaker (``/v1/stats``)."""
        breaker = self._breakers[url]
        return {
            "open": breaker.is_open,
            "consecutive_failures": breaker.failures,
            "trips": breaker.trips,
        }

    def flush(self, timeout: Optional[float] = 30.0) -> bool:
        """Block until every enqueued delivery reached a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._drained:
            while self._pending > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(remaining)
        return True

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain, stop the delivery loop, close the dead-letter file."""
        if self._closed:
            return
        self.flush(timeout)
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if self._dead_letter is not None:
            self._dead_letter.close()

    # -- delivery machinery --------------------------------------------
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    async def _deliver(self, url: str, body: bytes, payload: Dict) -> None:
        breaker = self._breakers[url]
        error = "unknown"
        try:
            for attempt in range(self.max_attempts):
                now = time.monotonic()
                if not breaker.allow(now):
                    error = "circuit breaker open"
                    with self._lock:
                        self.stats.short_circuited += 1
                else:
                    try:
                        status = await _post_json(url, body, self.timeout)
                    except (OSError, asyncio.TimeoutError, ValueError) as exc:
                        error = f"{type(exc).__name__}: {exc}"
                        self._record_failure(breaker, url)
                    else:
                        if 200 <= status < 300:
                            breaker.record_success()
                            self._finish(url, OUTCOME_DELIVERED)
                            return
                        error = f"HTTP {status}"
                        self._record_failure(breaker, url)
                if attempt + 1 < self.max_attempts:
                    with self._lock:
                        self.stats.retried += 1
                    await asyncio.sleep(self._backoff(attempt))
            self._dead_letter_delivery(url, payload, error)
            self._finish(url, OUTCOME_DEAD_LETTERED)
        except Exception as exc:  # noqa: BLE001 - never lose the pending count
            self._dead_letter_delivery(url, payload, f"internal: {exc!r}")
            self._finish(url, OUTCOME_DEAD_LETTERED)

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_base * (2.0 ** attempt), self.backoff_cap)

    def _record_failure(self, breaker: _CircuitBreaker, url: str) -> None:
        trips_before = breaker.trips
        breaker.record_failure(time.monotonic())
        if breaker.trips > trips_before:
            with self._lock:
                self.stats.breaker_trips += 1
            self._metrics.breaker_trips.inc(1, endpoint=url)

    def _dead_letter_delivery(self, url: str, payload: Dict, error: str) -> None:
        with self._lock:
            self.stats.dead_lettered += 1
        if self._dead_letter is not None:
            self._dead_letter.write(
                {
                    "endpoint": url,
                    "error": error,
                    "attempts": self.max_attempts,
                    "abandoned_at": time.time(),
                    "incident": payload,
                }
            )

    def _finish(self, url: str, outcome: str) -> None:
        if outcome == OUTCOME_DELIVERED:
            with self._lock:
                self.stats.delivered += 1
        self._metrics.deliveries.inc(1, endpoint=url, outcome=outcome)
        with self._drained:
            self._pending -= 1
            if self._pending <= 0:
                self._drained.notify_all()


class _WebhookMetrics:
    """Lazy Prometheus counters for webhook delivery outcomes."""

    def __init__(self, registry=None) -> None:
        if registry is None:
            from repro.obs.registry import default_registry

            registry = default_registry()
        self.deliveries = registry.counter(
            "fchain_webhook_deliveries_total",
            "Webhook deliveries by terminal outcome",
            ("endpoint", "outcome"),
        )
        self.breaker_trips = registry.counter(
            "fchain_webhook_breaker_trips_total",
            "Circuit-breaker opens per webhook endpoint",
            ("endpoint",),
        )


__all__ = [
    "OUTCOME_DEAD_LETTERED",
    "OUTCOME_DELIVERED",
    "WebhookSink",
    "WebhookStats",
]
