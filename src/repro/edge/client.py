"""A small blocking client for the edge API.

Built on stdlib :mod:`http.client` so tests, the CI load script and the
ingest benchmark all talk to the server the same way a real collector
would — over a TCP socket, not through in-process shortcuts. Blocking
is fine here: clients live on their own threads, never on the server's
event loop.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReproError


class EdgeResponse:
    """Status + parsed body of one API call.

    Attributes:
        status: HTTP status code.
        headers: Response headers (lower-cased names).
        body: Raw body bytes.
    """

    def __init__(self, status: int, headers: Dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self):
        return json.loads(self.body.decode("utf-8"))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class EdgeClient:
    """Talks to one edge server; one connection, keep-alive reused.

    Args:
        host: Server host.
        port: Server port.
        timeout: Socket timeout per request, seconds.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "EdgeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> EdgeResponse:
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers or {})
            raw = conn.getresponse()
            payload = raw.read()
        except (http.client.HTTPException, OSError):
            # Stale keep-alive connection; reconnect once.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers or {})
            raw = conn.getresponse()
            payload = raw.read()
        return EdgeResponse(
            raw.status,
            {name.lower(): value for name, value in raw.getheaders()},
            payload,
        )

    # -- ingest --------------------------------------------------------
    def push_json(
        self,
        samples: List[Dict],
        *,
        performance: Optional[List[Dict]] = None,
        tenant: str = "",
    ) -> EdgeResponse:
        """POST a JSON push; returns the raw response (429s included)."""
        payload: Dict = {"samples": samples}
        if performance is not None:
            payload["performance"] = performance
        if tenant:
            payload["tenant"] = tenant
        return self.request(
            "POST",
            "/v1/ingest",
            body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )

    def push_csv(self, text: str, *, tenant: str = "") -> EdgeResponse:
        path = "/v1/ingest"
        if tenant:
            path += f"?tenant={tenant}"
        return self.request(
            "POST",
            path,
            body=text.encode("utf-8"),
            headers={"Content-Type": "text/csv"},
        )

    def push_json_retrying(
        self,
        samples: List[Dict],
        *,
        performance: Optional[List[Dict]] = None,
        tenant: str = "",
        max_tries: int = 200,
    ) -> EdgeResponse:
        """Push, honouring 429 ``Retry-After`` until accepted.

        The client-side half of the backpressure contract: a shed is not
        an error, it is an instruction to slow down.
        """
        for _ in range(max_tries):
            response = self.push_json(
                samples, performance=performance, tenant=tenant
            )
            if response.status != 429:
                return response
            retry_after = float(response.headers.get("retry-after", "1"))
            time.sleep(min(retry_after, 0.05))
        raise ReproError(f"push still shed after {max_tries} tries")

    # -- queries -------------------------------------------------------
    def incidents(self, **query) -> List[Dict]:
        path = "/v1/incidents"
        if query:
            path += "?" + "&".join(f"{k}={v}" for k, v in query.items())
        response = self.request("GET", path)
        if not response.ok:
            raise ReproError(f"GET {path} -> {response.status}")
        return response.json()["incidents"]

    def incident(self, incident_id: int) -> Dict:
        response = self.request("GET", f"/v1/incidents/{incident_id}")
        if not response.ok:
            raise ReproError(f"GET incident {incident_id} -> {response.status}")
        return response.json()

    def diagnosis(self, incident_id: int) -> Dict:
        response = self.request("GET", f"/v1/diagnoses/{incident_id}")
        if not response.ok:
            raise ReproError(
                f"GET diagnosis {incident_id} -> {response.status}"
            )
        return response.json()

    def stats(self) -> Dict:
        response = self.request("GET", "/v1/stats")
        if not response.ok:
            raise ReproError(f"GET /v1/stats -> {response.status}")
        return response.json()

    def metrics_text(self) -> str:
        response = self.request("GET", "/v1/metrics")
        if not response.ok:
            raise ReproError(f"GET /v1/metrics -> {response.status}")
        return response.body.decode("utf-8")

    def healthz(self) -> bool:
        return self.request("GET", "/healthz").ok

    def readyz(self) -> bool:
        return self.request("GET", "/readyz").ok

    def shutdown(self) -> EdgeResponse:
        return self.request("POST", "/v1/shutdown")

    # -- synchronisation ----------------------------------------------
    def wait_drained(self, pushed_ticks: int, *, timeout: float = 120.0) -> Dict:
        """Block until the pipeline consumed ``pushed_ticks`` ticks and no
        diagnosis is in flight; returns the final stats payload.

        The over-the-wire analogue of ``OnlinePipeline.close()``'s drain:
        push, wait, then read ``/v1/incidents`` knowing the answer is
        complete.
        """
        deadline = time.monotonic() + timeout
        while True:
            stats = self.stats()
            pipeline = stats.get("pipeline") or {}
            if (
                pipeline.get("ticks", 0) >= pushed_ticks
                and stats.get("queue_depth", 0) == 0
                and pipeline.get("inflight_triggers", 0) <= 0
            ):
                return stats
            if pipeline.get("error"):
                raise ReproError(f"pipeline failed: {pipeline['error']}")
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"pipeline did not drain within {timeout}s: {stats}"
                )
            time.sleep(0.05)


def split_address(address: str) -> Tuple[str, int]:
    """``host:port`` or ``http://host:port`` -> ``(host, port)``."""
    stripped = address.strip()
    for prefix in ("http://", "https://"):
        if stripped.startswith(prefix):
            stripped = stripped[len(prefix):]
    stripped = stripped.rstrip("/")
    host, sep, port_text = stripped.rpartition(":")
    if not sep:
        raise ReproError(f"address {address!r} needs host:port")
    try:
        return host, int(port_text)
    except ValueError as error:
        raise ReproError(f"bad port in address {address!r}") from error


__all__ = ["EdgeClient", "EdgeResponse", "split_address"]
