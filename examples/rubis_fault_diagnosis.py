"""Full RUBiS diagnosis walkthrough: discovery, diagnosis, validation.

Demonstrates the complete FChain workflow on the RUBiS benchmark:

1. *offline* black-box dependency discovery from a profiling packet trace
   (Sherlock-style flow extraction — run once, stored, reused);
2. a memory-leak injection at the database: the leak manifests on the DB's
   memory metric first, then thrashing back-pressures the app/web tiers —
   the situation where topology-based localization blames the wrong tier;
3. FChain's diagnosis, including the per-metric abnormal changes;
4. online pinpointing validation via resource scaling on a forked
   simulation.

Usage::

    python examples/rubis_fault_diagnosis.py
"""

from repro.apps.rubis import DB, RubisApplication
from repro.core import FChain, FChainConfig
from repro.core.dependency import discover_dependencies
from repro.faults.library import MemLeakFault


def discover() -> "networkx.DiGraph":
    print("== Offline dependency discovery (profiling run) ==")
    profiling = RubisApplication(seed=7, duration=240, record_packets=True)
    profiling.run(240)
    result = discover_dependencies(profiling.packet_trace)
    print(f"packets observed : {len(profiling.packet_trace)}")
    for (src, dst), flows in sorted(result.flow_counts.items()):
        print(f"  {src:7s} -> {dst:7s} {flows:6d} flows")
    print(f"discovered edges : {sorted(result.graph.edges)}")
    return result.graph


def main() -> None:
    graph = discover()

    print("\n== Fault injection run ==")
    app = RubisApplication(seed=43, duration=2400)
    inject_at = 1250
    app.inject(MemLeakFault(inject_at, DB))
    print(f"MemLeak injected at the database at t={inject_at}s")
    app.run(1800)
    violation = app.slo.first_violation_after(inject_at)
    print(f"SLO violated at t={violation}s (leak -> thrashing takes a while)")

    print("\n== FChain diagnosis ==")
    fchain = FChain(FChainConfig(), dependency_graph=graph, seed=43)
    result = fchain.localize(app.store, violation_time=violation)
    for component, onset in result.chain.links:
        report = result.reports[component]
        metrics = ", ".join(str(m) for m in report.implicated_metrics)
        marker = "  <-- FAULTY" if component in result.faulty else ""
        print(f"  {component:6s} onset t={onset}s  metrics: {metrics}{marker}")
    print(f"pinpointed: {sorted(result.faulty)}")

    print("\n== Online pinpointing validation (forked simulation) ==")
    validated, outcomes = fchain.master.validate(app, result)
    for component, outcome in outcomes.items():
        print(
            f"  scale {outcome.metric} on {component}: "
            f"improvement {outcome.improvement:+.2f} -> "
            f"{'confirmed' if outcome.confirmed else 'false alarm, removed'}"
        )
    print(f"validated pinpointing: {sorted(validated.faulty)}")


if __name__ == "__main__":
    main()
