"""System S: propagation through a stream graph (the paper's Fig. 2).

Reproduces the paper's motivating example: a memory leak injected at PE3
of the seven-PE stream application. The abnormal change starts at PE3,
propagates downstream to PE6 (tuple starvation) and reaches PE2 upstream
through back-pressure. The example also shows that black-box dependency
discovery finds *nothing* on gap-free stream traffic — and that FChain
pinpoints PE3 regardless, from the propagation order alone.

Usage::

    python examples/streaming_backpressure.py
"""

from repro.apps.systems import EDGES, SystemSApplication
from repro.common.types import Metric
from repro.core import FChain, FChainConfig
from repro.core.dependency import discover_dependencies
from repro.faults.library import MemLeakFault


def show_discovery_failure() -> None:
    print("== Black-box dependency discovery on stream traffic ==")
    profiling = SystemSApplication(seed=9, duration=180, record_packets=True)
    profiling.run(180)
    result = discover_dependencies(profiling.packet_trace)
    total_flows = sum(result.flow_counts.values())
    print(
        f"packets: {len(profiling.packet_trace)}, "
        f"extracted flows: {total_flows} "
        f"(one endless flow per edge — no inter-packet gaps)"
    )
    print(f"discovered dependencies: {sorted(result.graph.edges)} "
          f"-> discovery {'succeeded' if result.discovered else 'FAILED'}")


def main() -> None:
    print(f"Stream graph edges: {EDGES}\n")
    show_discovery_failure()

    print("\n== Memory leak at PE3 ==")
    app = SystemSApplication(seed=44, duration=2400)
    inject_at = 1250
    app.inject(MemLeakFault(inject_at, "PE3"))
    app.run(1800)
    violation = app.slo.first_violation_after(inject_at)
    print(f"per-tuple latency SLO violated at t={violation}s")

    memory = app.store.series("PE3", Metric.MEMORY_USAGE)
    print(
        f"PE3 memory: {memory.at(inject_at - 10):.0f} MB before, "
        f"{memory.at(violation):.0f} MB at violation"
    )

    fchain = FChain(FChainConfig(), dependency_graph=None, seed=44)
    result = fchain.localize(app.store, violation_time=violation)

    print("\nPropagation chain (earliest onset first):")
    for component, onset in result.chain.links:
        marker = "  <-- pinpointed" if component in result.faulty else ""
        print(f"  {component} @ t={onset}s{marker}")
    print(
        f"\nFChain pinpoints {sorted(result.faulty)} without any "
        f"dependency information (truth: ['PE3'])"
    )


if __name__ == "__main__":
    main()
