"""Quickstart: inject a fault into RUBiS and let FChain pinpoint it.

Runs the three-tier RUBiS benchmark on the simulated cloud, injects a CPU
hog next to the database server, waits for the SLO violation and asks
FChain for the faulty component.

Usage::

    python examples/quickstart.py
"""

from repro.apps.rubis import DB, RubisApplication
from repro.core import FChain, FChainConfig
from repro.faults.library import CpuHogFault


def main() -> None:
    print("Building RUBiS (web -> app1/app2 -> db) on two simulated hosts...")
    app = RubisApplication(seed=42, duration=2400)

    inject_at = 1300
    print(f"Injecting a CpuHog at the database server at t={inject_at}s")
    app.inject(CpuHogFault(inject_at, DB))

    app.run(1500)
    violation = app.slo.first_violation_after(inject_at)
    if violation is None:
        raise SystemExit("no SLO violation occurred — try another seed")
    print(
        f"SLO violated at t={violation}s "
        f"({violation - inject_at}s after injection)"
    )

    fchain = FChain(FChainConfig(), seed=42)
    result = fchain.localize(app.store, violation_time=violation)

    print("\nAbnormal change propagation chain (component @ onset):")
    for component, onset in result.chain.links:
        marker = " <-- pinpointed" if component in result.faulty else ""
        print(f"  {component:6s} @ t={onset}s{marker}")
    print(f"\nFChain pinpoints: {sorted(result.faulty)} (truth: ['db'])")


if __name__ == "__main__":
    main()
