"""Multi-tenant cloud: two benchmark tenants sharing the same hosts.

The paper evaluates FChain with the benchmark systems running
*concurrently on the same set of VCL hosts* (Sec. III-A). This example
consolidates RUBiS and System S onto a shared host pool, injects a CPU
hog into the RUBiS database, and shows that (a) FChain pinpoints the
culprit inside the affected tenant, and (b) the co-located stream tenant
feels the noisy neighbour through host-level contention.

Usage::

    python examples/multi_tenant_cloud.py
"""

from repro.apps.rubis import DB, RubisApplication
from repro.apps.systems import SystemSApplication
from repro.cloud.tenancy import SharedDeployment
from repro.core import FChain
from repro.faults.library import CpuHogFault


def main() -> None:
    rubis = RubisApplication(seed=15, duration=2200)
    systems = SystemSApplication(seed=15, duration=2200)
    cloud = SharedDeployment([rubis, systems], vms_per_host=4)

    print(f"Shared hosts: {len(cloud.hosts)}, tenant VMs: {len(cloud.vms)}")
    for host in cloud.hosts:
        tenants = ", ".join(
            f"{vm.name}({cloud.tenant_of(vm.name).name})" for vm in host.vms
        )
        print(f"  {host.name}: {tenants}")

    print("\nWarm-up (both tenants healthy)...")
    cloud.run(900)
    base = systems.slo.performance_series().values[700:900].mean()
    print(f"System S mean tuple latency: {base * 1000:.1f} ms")

    inject_at = cloud.time
    print(f"\nInjecting CpuHog at the RUBiS database (t={inject_at}s)")
    rubis.inject(CpuHogFault(inject_at, DB))
    cloud.run(400)

    violation = rubis.slo.first_violation_after(inject_at)
    print(f"RUBiS SLO violated at t={violation}s")
    disturbed = systems.slo.performance_series().values[-200:].mean()
    print(
        f"System S mean tuple latency now: {disturbed * 1000:.1f} ms "
        f"({(disturbed / base - 1) * 100:+.0f}% — noisy-neighbour effect)"
    )

    result = FChain(seed=15).localize(rubis.store, violation_time=violation)
    print("\nFChain diagnosis inside the affected tenant:")
    print(result.summary())


if __name__ == "__main__":
    main()
