"""A small fault-injection campaign on Hadoop, scored across schemes.

Uses the evaluation harness end-to-end: repeated runs of the Hadoop sort
benchmark with concurrent infinite-loop bugs in all map tasks (the paper's
"Concurrent CpuHog"), scored by FChain, PAL and the Dependency baseline on
the same recorded runs.

Usage::

    python examples/hadoop_campaign.py        # 3 runs (fast demo)
    REPRO_RUNS=10 python examples/hadoop_campaign.py
"""

import os

from repro.baselines import DependencyLocalizer, PALLocalizer
from repro.eval.report import format_scheme_table
from repro.eval.runner import FChainLocalizer, evaluate_schemes
from repro.eval.scenarios import scenario_by_name


def main() -> None:
    runs = int(os.environ.get("REPRO_RUNS", "3"))
    scenario = scenario_by_name("hadoop/conc_cpuhog")
    print(
        f"Running {runs} fault-injection runs of {scenario.name} "
        f"(3 map nodes get an infinite-loop bug at a random time)..."
    )
    results = evaluate_schemes(
        scenario,
        [FChainLocalizer(), PALLocalizer(), DependencyLocalizer()],
        n_runs=runs,
        base_seed="example",
    )
    print()
    print(
        format_scheme_table(
            f"{scenario.name}: precision/recall over {runs} runs",
            {"conc_cpuhog": results},
        )
    )
    print(
        "\nGround truth is the three map nodes; FChain's concurrency "
        "threshold captures all three from their near-simultaneous onsets."
    )


if __name__ == "__main__":
    main()
