"""Tests for the command-line interface."""

import pytest

from repro.cli import SCHEMES, _build_schemes, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "rubis/cpuhog" in out
    assert "hadoop/conc_diskhog" in out
    assert "W=500s" in out


def test_build_schemes():
    schemes = _build_schemes("FChain, PAL")
    assert [s.name for s in schemes] == ["FChain", "PAL"]


def test_build_schemes_unknown():
    with pytest.raises(SystemExit):
        _build_schemes("Nope")


def test_all_registered_schemes_constructible():
    for name, factory in SCHEMES.items():
        assert factory().name == name


def test_run_small_campaign(capsys):
    code = main(
        ["run", "rubis/cpuhog", "--runs", "1", "--schemes", "FChain,PAL"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "FChain" in out and "PAL" in out
    assert "P=" in out


def test_unknown_scenario():
    with pytest.raises(KeyError):
        main(["run", "nope/nothing"])


def test_bench_json_writes_reports(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.chdir(tmp_path)
    code = main(
        [
            "bench", "--quick", "--json",
            "--samples", "600", "--components", "2", "--metrics", "1",
            "--repeats", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    ingest = json.loads((tmp_path / "BENCH_ingest.json").read_text())
    assert ingest["benchmark"] == "ingest"
    assert ingest["streams_match"] is True
    assert ingest["batched"]["ops_per_second"] > 0
    assert "p99_ms" in ingest["batched"]
    engine = json.loads(
        (tmp_path / "BENCH_incremental_engine.json").read_text()
    )
    assert engine["benchmark"] == "incremental_engine"
    assert engine["results_match"] is True
    assert "p50_ms" in engine["incremental"]
