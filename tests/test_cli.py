"""Tests for the command-line interface."""

import pytest

from repro.cli import SCHEMES, _build_schemes, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "rubis/cpuhog" in out
    assert "hadoop/conc_diskhog" in out
    assert "W=500s" in out


def test_build_schemes():
    schemes = _build_schemes("FChain, PAL")
    assert [s.name for s in schemes] == ["FChain", "PAL"]


def test_build_schemes_unknown():
    with pytest.raises(SystemExit):
        _build_schemes("Nope")


def test_all_registered_schemes_constructible():
    for name, factory in SCHEMES.items():
        assert factory().name == name


def test_run_small_campaign(capsys):
    code = main(
        ["run", "rubis/cpuhog", "--runs", "1", "--schemes", "FChain,PAL"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "FChain" in out and "PAL" in out
    assert "P=" in out


def test_unknown_scenario():
    with pytest.raises(KeyError):
        main(["run", "nope/nothing"])


def test_bench_json_writes_reports(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.chdir(tmp_path)
    code = main(
        [
            "bench", "--quick", "--json",
            "--samples", "600", "--components", "2", "--metrics", "1",
            "--repeats", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    ingest = json.loads((tmp_path / "BENCH_ingest.json").read_text())
    assert ingest["benchmark"] == "ingest"
    assert ingest["stores_match"] is True
    assert ingest["speedup_vs_pre_rewrite"] > 0
    assert ingest["batched"]["ops_per_second"] > 0
    assert "p99_ms" in ingest["batched"]
    engine = json.loads(
        (tmp_path / "BENCH_incremental_engine.json").read_text()
    )
    assert engine["benchmark"] == "incremental_engine"
    assert engine["results_match"] is True
    assert "p50_ms" in engine["incremental"]


def _write_replay_trace(tmp_path):
    from repro.eval.bench import synthetic_store
    from repro.monitoring.io import save_store_csv
    from repro.service.sources import save_performance_csv

    store = synthetic_store(samples=900, components=3, metrics=2, seed=7)
    onset = store.end - 35
    metrics_path = tmp_path / "metrics.csv"
    performance_path = tmp_path / "perf.csv"
    save_store_csv(store, metrics_path)
    save_performance_csv(
        performance_path,
        {
            t: (0.5 if t >= onset else 0.01)
            for t in range(store.start, store.end)
        },
    )
    return metrics_path, performance_path


def test_replay_localizes_recorded_incident(tmp_path, capsys):
    metrics_path, performance_path = _write_replay_trace(tmp_path)
    incidents_path = tmp_path / "incidents.jsonl"
    code = main(
        [
            "replay", str(metrics_path), str(performance_path),
            "--sustain", "5",
            "--expect-incidents", "1", "--expect-culprit", "c0",
            "--incidents", str(incidents_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "incident #0" in out
    assert "c0" in out
    record = __import__("json").loads(incidents_path.read_text())
    assert "c0" in record["faulty"]


def test_replay_expectation_failure_exits_nonzero(tmp_path, capsys):
    metrics_path, performance_path = _write_replay_trace(tmp_path)
    code = main(
        [
            "replay", str(metrics_path), str(performance_path),
            "--sustain", "5", "--expect-incidents", "3",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL expected exactly 3" in out


def test_serve_runs_quietly_without_fault(capsys):
    code = main(
        ["serve", "--duration", "40", "--no-fault", "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "no incidents" in out
    assert "40 ticks" in out
