"""Tests for the NetMedic baseline."""

import pytest

from repro.baselines.base import LocalizationContext
from repro.baselines.netmedic import UNSEEN_STATE_IMPACT, NetMedicLocalizer


class TestNetMedic:
    def test_requires_topology(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        with pytest.raises(ValueError):
            NetMedicLocalizer().localize(
                app.store, violation_time=violation, context=LocalizationContext(topology=None)
            )

    def test_blame_scores_cover_components(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        context = LocalizationContext(
            topology=app.topology, slo_component="web", seed=101
        )
        blames = NetMedicLocalizer().blame_scores(
            app.store, violation_time=violation, context=context
        )
        assert set(blames) == set(app.store.components)
        assert all(b >= 0 for b in blames.values())

    def test_unseen_states_bias_ranking_toward_observer(
        self, rubis_cpuhog_run
    ):
        """The paper's Sec. III-B analysis: fresh fault injection leaves
        the neighbourhood in unseen states, every edge gets the 0.8
        default impact, and the ranking degrades toward components close
        to the SLO-observed service rather than the true culprit."""
        app, violation = rubis_cpuhog_run
        context = LocalizationContext(
            topology=app.topology, slo_component="web", seed=101
        )
        blames = NetMedicLocalizer().blame_scores(
            app.store, violation_time=violation, context=context
        )
        ranked = sorted(blames, key=blames.get, reverse=True)
        assert "web" in ranked[:2]  # observer-adjacent bias
        # The true culprit (db, two hops away) pays the path discount.
        assert blames["db"] <= blames[ranked[0]]

    def test_delta_widens_pinpointing(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        context = LocalizationContext(
            topology=app.topology, slo_component="web", seed=101
        )
        narrow = NetMedicLocalizer(delta=0.0).localize(
            app.store,
            violation_time=violation,
            context=context
        )
        wide = NetMedicLocalizer(delta=10.0).localize(
            app.store,
            violation_time=violation,
            context=context
        )
        assert narrow <= wide
        assert len(wide) == len(app.store.components)

    def test_unseen_state_default_documented(self):
        assert UNSEEN_STATE_IMPACT == pytest.approx(0.8)
