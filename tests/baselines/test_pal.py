"""Tests for the PAL baseline."""


from repro.baselines.base import LocalizationContext
from repro.baselines.pal import PALLocalizer, pal_component_report
from repro.core.config import FChainConfig


class TestPALReport:
    def test_detects_faulty_db(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        report = pal_component_report(
            app.store, "db", violation, FChainConfig(), seed=1
        )
        assert report.is_abnormal

    def test_changes_carry_no_prediction_errors(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        report = pal_component_report(
            app.store, "db", violation, FChainConfig(), seed=1
        )
        import math

        assert all(
            math.isnan(c.prediction_error) for c in report.abnormal_changes
        )


class TestPALLocalizer:
    def test_pinpoints_some_abnormal_chain_source(self, rubis_cpuhog_run):
        """PAL pinpoints the earliest-onset abnormal component. Without
        the predictability filter that source is often a benign change on
        a victim tier rather than the culprit — the fragility FChain's
        filtering fixes — so the contract is only that PAL outputs the
        source of its own chain."""
        app, violation = rubis_cpuhog_run
        result = PALLocalizer().localize(
            app.store, violation_time=violation, context=LocalizationContext(seed=101)
        )
        assert result
        for component in result:
            report = pal_component_report(
                app.store, component, violation, FChainConfig(), seed=101
            )
            assert report.is_abnormal

    def test_no_dependency_information_used(self, rubis_cpuhog_run):
        """PAL ignores the dependency graph entirely."""
        app, violation = rubis_cpuhog_run
        with_graph = PALLocalizer().localize(
            app.store, violation_time=violation, context=LocalizationContext(seed=101)
        )
        import networkx as nx

        context = LocalizationContext(seed=101, dependency_graph=nx.DiGraph())
        without = PALLocalizer().localize(app.store, violation_time=violation, context=context)
        assert with_graph == without
