"""Tests for the Histogram (KL divergence) baseline."""

import numpy as np

from repro.baselines.base import LocalizationContext
from repro.baselines.histogram import HistogramLocalizer, kl_divergence
from repro.common.rng import spawn_rng
from repro.common.types import Metric
from repro.monitoring.store import MetricStore


class TestKLDivergence:
    def test_identical_distributions_near_zero(self):
        rng = spawn_rng("kl")
        sample = rng.normal(10, 2, 2000)
        assert kl_divergence(sample[:1000], sample) < 0.05

    def test_shifted_distribution_large(self):
        rng = spawn_rng("kl2")
        reference = rng.normal(10, 2, 2000)
        shifted = rng.normal(30, 2, 200)
        assert kl_divergence(shifted, reference) > 1.0

    def test_nonnegative(self):
        rng = spawn_rng("kl3")
        for i in range(5):
            a = rng.normal(0, 1, 100)
            b = rng.normal(0, 1, 500)
            assert kl_divergence(a, b) >= 0.0

    def test_degenerate_inputs(self):
        assert kl_divergence(np.array([]), np.array([1.0])) == 0.0
        assert kl_divergence(np.array([5.0] * 3), np.array([5.0] * 9)) == 0.0


def store_with_shift(shift_component="bad", length=800, shift_at=700):
    """Two components; one shifts its CPU level near the end."""
    rng = spawn_rng("hist-store")
    data = {}
    for name in ("good", "bad"):
        cpu = 30 + rng.normal(0, 2, length)
        if name == shift_component:
            cpu[shift_at:] += 50
        data[name] = {Metric.CPU_USAGE: cpu}
    return MetricStore.from_arrays(data)


class TestLocalizer:
    def test_gradual_shift_detected(self):
        store = store_with_shift()
        context = LocalizationContext()
        scheme = HistogramLocalizer(threshold=0.5)
        result = scheme.localize(store, violation_time=790, context=context)
        assert result == frozenset({"bad"})

    def test_fast_fault_missed(self):
        """The paper's point: a shift only a few seconds old has not
        changed the window histogram enough by detection time."""
        store = store_with_shift(shift_at=788)
        context = LocalizationContext()
        scheme = HistogramLocalizer(threshold=0.5)
        assert scheme.localize(store, violation_time=790, context=context) == frozenset()

    def test_threshold_sweep_monotone(self):
        store = store_with_shift()
        context = LocalizationContext()
        sizes = [
            len(HistogramLocalizer(threshold=th).localize(store, violation_time=790, context=context))
            for th in (0.05, 0.5, 5.0)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_score_accessor(self):
        store = store_with_shift()
        scheme = HistogramLocalizer()
        good = scheme.score(store, "good", 790, LocalizationContext())
        bad = scheme.score(store, "bad", 790, LocalizationContext())
        assert bad > good
