"""Tests for the Fixed-Filtering baseline."""


from repro.baselines.base import LocalizationContext
from repro.baselines.fixed_filtering import FixedFilteringLocalizer


class TestFixedFiltering:
    def test_well_chosen_threshold_finds_fault(
        self, rubis_cpuhog_run, rubis_dependency_graph
    ):
        app, violation = rubis_cpuhog_run
        context = LocalizationContext(
            dependency_graph=rubis_dependency_graph, seed=101
        )
        result = FixedFilteringLocalizer(threshold=0.6).localize(
            app.store,
            violation_time=violation,
            context=context
        )
        assert "db" in result

    def test_huge_threshold_finds_nothing(
        self, rubis_cpuhog_run, rubis_dependency_graph
    ):
        app, violation = rubis_cpuhog_run
        context = LocalizationContext(
            dependency_graph=rubis_dependency_graph, seed=101
        )
        result = FixedFilteringLocalizer(threshold=50.0).localize(
            app.store,
            violation_time=violation,
            context=context
        )
        assert result == frozenset()

    def test_threshold_sensitivity(self, rubis_cpuhog_run, rubis_dependency_graph):
        """Fig. 12's point: the fixed scheme is threshold-sensitive."""
        app, violation = rubis_cpuhog_run
        context = LocalizationContext(
            dependency_graph=rubis_dependency_graph, seed=101
        )
        results = {
            th: FixedFilteringLocalizer(threshold=th).localize(
            app.store,
            violation_time=violation,
            context=context
        )
            for th in (0.02, 0.3, 50.0)
        }
        assert len(set(map(frozenset, results.values()))) >= 2
