"""Tests for the Topology and Dependency baselines."""

import networkx as nx
import pytest

from repro.baselines.base import LocalizationContext
from repro.baselines.dependency_only import DependencyLocalizer
from repro.baselines.topology import TopologyLocalizer, most_upstream_abnormal


def rubis_graph():
    g = nx.DiGraph()
    g.add_edges_from(
        [("web", "app1"), ("web", "app2"), ("app1", "db"), ("app2", "db")]
    )
    return g


class TestMostUpstream:
    def test_single_abnormal(self):
        assert most_upstream_abnormal(frozenset({"db"}), rubis_graph()) == {
            "db"
        }

    def test_backpressure_blames_head(self):
        """All tiers abnormal (fault at db): the scheme blames the web
        tier — the paper's documented failure mode."""
        abnormal = frozenset({"web", "app1", "db"})
        assert most_upstream_abnormal(abnormal, rubis_graph()) == {"web"}

    def test_independent_branches_both_blamed(self):
        abnormal = frozenset({"app1", "app2"})
        assert most_upstream_abnormal(abnormal, rubis_graph()) == {
            "app1",
            "app2",
        }

    def test_component_outside_graph(self):
        assert most_upstream_abnormal(frozenset({"ghost"}), rubis_graph()) == {
            "ghost"
        }


class TestTopologyLocalizer:
    def test_requires_topology(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        with pytest.raises(ValueError):
            TopologyLocalizer().localize(
                app.store, violation_time=violation, context=LocalizationContext(topology=None)
            )

    def test_runs_on_real_data(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        context = LocalizationContext(topology=app.topology, seed=101)
        result = TopologyLocalizer().localize(app.store, violation_time=violation, context=context)
        assert isinstance(result, frozenset)


class TestDependencyLocalizer:
    def test_empty_graph_blames_all_abnormal(self, rubis_cpuhog_run):
        """Discovery failure (System S mode): every abnormal component is
        output as faulty."""
        app, violation = rubis_cpuhog_run
        context = LocalizationContext(dependency_graph=nx.DiGraph(), seed=101)
        result = DependencyLocalizer().localize(app.store, violation_time=violation, context=context)
        assert "db" in result  # plus any back-pressure victims

    def test_with_graph_prunes_downstream(
        self, rubis_cpuhog_run, rubis_dependency_graph
    ):
        app, violation = rubis_cpuhog_run
        with_graph = DependencyLocalizer().localize(
            app.store,
            violation_time=violation,
            context=LocalizationContext(
                dependency_graph=rubis_dependency_graph, seed=101
            ),
        )
        without_graph = DependencyLocalizer().localize(
            app.store,
            violation_time=violation,
            context=LocalizationContext(
                dependency_graph=nx.DiGraph(), seed=101
            ),
        )
        assert with_graph <= without_graph
